"""Soft-consistency reporting (§2.4.3).

"Instead of maintaining a 'strong' network consistency ... the nodes
can send to the MRM periodical updates of their resource availability
which also serve as a 'keep-alive' mechanism.  ...  This soft
consistency protocol leads to lower bandwidth utilization and better
scalability."

Each node runs one reporter process: every ``update_interval`` (with a
per-host phase offset so the fleet doesn't synchronize) it pushes its
:class:`~repro.registry.view.NodeView` to every replica of its group's
MRM as a oneway call.  Loss is tolerated — the next report repairs the
view; silence beyond the MRM's timeout means "down".

With an :class:`~repro.events.bus.EventBus` attached, the reporter
publishes to the ``registry.views`` topic instead of calling the wire
directly; one batched subscription per MRM replica forwards flush
windows as single ``report_batch`` oneways (stacking on GIOP
pipelining below), so report fan-out stops paying one header and one
link charge per logical report.
"""

from __future__ import annotations

from typing import Sequence

from repro.orb.ior import IOR
from repro.registry.mrm import MRM_IFACE, MrmConfig
from repro.registry.view import NodeView
from repro.sim.kernel import Interrupt

METER = "registry.soft"

#: Bus topic the reporter publishes ``(host_id, view_value)`` pairs to.
TOPIC = "registry.views"

#: Age threshold for batched report delivery: small relative to any
#: sane update interval, so batching adds latency the MRM's member
#: timeout never notices, while restart bursts still coalesce.
BATCH_MAX_AGE = 0.05


class SoftStateReporter:
    """Periodic, unacknowledged view reports from one node."""

    def __init__(self, node, mrm_iors: Sequence[IOR],
                 config: MrmConfig, phase: float = 0.0,
                 meter: str = METER, bus=None) -> None:
        self.node = node
        self.mrm_iors = list(mrm_iors)
        self.config = config
        self.phase = phase % config.update_interval
        self.meter = meter
        self.bus = bus
        self.reports_sent = 0
        self._proc = None
        self._subs: list = []
        if bus is not None:
            self._wire_bus()
        self._start()
        node.host.on_crash.append(self._on_crash)
        node.host.on_restart.append(self._on_restart)

    def _wire_bus(self) -> None:
        """(Re)build one batched bus->MRM forwarder per replica."""
        # Deferred import: repro.events.remote imports the ORB stack and
        # registry code must stay importable without it at module level.
        from repro.events.remote import BatchForwarder

        for sub in self._subs:
            self.bus.unsubscribe(sub)
        self._subs = []
        batch_op = MRM_IFACE.operations["report_batch"]
        for mrm in self.mrm_iors:
            forwarder = BatchForwarder(
                self.node.orb, mrm, batch_op,
                to_args=_reports_to_args, meter=self.meter)
            self._subs.append(self.bus.batch_subscribe(
                TOPIC, forwarder.deliver,
                max_batch=32, max_age=BATCH_MAX_AGE))

    def _start(self) -> None:
        self._proc = self.node.env.process(self._loop())

    def _on_crash(self, _host) -> None:
        if self._proc is not None and self._proc.is_alive:
            self._proc.interrupt("host crashed")
        self._proc = None
        # Reports buffered in flush windows die with the host: a
        # restarted node must never deliver pre-crash state.
        for sub in self._subs:
            sub.clear()

    def _on_restart(self, _host) -> None:
        # A reconnecting node must re-register with the MRM *now*, not
        # one phase offset later: the paper requires graceful
        # re-connections, and until the first report lands the MRM still
        # believes the node is down.  Report immediately, then resume
        # the periodic loop.
        self.send_now()
        self._start()

    def send_now(self) -> None:
        """One immediate report (used on startup and reconnection).

        Reports are true fire-and-forget: sent with
        ``response_expected=False`` and no pending-reply entry, so a
        reporter never accumulates client-side state no matter how many
        reports it sends to how many dead replicas.
        """
        view = NodeView.collect(self.node).to_value()
        if self.bus is not None:
            self.bus.publish(TOPIC, (self.node.host_id, view))
        else:
            report_op = MRM_IFACE.operations["report"]
            for mrm in self.mrm_iors:
                self.node.orb.send_oneway(mrm, report_op,
                                          (self.node.host_id, view),
                                          meter=self.meter)
        self.reports_sent += 1

    def flush(self) -> None:
        """Force buffered batched reports onto the wire now (tests)."""
        for sub in self._subs:
            sub.flush()

    def _loop(self):
        try:
            if self.phase:
                yield self.node.env.timeout(self.phase)
            while True:
                self.send_now()
                yield self.node.env.timeout(self.config.update_interval)
        except Interrupt:
            return

    def retarget(self, mrm_iors: Sequence[IOR]) -> None:
        """Point reports at a new MRM replica set (after promotion)."""
        self.mrm_iors = list(mrm_iors)
        if self.bus is not None:
            self._wire_bus()


def _reports_to_args(events) -> tuple:
    """Map a batch of ``registry.views`` events to report_batch args."""
    hosts = []
    views = []
    for event in events:
        host, view = event.payload
        hosts.append(host)
        views.append(view)
    return (hosts, views)

"""The Distributed Registry: the network as a resource repository (§2.4.3).

"The complete network is considered as a repository for resolving
component requirements."  This package implements the protocols the
paper specifies for that behaviour:

- :mod:`repro.registry.view` — the wire-level resource views nodes
  publish (snapshot + installed components + running providers).
- :mod:`repro.registry.mrm` — Meta-Resource Managers: group-level soft
  state, member expiry, hierarchical query escalation, parent reporting.
- :mod:`repro.registry.softstate` — the soft-consistency reporter
  ("periodical updates ... which also serve as a keep-alive mechanism").
- :mod:`repro.registry.strongstate` — the strong-consistency baseline
  (update-per-change with acknowledgements) the paper argues against.
- :mod:`repro.registry.prediction` — dead-reckoning reporters
  ("predictive and adaptive techniques ... reducing even more the
  bandwidth requirements").
- :mod:`repro.registry.queries` — network-wide dependency resolution
  (hierarchical) and the flat-flooding baseline.
- :mod:`repro.registry.replication` — peer-replicated MRMs with
  failover and automatic replica re-creation.
- :mod:`repro.registry.groups` — group formation, MRM placement, the
  :class:`DistributedRegistry` orchestrator.
"""

from repro.registry.groups import DistributedRegistry, RegistryConfig
from repro.registry.mrm import MrmAgent
from repro.registry.queries import FloodResolver, NetworkResolver
from repro.registry.softstate import SoftStateReporter
from repro.registry.strongstate import StrongStateReporter
from repro.registry.prediction import PredictiveReporter
from repro.registry.view import Candidate, NodeView

__all__ = [
    "DistributedRegistry",
    "RegistryConfig",
    "MrmAgent",
    "NetworkResolver",
    "FloodResolver",
    "SoftStateReporter",
    "StrongStateReporter",
    "PredictiveReporter",
    "NodeView",
    "Candidate",
]

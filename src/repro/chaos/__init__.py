"""Seeded chaos campaigns with system-invariant monitors.

The robustness claims of the runtime — self-healing deployment
(§2.4.3), fenced replication, gossip-converging federated resolution —
are only claims until something hostile and *reproducible* attacks
them.  This package is that something:

- :mod:`repro.chaos.scenario` builds a full standard system (clustered
  WAN topology, federated registry, supervised assembly, replica
  group, retrying clients) from one seed;
- :mod:`repro.chaos.actions` is the fault vocabulary (crashes,
  cluster partitions, WAN flaps, wire corruption, slow hosts, clock
  skew, owner isolation), each with a revert;
- :mod:`repro.chaos.invariants` is the monitor panel probed between
  faults and, strictly, at quiescence;
- :mod:`repro.chaos.campaign` samples a plan from the ``chaos.plan``
  RNG stream and drives the loop;
- :mod:`repro.chaos.report` serializes it all canonically, so a
  violation report is its own byte-reproducible reproducer.

Run campaigns via ``python -m repro.tools.chaos`` or ``make chaos``.
"""

from repro.chaos.actions import ACTIONS, AppliedFault
from repro.chaos.campaign import (
    DEFAULT_WEIGHTS,
    CampaignConfig,
    ChaosCampaign,
    run_campaign,
)
from repro.chaos.invariants import (
    MID,
    QUIESCENCE,
    AdmissionRecoveredMonitor,
    ControlLoopsAliveMonitor,
    FederatedResolvableMonitor,
    FloodResolvableMonitor,
    InvariantMonitor,
    MembershipConvergenceMonitor,
    NoOrphanInstancesMonitor,
    SinglePrimaryMonitor,
    default_monitors,
    probe_monitor,
)
from repro.chaos.report import (
    ChaosAction,
    ChaosReport,
    InvariantCheck,
    InvariantViolation,
    canonical_json,
)
from repro.chaos.scenario import ChaosWorld, build_world

__all__ = [
    "ACTIONS", "AppliedFault", "CampaignConfig", "ChaosCampaign",
    "DEFAULT_WEIGHTS", "run_campaign", "InvariantMonitor",
    "FederatedResolvableMonitor", "FloodResolvableMonitor",
    "SinglePrimaryMonitor", "NoOrphanInstancesMonitor",
    "MembershipConvergenceMonitor", "ControlLoopsAliveMonitor",
    "AdmissionRecoveredMonitor", "default_monitors", "ChaosAction",
    "ChaosReport", "InvariantCheck", "InvariantViolation",
    "canonical_json", "ChaosWorld", "build_world", "probe_monitor",
    "MID", "QUIESCENCE",
]

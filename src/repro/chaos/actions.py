"""The chaos-campaign fault vocabulary.

Every action is a pure function of ``(world, rng)`` drawing *only*
from the campaign's seeded plan stream, so a campaign's action
sequence is a deterministic function of its seed.  An action either
returns an :class:`AppliedFault` — carrying the revert closure that
undoes it — or ``None`` when it is not currently applicable (no
eligible target); the campaign records the skip and moves on, keeping
the draw sequence stable either way.

Faults compose: a host may be crashed while a WAN link flaps and the
wire corrupts payloads.  Actions therefore guard against
double-application on the same target (a host must not be slowed
twice, a reporter not skewed twice) because reverts restore absolute
values, not deltas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Optional

from repro.sim.faults import WireFaultProfile


@dataclass
class AppliedFault:
    """A live fault plus how to undo it."""

    kind: str
    target: str
    applied_at: float
    until: float                      # campaign reverts at/after this
    revert: Callable[[], None]
    detail: dict = field(default_factory=dict)


def _eligible_hosts(world, exclude_dead: bool = True) -> list:
    out = []
    for host in world.topology.host_ids():
        if host in world.protected:
            continue
        if exclude_dead and not world.topology.host(host).alive:
            continue
        out.append(host)
    return out


def _dead_count(world) -> int:
    return sum(1 for h in world.topology.host_ids()
               if not world.topology.host(h).alive)


def act_crash_host(world, rng, state) -> Optional[tuple]:
    """Crash one unprotected host; revert restarts it."""
    if _dead_count(world) >= state.max_dead:
        return None
    candidates = _eligible_hosts(world)
    if not candidates:
        return None
    host = candidates[int(rng.integers(0, len(candidates)))]
    world.injector.crash_host(host)

    def revert(h=host):
        world.injector.restart_host(h)
    return host, revert, {}


def act_partition_cluster(world, rng, state) -> Optional[tuple]:
    """Cut a whole non-coordinator cluster off the WAN; revert heals."""
    if world.n_clusters < 2:
        return None
    index = int(rng.integers(1, world.n_clusters))
    cluster = world.cluster_hosts(index)
    if any(h in state.partitioned for h in cluster):
        return None
    rest = [h for h in world.topology.host_ids() if h not in cluster]
    cuts = world.injector.partition(cluster, rest)
    state.partitioned.update(cluster)

    def revert(cuts=cuts, cluster=tuple(cluster)):
        world.injector.heal_partition(cuts)
        state.partitioned.difference_update(cluster)
    return f"c{index}", revert, {"hosts": len(cluster),
                                 "cuts": len(cuts)}


def act_wan_flap(world, rng, state) -> Optional[tuple]:
    """Take one WAN backbone link down; revert brings it back."""
    up = [link for link in world.wan_links
          if link.up and link.key not in state.cut_links]
    if not up:
        return None
    link = up[int(rng.integers(0, len(up)))]
    world.injector.cut_link(link.a, link.b)
    state.cut_links.add(link.key)

    def revert(link=link):
        world.injector.heal_link(link.a, link.b)
        state.cut_links.discard(link.key)
    return f"{link.a}~{link.b}", revert, {}


def act_wire_storm(world, rng, state) -> Optional[tuple]:
    """Corrupt the wire network-wide for a while; revert clears it."""
    if world.wire.default is not None:
        return None
    profile = WireFaultProfile(
        corrupt=float(rng.uniform(0.01, 0.05)),
        truncate=float(rng.uniform(0.0, 0.02)),
        duplicate=float(rng.uniform(0.0, 0.03)),
        reorder=float(rng.uniform(0.0, 0.05)))
    world.wire.set_default(profile)

    def revert():
        world.wire.set_default(None)
    return "network", revert, {
        "corrupt": round(profile.corrupt, 4),
        "truncate": round(profile.truncate, 4),
        "duplicate": round(profile.duplicate, 4),
        "reorder": round(profile.reorder, 4)}


def act_slow_host(world, rng, state) -> Optional[tuple]:
    """Degrade one host's CPU by 4-20x; revert restores the profile."""
    candidates = [h for h in _eligible_hosts(world)
                  if h not in state.slowed]
    if not candidates:
        return None
    host_id = candidates[int(rng.integers(0, len(candidates)))]
    host = world.topology.host(host_id)
    original = host.profile
    factor = float(rng.uniform(0.05, 0.25))
    host.profile = original.scaled(factor)
    state.slowed.add(host_id)

    def revert(host=host, original=original, host_id=host_id):
        host.profile = original
        state.slowed.discard(host_id)
    return host_id, revert, {"cpu_factor": round(factor, 3)}


def act_clock_skew(world, rng, state) -> Optional[tuple]:
    """Skew one reporter's clock so its publishes stamp wrong epochs."""
    candidates = [h for h in _eligible_hosts(world)
                  if h not in state.skewed]
    if not candidates:
        return None
    host = candidates[int(rng.integers(0, len(candidates)))]
    reporter = world.federation.reporters[host]
    # Positive skew poisons TTLs (records from the future); negative
    # skew makes a live host look stale.  Both must be survivable.
    magnitude = float(rng.uniform(5.0, 60.0))
    skew = magnitude if rng.random() < 0.7 else -min(magnitude, 10.0)
    reporter.clock_skew = skew
    state.skewed.add(host)

    def revert(reporter=reporter, host=host):
        reporter.clock_skew = 0.0
        state.skewed.discard(host)
    return host, revert, {"skew": round(skew, 3)}


def act_isolate_owner(world, rng, state) -> Optional[tuple]:
    """Partition one shard owner away from everyone; revert heals."""
    owners = [h for h in world.federation.agents
              if h not in world.protected
              and h not in state.partitioned
              and world.topology.host(h).alive]
    if not owners:
        return None
    owner = owners[int(rng.integers(0, len(owners)))]
    rest = [h for h in world.topology.host_ids() if h != owner]
    cuts = world.injector.partition([owner], rest)
    state.partitioned.add(owner)

    def revert(cuts=cuts, owner=owner):
        world.injector.heal_partition(cuts)
        state.partitioned.discard(owner)
    return owner, revert, {"cuts": len(cuts)}


#: kind -> implementation; weights live in the campaign config.
ACTIONS = {
    "crash_host": act_crash_host,
    "partition_cluster": act_partition_cluster,
    "wan_flap": act_wan_flap,
    "wire_storm": act_wire_storm,
    "slow_host": act_slow_host,
    "clock_skew": act_clock_skew,
    "isolate_owner": act_isolate_owner,
}

"""The standard chaos world: a full system under a seeded simulation.

:func:`build_world` assembles every subsystem the paper's runtime
offers — clustered WAN topology, federated registry, a deployed and
supervised component assembly, a fenced replica group, retry/breaker
clients with a shared retry budget — into one :class:`ChaosWorld` the
campaign engine can torture.  Everything is derived from one seed, so
a campaign over the world is byte-reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.container.replication import ReplicaGroup, ReplicaManager
from repro.deployment import ApplicationSupervisor, Deployer, RuntimePlanner
from repro.deployment.application import Application, DeploymentError
from repro.orb.exceptions import SystemException, UserException
from repro.orb.retry import BreakerRegistry, RetryBudget, RetryPolicy, \
    invoke_with_retry
from repro.registry.federation import FederatedRegistry, FederationConfig
from repro.sim.faults import FaultInjector, WireFaultModel
from repro.sim.topology import SERVER, Topology, clustered
from repro.testing import COUNTER_IFACE, SimRig, counter_package
from repro.xmlmeta.descriptors import (
    AssemblyConnection,
    AssemblyDescriptor,
    AssemblyInstance,
)

_INCREMENT = COUNTER_IFACE.operations["increment"]

#: RetryPolicy the chaos clients drive their calls with: short per-call
#: deadline so a wedged dependency sheds quickly instead of queueing.
CLIENT_POLICY = RetryPolicy(attempts=3, timeout=0.6, backoff=0.3,
                            deadline=2.5, jitter=True)


def _assembly() -> AssemblyDescriptor:
    return AssemblyDescriptor(
        name="chaos-app",
        instances=[AssemblyInstance(f"i{k}", "Counter") for k in range(4)],
        connections=[AssemblyConnection("i0", "peer", "i1", "value"),
                     AssemblyConnection("i2", "peer", "i3", "value")])


@dataclass
class ChaosWorld:
    """Everything a campaign may poke at (and must leave consistent)."""

    seed: int
    rig: SimRig
    federation: FederatedRegistry
    deployer: Deployer
    app: Application
    supervisor: ApplicationSupervisor
    manager: ReplicaManager
    group: ReplicaGroup
    injector: FaultInjector
    wire: WireFaultModel
    coordinator: str
    repo_id: str
    n_clusters: int
    cluster_size: int
    #: hosts the campaign must never crash or disconnect (the
    #: deployment coordinator / supervisor seat).
    protected: frozenset
    #: WAN backbone links between cluster heads, flap targets.
    wan_links: list = field(default_factory=list)
    client_hosts: list = field(default_factory=list)
    client_procs: list = field(default_factory=list)
    budgets: dict = field(default_factory=dict)
    breakers: dict = field(default_factory=dict)
    client_stop: bool = False
    client_ok: int = 0
    client_errors: int = 0

    # -- conveniences used by actions and invariants ------------------------
    @property
    def topology(self) -> Topology:
        return self.rig.topology

    def alive_hosts(self) -> list:
        return [h for h in self.topology.host_ids()
                if self.topology.host(h).alive]

    def cluster_hosts(self, index: int) -> list:
        return [f"c{index}h{j}" for j in range(self.cluster_size)]

    def stop_clients(self) -> None:
        self.client_stop = True


def _client_loop(world: ChaosWorld, host: str):
    """One chaos client: random reads/increments with retry + breaker.

    Failures are *expected* under chaos — the loop only counts them.
    What must never happen is the loop dying of an unhandled error or
    the breaker/budget wedging shut after the faults heal (both are
    checked by invariant monitors).
    """
    node = world.rig.node(host)
    rng = world.rig.rngs.stream(f"chaos.client.{host}")
    registry = world.breakers[host]
    budget = world.budgets[host]
    names = sorted(world.app.placement)
    while not world.client_stop:
        yield node.env.timeout(float(rng.uniform(0.2, 0.8)))
        if world.client_stop:
            return
        if not node.host.alive:
            continue
        name = names[int(rng.integers(0, len(names)))]
        try:
            ior = world.app.facet_ior(name, "value")
        except DeploymentError:
            world.client_errors += 1      # mid-repair window
            continue
        breaker = registry.breaker_for(ior.host_id)
        try:
            yield from invoke_with_retry(
                node.orb, ior, _INCREMENT, (1,),
                policy=CLIENT_POLICY, breaker=breaker, budget=budget)
            world.client_ok += 1
        except (SystemException, UserException):
            world.client_errors += 1


def build_world(seed: int, n_clusters: int = 3, cluster_size: int = 3,
                config: Optional[FederationConfig] = None) -> ChaosWorld:
    """Stand up the standard chaos scenario, warmed up and running.

    Returns once the assembly is deployed, the replica group is
    watched, gossip membership has converged, and the client loops are
    live — the campaign starts from a healthy steady state.
    """
    topo = clustered(n_clusters, cluster_size, profile=SERVER,
                     backbone="chords")
    # Tight default timeout: calls into a crashed host must expire well
    # inside the campaign's drain window, or quiescence would see their
    # pending replies as wedged when they are merely slow to die.
    rig = SimRig(topo, seed=seed, default_timeout=5.0)
    rig.observe()
    rig.network.wire_faults = WireFaultModel(rig.rngs, rig.metrics)

    coordinator = "c0h0"
    node = rig.node(coordinator)
    package = counter_package(cpu_units=5.0)
    node.install_package(package)
    repo_id = COUNTER_IFACE.repo_id

    # Federated registry with tight timers so short campaigns exercise
    # full publish/gossip/expiry cycles.
    fed_config = config or FederationConfig(
        owners=min(3, n_clusters), vnodes=16, replication=2,
        update_interval=1.0, gossip_interval=0.5, fanout=2,
        query_timeout=0.5, seed_peer_count=2)
    fed = FederatedRegistry(rig.nodes, fed_config)
    fed.deploy()

    dep = Deployer(rig.nodes, RuntimePlanner(),
                   coordinator_host=coordinator)
    app = rig.run(until=dep.deploy(_assembly()))

    manager = ReplicaManager(node)
    replica_hosts = [f"c{i}h{min(1, cluster_size - 1)}"
                     for i in range(min(3, n_clusters))]
    group = rig.run(until=manager.create_group("Counter", replica_hosts))

    # Let reporters publish and gossip converge before the supervisor
    # starts reading liveness out of the federation: at t=0 the
    # membership tables are empty and everything would look dead.
    rig.run(until=rig.env.now + fed.settle_time())

    sup = ApplicationSupervisor(dep, interval=1.0, registry=fed,
                                backoff_base=1.0, backoff_cap=4.0)
    sup.watch_group(group, manager)

    injector = FaultInjector(rig.env, topo)
    heads = {f"c{i}h0" for i in range(n_clusters)}
    wan_links = [link for link in topo.links()
                 if link.a in heads and link.b in heads]

    world = ChaosWorld(
        seed=seed, rig=rig, federation=fed, deployer=dep, app=app,
        supervisor=sup, manager=manager, group=group, injector=injector,
        wire=rig.network.wire_faults, coordinator=coordinator,
        repo_id=repo_id, n_clusters=n_clusters,
        cluster_size=cluster_size, protected=frozenset({coordinator}),
        wan_links=wan_links)

    # One client per cluster, on the last host of each cluster.
    world.client_hosts = [f"c{i}h{cluster_size - 1}"
                          for i in range(n_clusters)]
    for host in world.client_hosts:
        client = rig.node(host)
        world.budgets[host] = RetryBudget(
            rig.env, rig.metrics, ratio=0.2, refill_rate=0.2,
            max_tokens=12.0, initial=6.0)
        world.breakers[host] = BreakerRegistry(
            client.orb, retry_budget=world.budgets[host],
            failure_threshold=4, reset_timeout=5.0)
        world.client_procs.append(
            rig.env.process(_client_loop(world, host)))
    return world

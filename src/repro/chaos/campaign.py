"""The seeded chaos-campaign engine.

A :class:`ChaosCampaign` drives a :class:`~repro.chaos.scenario.ChaosWorld`
through a plan of fault actions sampled from one named RNG stream
(``chaos.plan``): every gap, action kind, target and dwell time is a
deterministic function of the world seed, so a campaign — and any
violation it finds — replays byte-for-byte from the seed alone.

The campaign loop alternates *inject* and *observe*: apply a fault,
probe the invariant panel mid-flight (lenient: self-healing takes
time), eventually revert the fault.  After the horizon it heals
everything, waits out a settle window derived from the system's own
timers (gossip convergence, supervisor backoff), stops the client
traffic, lets in-flight work drain, and then probes *strictly*: at
quiescence every invariant must hold, or the campaign reports a
violation carrying the seed and the trailing action trace.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.chaos.actions import ACTIONS, AppliedFault
from repro.chaos.invariants import (
    MID,
    QUIESCENCE,
    default_monitors,
    probe_monitor,
)
from repro.chaos.report import (
    ChaosAction,
    ChaosReport,
    InvariantCheck,
    InvariantViolation,
)
from repro.chaos.scenario import ChaosWorld, build_world
from repro.util.errors import ConfigurationError

#: Named RNG stream every plan draw comes from.
PLAN_STREAM = "chaos.plan"

#: Default action mix: crashes and partitions dominate, the subtler
#: faults (corruption, skew, slowdown) season the plan.
DEFAULT_WEIGHTS = (
    ("crash_host", 3.0),
    ("partition_cluster", 2.0),
    ("wan_flap", 2.0),
    ("wire_storm", 1.5),
    ("slow_host", 1.5),
    ("clock_skew", 1.0),
    ("isolate_owner", 1.0),
)


@dataclass(frozen=True)
class CampaignConfig:
    """Shape of one campaign: length, tempo and fault mix."""

    horizon: float = 60.0             # injection window (sim seconds)
    mean_gap: float = 3.0             # between consecutive actions
    mean_dwell: float = 6.0           # how long a fault stays applied
    max_concurrent_faults: int = 3
    max_dead: int = 2                 # hosts allowed down at once
    settle: float = 0.0               # 0 -> derived from world timers
    drain: float = 6.0                # post-stop traffic drain
    ttl_bound: float = 6.0            # resolution latency invariant
    weights: tuple = DEFAULT_WEIGHTS

    def __post_init__(self) -> None:
        if self.horizon <= 0:
            raise ConfigurationError("horizon must be > 0")
        if self.mean_gap <= 0 or self.mean_dwell <= 0:
            raise ConfigurationError("gap/dwell means must be > 0")
        if self.max_concurrent_faults < 1:
            raise ConfigurationError("max_concurrent_faults must be >= 1")
        for kind, weight in self.weights:
            if kind not in ACTIONS:
                raise ConfigurationError(f"unknown action kind {kind!r}")
            if weight < 0:
                raise ConfigurationError(f"negative weight for {kind!r}")
        if not any(w > 0 for _, w in self.weights):
            raise ConfigurationError("all action weights are zero")

    def to_dict(self) -> dict:
        return {
            "horizon": self.horizon, "mean_gap": self.mean_gap,
            "mean_dwell": self.mean_dwell,
            "max_concurrent_faults": self.max_concurrent_faults,
            "max_dead": self.max_dead, "settle": self.settle,
            "drain": self.drain, "ttl_bound": self.ttl_bound,
            # Ordered pairs, not a mapping: the weighted draw walks the
            # tuple in order, so order is part of the plan's identity.
            "weights": [[kind, weight] for kind, weight in self.weights],
        }


@dataclass
class CampaignState:
    """Mutable bookkeeping the actions consult to avoid stacking the
    same fault twice on one target."""

    max_dead: int = 2
    partitioned: set = field(default_factory=set)
    cut_links: set = field(default_factory=set)
    slowed: set = field(default_factory=set)
    skewed: set = field(default_factory=set)


class ChaosCampaign:
    """Drives one seeded campaign over one world."""

    def __init__(self, world: ChaosWorld,
                 config: Optional[CampaignConfig] = None,
                 monitors: Optional[list] = None) -> None:
        self.world = world
        self.config = config or CampaignConfig()
        self.monitors = (monitors if monitors is not None
                         else default_monitors(self.config.ttl_bound))
        self.rng = world.rig.rngs.stream(PLAN_STREAM)
        self.state = CampaignState(max_dead=self.config.max_dead)
        self.active: list[AppliedFault] = []
        self.report = ChaosReport(
            seed=world.seed, horizon=self.config.horizon,
            settle=self._settle_window(),
            config=self.config.to_dict())

    # -- timing -------------------------------------------------------------
    def _settle_window(self) -> float:
        """Quiescence wait derived from the system's own timers: long
        enough for membership to re-converge and the supervisor to
        exhaust its repair backoff."""
        if self.config.settle > 0:
            return self.config.settle
        fed = self.world.federation.config
        sup = self.world.supervisor
        gossip = (fed.member_timeout + 2.0 * fed.update_interval
                  + 4.0 * fed.gossip_interval)
        healing = sup.backoff_cap + 3.0 * sup.interval
        return max(gossip, healing) + 1.0

    # -- public API ---------------------------------------------------------
    def run(self) -> ChaosReport:
        """Execute the whole campaign synchronously; returns the report."""
        self.world.rig.run_process(self._drive())
        return self.report

    # -- engine -------------------------------------------------------------
    def _drive(self):
        env = self.world.rig.env
        cfg = self.config
        t_end = env.now + cfg.horizon
        while env.now < t_end:
            gap = min(max(float(self.rng.exponential(cfg.mean_gap)),
                          0.25), 4.0 * cfg.mean_gap)
            yield env.timeout(gap)
            self._revert_expired()
            if len(self.active) >= cfg.max_concurrent_faults:
                self._revert_fault(self.active[0])
            self._apply_one()
            yield from self._probe(MID)
        # Heal the world and demand convergence.
        while self.active:
            self._revert_fault(self.active[0])
        yield env.timeout(self.report.settle)
        self.world.stop_clients()
        yield env.timeout(cfg.drain)
        yield from self._probe(QUIESCENCE)
        self._snapshot_metrics()

    def _pick_kind(self) -> str:
        weights = self.config.weights
        total = sum(w for _, w in weights)
        draw = float(self.rng.random()) * total
        for kind, weight in weights:
            draw -= weight
            if draw < 0:
                return kind
        return weights[-1][0]

    def _apply_one(self) -> None:
        env = self.world.rig.env
        metrics = self.world.rig.metrics
        kind = self._pick_kind()
        result = ACTIONS[kind](self.world, self.rng, self.state)
        if result is None:
            self.report.actions.append(ChaosAction(
                time=env.now, kind=kind, target="-",
                detail=(("skipped", "no eligible target"),)))
            metrics.counter("chaos.skipped").inc()
            return
        target, revert, detail = result
        dwell = min(max(float(self.rng.exponential(
            self.config.mean_dwell)), 1.0), 4.0 * self.config.mean_dwell)
        fault = AppliedFault(kind=kind, target=target,
                             applied_at=env.now,
                             until=env.now + dwell, revert=revert,
                             detail=detail)
        self.active.append(fault)
        self.report.actions.append(ChaosAction(
            time=env.now, kind=kind, target=target,
            detail=tuple(sorted({**detail,
                                 "dwell": round(dwell, 3)}.items()))))
        metrics.counter("chaos.actions").inc()
        metrics.counter(f"chaos.action.{kind}").inc()
        obs = self.world.rig.obs
        if obs is not None:
            span = obs.span(f"chaos:{kind}", host=target,
                            attrs={"target": target})
            obs.tracer.end_span(span)

    def _revert_expired(self) -> None:
        now = self.world.rig.env.now
        for fault in list(self.active):
            if fault.until <= now:
                self._revert_fault(fault)

    def _revert_fault(self, fault: AppliedFault) -> None:
        self.active.remove(fault)
        fault.revert()
        self.report.actions.append(ChaosAction(
            time=self.world.rig.env.now, kind=f"heal.{fault.kind}",
            target=fault.target))
        self.world.rig.metrics.counter("chaos.heals").inc()

    def _probe(self, phase: str):
        env = self.world.rig.env
        for monitor in self.monitors:
            ok, detail = yield from probe_monitor(
                monitor, self.world, phase)
            self.report.checks.append(InvariantCheck(
                time=env.now, name=monitor.name, phase=phase,
                ok=ok, detail=detail))
            if ok or (phase == MID and not monitor.strict_mid):
                continue
            trace = tuple(a.summary()
                          for a in self.report.actions[-6:])
            self.report.violations.append(InvariantViolation(
                time=env.now, name=monitor.name, phase=phase,
                detail=detail, seed=self.world.seed, trace=trace))
            self.world.rig.metrics.counter("chaos.violations").inc()

    def _snapshot_metrics(self) -> None:
        metrics = self.world.rig.metrics
        keys = (
            "chaos.actions", "chaos.heals", "chaos.skipped",
            "chaos.violations", "orb.retries", "orb.retries.shed",
            "breaker.fast_fails",
            "supervisor.recoveries", "supervisor.promotions",
            "supervisor.stranded", "supervisor.recovery.deferred",
            "supervisor.repair.fenced", "supervisor.orphans_swept",
            "federation.epoch_clamped", "federation.lookup.failover",
            "federation.lookup.ring_fallback",
            "federation.lookup.flood_fallback",
        )
        snapshot = {key: metrics.get(key) for key in keys
                    if metrics.get(key)}
        snapshot["client.ok"] = self.world.client_ok
        snapshot["client.errors"] = self.world.client_errors
        self.report.metrics = snapshot


def run_campaign(seed: int, config: Optional[CampaignConfig] = None,
                 n_clusters: int = 3,
                 cluster_size: int = 3) -> ChaosReport:
    """Build the standard world for *seed* and run one campaign."""
    world = build_world(seed, n_clusters=n_clusters,
                        cluster_size=cluster_size)
    return ChaosCampaign(world, config).run()

"""Composable invariant monitors probed by chaos campaigns.

Each monitor checks one system-level property against the *live*
simulated world — not against logs.  Monitors are probed between fault
actions (``phase="mid"``) and after the campaign heals everything and
lets the system settle (``phase="quiescence"``).

Mid-flight, most properties are legitimately violated in the window
between a fault and the system's reaction (that is the point of
self-healing), so only monitors with ``strict_mid = True`` turn a mid
failure into a violation; the rest record the observation and enforce
only at quiescence, when the system has had every chance to converge.

A probe may be a plain function (pure state inspection) or a generator
(it issues simulated RPCs, e.g. the resolution probes); either way it
returns ``(ok, detail)``.
"""

from __future__ import annotations

from typing import Iterable

from repro.orb.exceptions import SystemException
from repro.xmlmeta.descriptors import QoSSpec

MID = "mid"
QUIESCENCE = "quiescence"


class InvariantMonitor:
    """Base class: name, mid-strictness, and a probe."""

    #: short stable identifier used in reports.
    name = "invariant"
    #: when True, a failed mid-campaign probe is a violation too.
    strict_mid = False

    def probe(self, world, phase: str):
        """Return ``(ok, detail)``; may be a generator that yields
        simulation events before returning."""
        raise NotImplementedError


def _running_ground_truth(world) -> set:
    """Hosts that really run a provider of the world's repo-id now."""
    out = set()
    for host in world.alive_hosts():
        if world.rig.node(host).registry.running_providers(world.repo_id):
            out.add(host)
    return out


def _local_fast_path(world) -> set:
    """What ``ResolverBase._resolve`` answers before ever asking the
    network: the querying node's own running providers.  Both lookup
    monitors union this in, mirroring what resolution delivers."""
    node = world.rig.node(world.coordinator)
    if node.registry.running_providers(world.repo_id):
        return {world.coordinator}
    return set()


class FederatedResolvableMonitor(InvariantMonitor):
    """Every running provider is resolvable through the shard ring
    (with its dead-owner fallbacks) within a latency bound."""

    name = "resolvable.federated"

    def __init__(self, ttl_bound: float = 6.0) -> None:
        self.ttl_bound = ttl_bound

    def probe(self, world, phase: str):
        env = world.rig.env
        resolver = world.federation.resolvers[world.coordinator]
        truth = _running_ground_truth(world)
        start = env.now
        try:
            cands = yield from resolver._find(world.repo_id, QoSSpec())
        except SystemException as exc:
            return False, f"federated lookup raised {exc!r}"
        elapsed = env.now - start
        found = ({c.host for c in cands if c.is_running}
                 | _local_fast_path(world))
        missing = truth - found
        detail = (f"{len(found)}/{len(truth)} running providers "
                  f"in {elapsed:.3f}s")
        if elapsed > self.ttl_bound:
            return False, f"lookup took {elapsed:.3f}s > {self.ttl_bound}s"
        if phase == QUIESCENCE and missing:
            return False, (f"unresolvable running providers "
                           f"{sorted(missing)} ({detail})")
        if phase == MID and truth and not found:
            # Mid-campaign staleness may hide *some* providers, but a
            # completely empty answer while providers run is recorded.
            return True, f"degraded: no providers visible ({detail})"
        return True, detail


class FloodResolvableMonitor(InvariantMonitor):
    """The emergency flood path agrees with per-node ground truth."""

    name = "resolvable.flood"

    def __init__(self, ttl_bound: float = 6.0) -> None:
        self.ttl_bound = ttl_bound

    def probe(self, world, phase: str):
        env = world.rig.env
        resolver = world.federation.resolvers[world.coordinator]
        truth = _running_ground_truth(world)
        start = env.now
        try:
            cands = yield from resolver._flood_find(world.repo_id,
                                                    QoSSpec())
        except SystemException as exc:
            return False, f"flood lookup raised {exc!r}"
        elapsed = env.now - start
        found = ({c.host for c in cands if c.is_running}
                 | _local_fast_path(world))
        missing = truth - found
        detail = (f"{len(found)}/{len(truth)} running providers "
                  f"in {elapsed:.3f}s")
        if elapsed > self.ttl_bound:
            return False, f"flood took {elapsed:.3f}s > {self.ttl_bound}s"
        if phase == QUIESCENCE and missing:
            return False, (f"flood missed running providers "
                           f"{sorted(missing)} ({detail})")
        return True, detail


class SinglePrimaryMonitor(InvariantMonitor):
    """Replica-group fencing: never two members claiming the current
    epoch; at quiescence the primary sits on a live host."""

    name = "replica.single_primary"
    strict_mid = True

    def probe(self, world, phase: str):
        group = world.group
        ids = [m.instance_id for m in group.members]
        if len(ids) != len(set(ids)):
            return False, f"duplicate member instance ids: {ids}"
        designated = [m for m in group.members
                      if m.instance_id == group.primary_id]
        if len(designated) != 1:
            return False, (f"{len(designated)} members designated "
                           f"primary ({group.primary_id!r})")
        # Backups legitimately share the primary's epoch once a sync
        # hands them its state generation; fencing means the designated
        # primary carries the *newest* epoch and nobody exceeds it.
        ahead = [m for m in group.members if m.epoch > group.epoch]
        if ahead:
            return False, (f"members ahead of group epoch "
                           f"{group.epoch}: "
                           f"{[m.instance_id for m in ahead]}")
        if group.epoch > 0 and designated[0].epoch != group.epoch:
            return False, (f"designated primary {group.primary_id} "
                           f"holds stale epoch {designated[0].epoch} "
                           f"!= group epoch {group.epoch}")
        if phase == QUIESCENCE:
            primary = group.primary
            if primary is None:
                return False, "group has no primary at quiescence"
            if not world.topology.host(primary.host).alive:
                return False, (f"primary {primary.instance_id} sits on "
                               f"dead host {primary.host}")
        return True, (f"epoch={group.epoch} "
                      f"primary={group.primary_id}")


class NoOrphanInstancesMonitor(InvariantMonitor):
    """After the supervisor settles, every displaced incarnation has
    been swept and each instance runs exactly where placement says."""

    name = "deployment.no_orphans"

    def probe(self, world, phase: str):
        orphans = list(world.deployer.orphans)
        if phase != QUIESCENCE:
            return True, f"{len(orphans)} orphan(s) pending sweep"
        if orphans:
            return False, f"unswept orphans: {orphans}"
        app = world.app
        for name, host in app.placement.items():
            if not world.topology.host(host).alive:
                return False, (f"instance {name} placed on dead host "
                               f"{host}")
            iid = app.instance_id(name)
            copies = [h for h in world.alive_hosts()
                      if world.rig.node(h).container.find_instance(iid)
                      is not None]
            if copies != [host]:
                return False, (f"instance {name} ({iid}) incarnated on "
                               f"{copies}, placement says [{host}]")
        return True, f"{len(app.placement)} instances, all singular"


class MembershipConvergenceMonitor(InvariantMonitor):
    """Gossiped membership converges to topology ground truth and all
    owners agree, within the quiescence settle window."""

    name = "federation.membership"

    def probe(self, world, phase: str):
        fed = world.federation
        truth = set(world.alive_hosts())
        live = fed.live_hosts()
        if phase != QUIESCENCE:
            return True, (f"membership sees {len(live)}/{len(truth)} "
                          f"live hosts")
        missing = truth - live
        extra = live - truth
        if missing or extra:
            return False, (f"membership diverged from ground truth: "
                           f"missing={sorted(missing)} "
                           f"extra={sorted(extra)}")
        if not fed.owner_views_agree():
            return False, "owner membership views disagree"
        return True, f"{len(live)} hosts, owners agree"


class ControlLoopsAliveMonitor(InvariantMonitor):
    """No background loop died of an unhandled error: the supervisor,
    every live owner's gossip loop, every live reporter, and the chaos
    clients must still be running."""

    name = "loops.alive"
    strict_mid = True

    def probe(self, world, phase: str):
        sup = world.supervisor
        if sup._proc is None or not sup._proc.is_alive:
            return False, "application supervisor loop is dead"
        dead = []
        for host, agent in world.federation.agents.items():
            if agent.node.host.alive and (agent._proc is None or
                                          not agent._proc.is_alive):
                dead.append(f"agent:{host}")
        for host, reporter in world.federation.reporters.items():
            if reporter.node.host.alive and (reporter._proc is None or
                                             not reporter._proc.is_alive):
                dead.append(f"reporter:{host}")
        if not world.client_stop:
            for host, proc in zip(world.client_hosts,
                                  world.client_procs):
                if not proc.is_alive:
                    dead.append(f"client:{host}")
        if dead:
            return False, f"dead control loops: {dead}"
        return True, "supervisor, owners, reporters, clients all live"


class AdmissionRecoveredMonitor(InvariantMonitor):
    """After faults heal and traffic drains, nothing is wedged: no
    reply has been pending longer than the call-deadline horizon
    (background loops legitimately have *young* calls in flight at any
    instant), every breaker admits calls to live peers again, and
    retry budgets have refilled."""

    name = "admission.recovered"

    def __init__(self, stale_after: float = 6.0) -> None:
        self.stale_after = stale_after

    def probe(self, world, phase: str):
        if phase != QUIESCENCE:
            return True, "checked at quiescence only"
        now = world.rig.env.now
        for host, node in world.rig.nodes.items():
            for rid, (ev, odef, info) in node.orb._pending.items():
                age = now - getattr(info, "start", now)
                if age > self.stale_after:
                    return False, (f"reply {rid} ({odef.name}) on "
                                   f"{host} pending {age:.3f}s — the "
                                   f"deadline sweeper never expired it")
        for host, registry in world.breakers.items():
            for peer, breaker in registry._breakers.items():
                if world.topology.host(peer).alive and not breaker.allow():
                    return False, (f"breaker {host}->{peer} wedged "
                                   f"{breaker.state} after drain")
        for host, budget in world.budgets.items():
            if budget.available() < 1.0:
                return False, (f"retry budget on {host} still dry "
                               f"({budget.available():.2f} tokens)")
        return True, "orbs drained, breakers admitting, budgets refilled"


def default_monitors(ttl_bound: float = 6.0) -> list:
    """The standard panel, in probe order."""
    return [
        ControlLoopsAliveMonitor(),
        SinglePrimaryMonitor(),
        FederatedResolvableMonitor(ttl_bound=ttl_bound),
        FloodResolvableMonitor(ttl_bound=ttl_bound),
        NoOrphanInstancesMonitor(),
        MembershipConvergenceMonitor(),
        AdmissionRecoveredMonitor(),
    ]


def probe_monitor(monitor: InvariantMonitor, world, phase: str):
    """Drive one probe, generator or not; yields from generators."""
    result = monitor.probe(world, phase)
    if hasattr(result, "__next__"):
        result = yield from result
    return result


__all__: Iterable[str] = [
    "InvariantMonitor", "FederatedResolvableMonitor",
    "FloodResolvableMonitor", "SinglePrimaryMonitor",
    "NoOrphanInstancesMonitor", "MembershipConvergenceMonitor",
    "ControlLoopsAliveMonitor", "AdmissionRecoveredMonitor",
    "default_monitors", "probe_monitor", "MID", "QUIESCENCE",
]

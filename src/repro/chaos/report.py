"""Typed, byte-reproducible chaos-campaign reports.

Everything a campaign run produces — the fault actions it applied, the
invariant checks it ran, and any violations — is captured in plain
frozen records and serialized *canonically* (sorted keys, fixed
separators, no timestamps from the host machine).  Because the whole
simulation is seeded, two runs of the same campaign seed and config
must produce byte-identical JSON; a violation report therefore *is*
its own reproducer, and :meth:`ChaosReport.digest` is a stable
fingerprint the tooling compares after a replay.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Optional


def canonical_json(obj: Any) -> str:
    """Deterministic JSON: sorted keys, no whitespace variance."""
    return json.dumps(obj, sort_keys=True, separators=(",", ":"))


@dataclass(frozen=True)
class ChaosAction:
    """One fault (or heal) the campaign applied to the world."""

    time: float
    kind: str                    # "crash_host", "heal.partition", ...
    target: str                  # host id, link pair, cluster name...
    detail: tuple[tuple[str, Any], ...] = ()

    def to_dict(self) -> dict:
        return {"time": self.time, "kind": self.kind,
                "target": self.target, "detail": dict(self.detail)}

    def summary(self) -> str:
        return f"t={self.time:.3f} {self.kind}({self.target})"


@dataclass(frozen=True)
class InvariantCheck:
    """One probe of one invariant monitor."""

    time: float
    name: str
    phase: str                   # "mid" | "quiescence"
    ok: bool
    detail: str = ""

    def to_dict(self) -> dict:
        return {"time": self.time, "name": self.name,
                "phase": self.phase, "ok": self.ok,
                "detail": self.detail}


@dataclass(frozen=True)
class InvariantViolation:
    """A failed check that counts against the campaign.

    Carries the seed and the trailing action context so the violation
    can be replayed byte-for-byte from the report alone.
    """

    time: float
    name: str
    phase: str
    detail: str
    seed: int
    trace: tuple[str, ...] = ()  # recent actions leading up to it

    def to_dict(self) -> dict:
        return {"time": self.time, "name": self.name,
                "phase": self.phase, "detail": self.detail,
                "seed": self.seed, "trace": list(self.trace)}


@dataclass
class ChaosReport:
    """Everything one campaign run produced."""

    seed: int
    horizon: float
    settle: float
    config: dict = field(default_factory=dict)
    actions: list[ChaosAction] = field(default_factory=list)
    checks: list[InvariantCheck] = field(default_factory=list)
    violations: list[InvariantViolation] = field(default_factory=list)
    metrics: dict = field(default_factory=dict)

    @property
    def ok(self) -> bool:
        return not self.violations

    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "horizon": self.horizon,
            "settle": self.settle,
            "config": self.config,
            "actions": [a.to_dict() for a in self.actions],
            "checks": [c.to_dict() for c in self.checks],
            "violations": [v.to_dict() for v in self.violations],
            "metrics": self.metrics,
            "ok": self.ok,
        }

    def to_json(self) -> str:
        return canonical_json(self.to_dict())

    def digest(self) -> str:
        """Stable fingerprint: replaying the seed must reproduce it."""
        return hashlib.sha256(self.to_json().encode("utf-8")).hexdigest()

    # -- summaries -----------------------------------------------------------
    def action_counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for action in self.actions:
            out[action.kind] = out.get(action.kind, 0) + 1
        return out

    def render_text(self) -> str:
        counts = ", ".join(f"{k}={n}" for k, n in
                           sorted(self.action_counts().items()))
        quiescent = sum(1 for c in self.checks
                        if c.phase == "quiescence")
        lines = [
            f"chaos campaign seed={self.seed} horizon={self.horizon:g}s "
            f"settle={self.settle:g}s",
            f"  actions: {len(self.actions)} ({counts})",
            f"  checks:  {len(self.checks)} ({quiescent} at quiescence)",
        ]
        if self.violations:
            lines.append(f"  VIOLATIONS: {len(self.violations)}")
            for v in self.violations:
                lines.append(f"    [{v.phase}] t={v.time:.3f} "
                             f"{v.name}: {v.detail}")
                for entry in v.trace:
                    lines.append(f"      {entry}")
                lines.append(f"      replay: python -m repro.tools.chaos "
                             f"--seed {v.seed}")
        else:
            lines.append("  violations: none")
        return "\n".join(lines)

    @classmethod
    def from_dict(cls, data: dict) -> "ChaosReport":
        return cls(
            seed=data["seed"],
            horizon=data["horizon"],
            settle=data["settle"],
            config=dict(data.get("config", {})),
            actions=[ChaosAction(
                time=a["time"], kind=a["kind"], target=a["target"],
                detail=tuple(sorted(a.get("detail", {}).items())))
                for a in data.get("actions", [])],
            checks=[InvariantCheck(
                time=c["time"], name=c["name"], phase=c["phase"],
                ok=c["ok"], detail=c.get("detail", ""))
                for c in data.get("checks", [])],
            violations=[InvariantViolation(
                time=v["time"], name=v["name"], phase=v["phase"],
                detail=v["detail"], seed=v["seed"],
                trace=tuple(v.get("trace", ())))
                for v in data.get("violations", [])],
            metrics=dict(data.get("metrics", {})),
        )

"""Unit tests for component packaging, binaries and signatures."""

import pytest

from repro.packaging.binaries import (
    BinaryRegistry,
    compressed_size,
    synthetic_payload,
)
from repro.packaging.package import (
    COMPONENT_PATH,
    ComponentPackage,
    PackageBuilder,
    PackageError,
    SIGNATURE_PATH,
    SOFTPKG_PATH,
)
from repro.packaging.signature import SignatureError, VendorKeyRegistry
from repro.util.errors import ConfigurationError
from repro.xmlmeta.descriptors import (
    ComponentTypeDescriptor,
    ImplementationDescriptor,
    PortDecl,
    QoSSpec,
    SoftwareDescriptor,
)
from repro.xmlmeta.versions import Version


def make_descriptors(name="Decoder"):
    soft = SoftwareDescriptor(
        name=name, version=Version(1, 0), vendor="acme",
        implementations=[
            ImplementationDescriptor("linux", "x86", "corba-lc",
                                     "demo.lin", "bin/linux-x86/impl"),
            ImplementationDescriptor("palmos", "arm", "corba-lc-micro",
                                     "demo.pda", "bin/palmos-arm/impl"),
        ],
    )
    comp = ComponentTypeDescriptor(
        name=name,
        provides=[PortDecl("out", "IDL:t/Out:1.0")],
        qos=QoSSpec(cpu_units=1),
    )
    return soft, comp


def build_package(compress=True, signer=None, big_payload=False):
    soft, comp = make_descriptors()
    builder = PackageBuilder(soft, comp)
    builder.add_idl("decoder", "interface Out { void f(); };")
    size = 50_000 if big_payload else 500
    builder.add_binary("bin/linux-x86/impl",
                       synthetic_payload(size, seed=1))
    builder.add_binary("bin/palmos-arm/impl",
                       synthetic_payload(size // 10, seed=2))
    return builder.build(compress=compress, signer=signer)


class TestBinaryRegistry:
    def test_register_and_resolve(self):
        reg = BinaryRegistry()
        fn = lambda: "impl"
        reg.register("a.b", fn)
        assert reg.resolve("a.b") is fn
        assert "a.b" in reg

    def test_duplicate_rejected_unless_same(self):
        reg = BinaryRegistry()
        fn = lambda: 1
        reg.register("x", fn)
        reg.register("x", fn)  # idempotent
        with pytest.raises(ConfigurationError):
            reg.register("x", lambda: 2)
        reg.register("x", lambda: 3, replace=True)

    def test_unknown_entry_point(self):
        with pytest.raises(ConfigurationError):
            BinaryRegistry().resolve("ghost")


class TestSyntheticPayload:
    def test_deterministic(self):
        assert synthetic_payload(100, seed=4) == synthetic_payload(100, seed=4)
        assert synthetic_payload(100, seed=4) != synthetic_payload(100, seed=5)

    def test_compressibility_controls_deflate_ratio(self):
        incompressible = synthetic_payload(10_000, compressibility=0.0)
        compressible = synthetic_payload(10_000, compressibility=1.0)
        assert compressed_size(compressible) < compressed_size(incompressible) / 10

    def test_size_validation(self):
        with pytest.raises(ConfigurationError):
            synthetic_payload(-1)
        with pytest.raises(ConfigurationError):
            synthetic_payload(10, compressibility=2.0)

    def test_exact_size(self):
        assert len(synthetic_payload(1234, compressibility=0.3)) == 1234


class TestPackageBuild:
    def test_roundtrip(self):
        pkg = ComponentPackage(build_package())
        assert pkg.name == "Decoder"
        assert str(pkg.version) == "1.0.0"
        assert SOFTPKG_PATH in pkg.members()
        assert COMPONENT_PATH in pkg.members()
        assert pkg.idl_sources() == {
            "idl/decoder.idl": "interface Out { void f(); };"
        }

    def test_descriptor_names_must_agree(self):
        soft, _ = make_descriptors("A")
        _, comp = make_descriptors("B")
        with pytest.raises(PackageError):
            PackageBuilder(soft, comp)

    def test_declared_binary_must_be_added(self):
        soft, comp = make_descriptors()
        builder = PackageBuilder(soft, comp)
        builder.add_binary("bin/linux-x86/impl", b"x")
        with pytest.raises(PackageError, match="missing"):
            builder.build()

    def test_undeclared_binary_rejected(self):
        soft, comp = make_descriptors()
        builder = PackageBuilder(soft, comp)
        builder.add_binary("bin/linux-x86/impl", b"x")
        builder.add_binary("bin/palmos-arm/impl", b"y")
        builder.add_binary("bin/rogue/impl", b"z")
        with pytest.raises(PackageError, match="not declared"):
            builder.build()

    def test_binary_path_prefix_enforced(self):
        soft, comp = make_descriptors()
        with pytest.raises(PackageError):
            PackageBuilder(soft, comp).add_binary("oops/impl", b"x")

    def test_not_a_zip_rejected(self):
        with pytest.raises(PackageError):
            ComponentPackage(b"definitely not a zip")

    def test_compression_shrinks_compressible_packages(self):
        compressed = build_package(compress=True, big_payload=True)
        stored = build_package(compress=False, big_payload=True)
        assert len(compressed) < len(stored)


class TestPlatformSelection:
    def test_binary_payload_per_platform(self):
        pkg = ComponentPackage(build_package())
        lin = pkg.binary_payload("linux", "x86", "corba-lc")
        pda = pkg.binary_payload("palmos", "arm", "corba-lc-micro")
        assert len(lin) == 500
        assert len(pda) == 50

    def test_unsupported_platform(self):
        pkg = ComponentPackage(build_package())
        assert not pkg.supports_platform("win32", "x86", "corba-lc")
        with pytest.raises(PackageError):
            pkg.binary_payload("win32", "x86", "corba-lc")

    def test_extract_subset_keeps_only_platform_binary(self):
        pkg = ComponentPackage(build_package(big_payload=True))
        sub = pkg.extract_subset("palmos", "arm", "corba-lc-micro")
        assert sub.name == pkg.name
        assert sub.supports_platform("palmos", "arm", "corba-lc-micro")
        assert not sub.supports_platform("linux", "x86", "corba-lc")
        assert sub.size < pkg.size / 2        # dropped the big binary
        assert sub.idl_sources() == pkg.idl_sources()

    def test_extract_subset_unsupported_platform(self):
        pkg = ComponentPackage(build_package())
        with pytest.raises(PackageError):
            pkg.extract_subset("beos", "ppc", "tao")


class TestSignatures:
    def test_sign_and_verify(self):
        registry = VendorKeyRegistry()
        registry.register_vendor("acme")
        pkg = ComponentPackage(build_package(signer=registry))
        assert pkg.is_signed()
        assert pkg.verify_signature(registry) == "acme"

    def test_unsigned_package_fails_verification(self):
        registry = VendorKeyRegistry()
        pkg = ComponentPackage(build_package())
        assert not pkg.is_signed()
        with pytest.raises(SignatureError, match="unsigned"):
            pkg.verify_signature(registry)

    def test_tampered_content_detected(self):
        import io
        import zipfile

        registry = VendorKeyRegistry()
        data = build_package(signer=registry)
        pkg = ComponentPackage(data)
        # Rebuild the archive with one payload flipped.
        members = {name: pkg.member(name) for name in pkg.members()}
        members["bin/linux-x86/impl"] = b"evil" + members["bin/linux-x86/impl"][4:]
        buf = io.BytesIO()
        with zipfile.ZipFile(buf, "w") as zf:
            for name, payload in members.items():
                zf.writestr(name, payload)
        tampered = ComponentPackage(buf.getvalue())
        with pytest.raises(SignatureError, match="mismatch"):
            tampered.verify_signature(registry)

    def test_unknown_vendor_rejected(self):
        signer = VendorKeyRegistry()
        pkg = ComponentPackage(build_package(signer=signer))
        other = VendorKeyRegistry(secret=b"different-root")
        # 'acme' is unknown to the verifying registry until registered;
        # once registered, the key differs, so the digest check fails.
        with pytest.raises(SignatureError, match="unknown vendor"):
            pkg.verify_signature(other)
        other.register_vendor("acme")
        with pytest.raises(SignatureError, match="mismatch"):
            pkg.verify_signature(other)

    def test_signature_stable_per_content(self):
        registry = VendorKeyRegistry()
        assert build_package(signer=registry) == build_package(signer=registry)

"""Tests for the CSCW components (Fig. 2 scenario)."""

import pytest

from repro.container.migration import MigrationEngine, MigrationError
from repro.cscw import (
    DISPLAY_IFACE,
    STREAM_SOURCE_IFACE,
    SURFACE_IFACE,
    display_package,
    gui_part_package,
    stream_source_package,
    video_decoder_package,
    whiteboard_package,
)
from repro.cscw.video import DECODE_EXPANSION, ENCODED_FRAME_BYTES, FRAME_RATE
from repro.deployment import Deployer, RuntimePlanner
from repro.sim.topology import (
    DESKTOP,
    LAN,
    PDA,
    SERVER,
    WAN,
    Topology,
)
from repro.testing import SimRig
from repro.xmlmeta.descriptors import (
    AssemblyConnection,
    AssemblyDescriptor,
    AssemblyInstance,
)


def stroke(author="alice", color="red"):
    return {"author": author, "x0": 0.0, "y0": 0.0, "x1": 1.0, "y1": 1.0,
            "color": color}


@pytest.fixture
def office():
    topo = Topology()
    topo.add_host("server", SERVER)
    topo.add_host("alice", DESKTOP)
    topo.add_host("bob", DESKTOP)
    for a, b in (("server", "alice"), ("server", "bob"), ("alice", "bob")):
        topo.add_link(a, b, LAN)
    return SimRig(topo)


class TestDisplay:
    def test_draw_and_blit_counted(self, office):
        alice = office.node("alice")
        alice.install_package(display_package())
        inst = alice.container.create_instance("Display")
        stub = office.node("bob").orb.stub(
            inst.ports.facet("graphics").ior, DISPLAY_IFACE)
        bob = office.node("bob")
        bob.orb.sync(stub.draw("w1", "line"))
        bob.orb.sync(stub.blit("w1", b"\x00" * 1000))
        assert bob.orb.sync(stub.drawn_count()) == 2
        assert bob.orb.sync(stub.blitted_bytes()) == 1000
        assert inst.executor.windows["w1"][0] == "line"

    def test_display_is_pinned(self, office):
        alice = office.node("alice")
        alice.install_package(display_package())
        inst = alice.container.create_instance("Display")
        with pytest.raises(MigrationError, match="pinned"):
            office.run(until=MigrationEngine(alice).migrate(
                inst.instance_id, "bob"))


class TestWhiteboard:
    def test_strokes_and_revision(self, office):
        server = office.node("server")
        server.install_package(whiteboard_package())
        inst = server.container.create_instance("Whiteboard")
        stub = server.orb.stub(inst.ports.facet("surface").ior,
                               SURFACE_IFACE)
        server.orb.sync(stub.add_stroke(stroke()))
        server.orb.sync(stub.add_stroke(stroke("bob", "blue")))
        strokes = server.orb.sync(stub.strokes())
        assert [s["author"] for s in strokes] == ["alice", "bob"]
        assert server.orb.sync(stub.revision()) == 2
        server.orb.sync(stub.clear())
        assert server.orb.sync(stub.strokes()) == []

    def test_full_collaboration_pipeline(self, office):
        """Fig. 2, end to end: stroke -> event -> GUI parts -> displays."""
        server = office.node("server")
        server.install_package(whiteboard_package())
        server.install_package(gui_part_package())
        displays = {}
        for user in ("alice", "bob"):
            office.node(user).install_package(display_package())
            displays[user] = office.node(user).container.create_instance(
                "Display")
        asm = AssemblyDescriptor(
            name="wb",
            instances=[AssemblyInstance("board", "Whiteboard"),
                       AssemblyInstance("gui_a", "BoardGui"),
                       AssemblyInstance("gui_b", "BoardGui")],
            connections=[
                AssemblyConnection("gui_a", "board", "board", "changes",
                                   kind="event"),
                AssemblyConnection("gui_b", "board", "board", "changes",
                                   kind="event"),
            ])
        dep = Deployer(office.nodes, RuntimePlanner(),
                       coordinator_host="server")
        app = office.run(until=dep.deploy(asm))
        # wire each GUI part to its user's local display
        for user, gui in (("alice", "gui_a"), ("bob", "gui_b")):
            agent = server.service_stub(app.placement[gui], "container")
            office.run(until=agent.connect(
                app.instance_id(gui), "display",
                displays[user].ports.facet("graphics").ior.to_string()))
        surface = server.orb.stub(app.facet_ior("board", "surface"),
                                  SURFACE_IFACE)
        server.orb.sync(surface.add_stroke(stroke()))
        office.run(until=office.env.now + 1.0)
        assert displays["alice"].executor.drawn == 1
        assert displays["bob"].executor.drawn == 1

    def test_gui_part_replacement_changes_render_style(self, office):
        server = office.node("server")
        server.install_package(gui_part_package(style="filled",
                                                name="FilledGui"))
        server.install_package(display_package())
        display = server.container.create_instance("Display")
        gui = server.container.create_instance("FilledGui")
        server.container.connect(gui.instance_id, "display",
                                 display.ports.facet("graphics").ior)
        from repro.orb.cdr import Any
        from repro.cscw.whiteboard import STROKE_TC
        gui.executor.on_event("board", Any(STROKE_TC, stroke()))
        office.run(until=office.env.now + 1.0)
        assert display.executor.windows[
            f"window.{gui.instance_id}"][0].startswith("filled:")


class TestVideo:
    def make_pipeline(self, decoder_host):
        topo = Topology()
        topo.add_host("camhost", SERVER)
        topo.add_host("viewer", DESKTOP)
        topo.add_link("camhost", "viewer", WAN)
        rig = SimRig(topo)
        cam, viewer = rig.node("camhost"), rig.node("viewer")
        cam.install_package(stream_source_package())
        cam.install_package(video_decoder_package())
        viewer.install_package(display_package())
        src = cam.container.create_instance("StreamSource")
        disp = viewer.container.create_instance("Display")
        if decoder_host == "viewer":
            # ship the package, then create at the viewer
            viewer.install_package(video_decoder_package())
            dec = viewer.container.create_instance("VideoDecoder")
            owner = viewer
        else:
            dec = cam.container.create_instance("VideoDecoder")
            owner = cam
        owner.container.connect(dec.instance_id, "source",
                                src.ports.facet("stream").ior)
        owner.container.connect(dec.instance_id, "display",
                                disp.ports.facet("graphics").ior)
        return rig, disp, dec

    def test_decoder_achieves_frame_rate_when_local_to_display(self):
        rig, disp, dec = self.make_pipeline("viewer")
        rig.run(until=10.0)
        assert dec.executor.decoded >= 0.9 * FRAME_RATE * 10

    def test_remote_decoder_ships_decoded_pixels(self):
        rig, disp, dec = self.make_pipeline("camhost")
        rig.run(until=5.0)
        # each frame crosses the WAN decoded: expansion x encoded bytes
        assert rig.metrics.get("net.bytes") > (
            dec.executor.decoded * ENCODED_FRAME_BYTES * DECODE_EXPANSION
            * 0.9)

    def test_migrating_decoder_cuts_wan_bytes_per_frame(self):
        rig, disp, dec = self.make_pipeline("camhost")
        rig.run(until=5.0)
        frames0 = disp.executor.drawn
        bytes0 = rig.metrics.get("net.bytes")
        per_frame_remote = bytes0 / max(1, frames0)
        cam = rig.node("camhost")
        rig.run(until=MigrationEngine(cam).migrate(dec.instance_id,
                                                   "viewer"))
        frames1 = disp.executor.drawn
        bytes1 = rig.metrics.get("net.bytes")
        rig.run(until=rig.env.now + 5.0)
        per_frame_local = ((rig.metrics.get("net.bytes") - bytes1)
                           / max(1, disp.executor.drawn - frames1))
        assert per_frame_local < per_frame_remote / 3

    def test_decode_loop_survives_migration(self):
        rig, disp, dec = self.make_pipeline("camhost")
        rig.run(until=3.0)
        frame_before = dec.executor.frame_no
        cam = rig.node("camhost")
        info = rig.run(until=MigrationEngine(cam).migrate(
            dec.instance_id, "viewer"))
        moved = rig.node("viewer").container.find_instance(
            info.instance_id)
        assert moved.executor.frame_no >= frame_before
        rig.run(until=rig.env.now + 3.0)
        assert moved.executor.frame_no > frame_before  # still decoding


class TestPdaThinClient:
    def test_pda_runs_whiteboard_with_all_components_remote(self):
        """§3.1: PDAs 'can use all components remotely'."""
        from repro.sim.topology import WIRELESS
        topo = Topology()
        topo.add_host("server", SERVER)
        topo.add_host("pda", PDA)
        topo.add_link("server", "pda", WIRELESS)
        rig = SimRig(topo)
        server, pda = rig.node("server"), rig.node("pda")
        server.install_package(whiteboard_package())
        server.install_package(gui_part_package())
        # Only the display runs on the PDA (cheap enough for its QoS);
        # everything else stays on the server.
        pda.install_package(
            display_package().extract_subset(PDA.os, PDA.arch, PDA.orb))
        display = pda.container.create_instance("Display")
        board = server.container.create_instance("Whiteboard")
        gui = server.container.create_instance("BoardGui")
        server.container.connect(gui.instance_id, "display",
                                 display.ports.facet("graphics").ior)
        surface = pda.orb.stub(board.ports.facet("surface").ior,
                               SURFACE_IFACE)
        # the PDA user draws via the remote surface
        pda.orb.sync(surface.add_stroke(stroke("pda-user")))
        rig.run(until=rig.env.now + 2.0)
        assert display.executor.drawn == 1
        # GUI part never ran on the PDA
        assert all(i.component_name == "Display"
                   for i in pda.container.instances())

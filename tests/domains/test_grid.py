"""Tests for grid computing: idle harvesting, volunteers, Monte-Carlo π."""

import math

import pytest

from repro.container.aggregation import AggregationCoordinator
from repro.grid import (
    IdleMonitor,
    MonteCarloPiExecutor,
    VolunteerAgent,
    VolunteerMaster,
    montecarlo_package,
)
from repro.grid.worker import count_hits
from repro.sim.topology import SERVER, star
from repro.testing import SimRig, star_rig


class TestIdleMonitor:
    def make(self, seed=1, **kw):
        rig = star_rig(1, seed=seed)
        node = rig.node("h0")
        mon = IdleMonitor(node, rig.rngs.stream("idle"), **kw)
        return rig, node, mon

    def test_starts_idle_with_free_cpu(self):
        rig, node, mon = self.make()
        assert mon.is_idle
        assert node.resources.cpu_committed == 0.0

    def test_busy_reserves_user_cpu(self):
        rig, node, mon = self.make(mean_idle=5.0, mean_busy=5.0)
        rig.run(until=200.0)
        assert mon.transitions > 5
        if not mon.idle:
            assert node.resources.cpu_committed > 0
        else:
            assert node.resources.cpu_committed == 0.0

    def test_listeners_called_on_transitions(self):
        rig, node, mon = self.make(mean_idle=5.0, mean_busy=5.0)
        events = []
        mon.listeners.append(lambda m, idle: events.append(idle))
        rig.run(until=100.0)
        assert len(events) == mon.transitions
        # alternating states
        for a, b in zip(events, events[1:]):
            assert a != b

    def test_dead_host_not_idle(self):
        rig, node, mon = self.make()
        rig.topology.set_host_state("h0", alive=False)
        assert not mon.is_idle

    def test_deterministic(self):
        def run(seed):
            rig, node, mon = self.make(seed=seed, mean_idle=3.0,
                                       mean_busy=3.0)
            rig.run(until=100.0)
            return mon.transitions
        assert run(4) == run(4)


class TestMonteCarloComponent:
    def test_count_hits_estimates_pi(self):
        hits = count_hits(200_000, seed=0)
        assert 4.0 * hits / 200_000 == pytest.approx(math.pi, abs=0.02)

    def test_split_covers_budget(self):
        ex = MonteCarloPiExecutor()
        ex.total_samples = 10_001
        ex.base_seed = 5
        shards = ex.split(4)
        assert sum(s["samples"] for s in shards) == 10_001
        assert len({s["seed"] for s in shards}) == 4

    def test_merge(self):
        ex = MonteCarloPiExecutor()
        partials = [{"samples": 1000, "hits": 780},
                    {"samples": 1000, "hits": 790}]
        assert ex.merge(partials) == pytest.approx(4 * 1570 / 2000)
        assert math.isnan(ex.merge([]))

    def test_aggregation_coordinator_runs_pi(self):
        rig = star_rig(4, hub_profile=SERVER)
        rig.node("hub").install_package(montecarlo_package())
        result = rig.run(until=AggregationCoordinator(rig.node("hub")).run(
            "MonteCarloPi", ["h0", "h1", "h2", "h3"],
            {"total_samples": 100_000, "base_seed": 1}))
        assert result == pytest.approx(math.pi, abs=0.05)


class TestVolunteerComputing:
    def make_pool(self, n=5, seed=2, mean_busy=15.0, mean_idle=30.0):
        rig = SimRig(star(n, hub_profile=SERVER), seed=seed)
        hub = rig.node("hub")
        hub.install_package(montecarlo_package())
        master = VolunteerMaster(hub, "MonteCarloPi", shard_timeout=30.0)
        monitors = []
        for i in range(n):
            node = rig.node(f"h{i}")
            mon = IdleMonitor(node, rig.rngs.stream(f"idle.{i}"),
                              mean_busy=mean_busy, mean_idle=mean_idle)
            VolunteerAgent(node, mon, master.ior)
            monitors.append(mon)
        return rig, hub, master, monitors

    def test_completes_and_is_correct(self):
        rig, hub, master, monitors = self.make_pool()
        shards = [{"samples": 50_000, "seed": i} for i in range(12)]
        partials = rig.run(until=master.submit(shards))
        assert len(partials) == 12
        pi = MonteCarloPiExecutor.merge_values(partials)
        assert pi == pytest.approx(math.pi, abs=0.03)

    def test_requeues_on_volunteer_crash(self):
        rig, hub, master, monitors = self.make_pool(
            n=3, mean_busy=1e9, mean_idle=1e9)  # no user churn
        shards = [{"samples": 400_000, "seed": i} for i in range(6)]
        done = master.submit(shards)
        rig.run(until=rig.env.now + 0.5)  # let assignments start
        rig.topology.set_host_state("h1", alive=False)
        partials = rig.run(until=done)
        assert len(partials) == 6
        assert master.requeues >= 1

    def test_busy_volunteers_get_no_new_shards(self):
        rig, hub, master, monitors = self.make_pool(
            n=2, mean_busy=1e9, mean_idle=1e9)
        # force h1 busy before any work
        monitors[1]._set_idle(False)
        shards = [{"samples": 10_000, "seed": i} for i in range(4)]
        rig.run(until=master.submit(shards))
        assert "h1" not in master.workers

    def test_pending_units_reported(self):
        rig, hub, master, monitors = self.make_pool(n=2)
        stub = rig.node("h0").orb.stub(master.ior,
                                       master._servant._interface)
        assert rig.node("h0").orb.sync(stub.pending_units()) == 0

    def test_more_volunteers_finish_faster(self):
        def elapsed(n):
            rig, hub, master, monitors = self.make_pool(
                n=n, mean_busy=1e9, mean_idle=1e9, seed=3)
            shards = [{"samples": 200_000, "seed": i} for i in range(8)]
            t0 = rig.env.now
            rig.run(until=master.submit(shards))
            return rig.env.now - t0
        assert elapsed(8) < elapsed(2) / 2

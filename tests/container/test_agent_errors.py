"""Error-path tests for the Container Agent and deployer edges."""

import pytest

from repro.container.agent import (
    AgentError,
    dumps_state,
    loads_state,
)
from repro.deployment.application import DeploymentError, Deployer
from repro.deployment.planner import RuntimePlanner
from repro.orb.exceptions import NO_RESOURCES
from repro.testing import counter_package, star_rig


@pytest.fixture
def rig():
    r = star_rig(2)
    r.node("hub").install_package(counter_package())
    return r


class TestStateCodec:
    def test_roundtrip(self):
        state = {"count": 3, "items": [1, "two", 3.0],
                 "nested": {"k": b"bytes"}}
        assert loads_state(dumps_state(state)) == state

    def test_empty_state(self):
        assert loads_state(dumps_state({})) == {}


class TestAgentErrorPaths:
    def agent(self, rig, host="hub"):
        return rig.node("h0").service_stub(host, "container")

    def test_create_unknown_component(self, rig):
        with pytest.raises(AgentError):
            rig.node("h0").orb.sync(
                self.agent(rig).create_instance("Ghost", "", ""))

    def test_create_without_resources_raises_no_resources(self, rig):
        rig.node("hub").install_package(
            counter_package(name="Huge", memory_mb=1e6))
        with pytest.raises(NO_RESOURCES):
            rig.node("h0").orb.sync(
                self.agent(rig).create_instance("Huge", "", ""))

    def test_destroy_unknown_instance(self, rig):
        with pytest.raises(AgentError):
            rig.node("h0").orb.sync(
                self.agent(rig).destroy_instance("ghost"))

    def test_connect_unknown_instance(self, rig):
        with pytest.raises(AgentError):
            rig.node("h0").orb.sync(self.agent(rig).connect(
                "ghost", "peer", "IOR:IDL:x:1.0@hub/a/k"))

    def test_connect_bad_ior_string(self, rig):
        inst = rig.node("hub").container.create_instance("Counter")
        with pytest.raises(AgentError):
            rig.node("h0").orb.sync(self.agent(rig).connect(
                inst.instance_id, "peer", "not-an-ior"))

    def test_subscribe_unknown_instance(self, rig):
        with pytest.raises(AgentError):
            rig.node("h0").orb.sync(self.agent(rig).subscribe(
                "ghost", "pokes", "IOR:IDL:x:1.0@hub/events/k"))

    def test_get_state_unknown_instance(self, rig):
        with pytest.raises(AgentError):
            rig.node("h0").orb.sync(self.agent(rig).get_state("ghost"))

    def test_get_set_state_roundtrip_remote(self, rig):
        inst = rig.node("hub").container.create_instance("Counter")
        inst.executor.count = 5
        agent = self.agent(rig)
        orb = rig.node("h0").orb
        blob = orb.sync(agent.get_state(inst.instance_id))
        assert loads_state(blob) == {"count": 5, "pokes_seen": 0}
        orb.sync(agent.set_state(inst.instance_id,
                                 dumps_state({"count": 9})))
        assert inst.executor.count == 9

    def test_incarnate_duplicate_id_rejected(self, rig):
        hub = rig.node("hub")
        inst = hub.container.create_instance("Counter",
                                             requested_name="taken")
        with pytest.raises(AgentError):
            rig.node("h0").orb.sync(self.agent(rig).incarnate(
                "Counter", "", "taken", dumps_state({}), [], []))


class TestDeployerEdges:
    def test_empty_nodes_rejected(self):
        with pytest.raises(DeploymentError):
            Deployer({}, RuntimePlanner())

    def test_application_event_kind_lookup_error(self, rig):
        from repro.xmlmeta.descriptors import (
            AssemblyDescriptor, AssemblyInstance)
        dep = Deployer(rig.nodes, RuntimePlanner(),
                       coordinator_host="hub")
        app = rig.run(until=dep.deploy(AssemblyDescriptor(
            name="a", instances=[AssemblyInstance("x", "Counter")])))
        with pytest.raises(DeploymentError):
            app._event_kind("x", "no-such-port")
        with pytest.raises(DeploymentError):
            app.facet_ior("x", "no-such-facet")

    def test_connections_to_filters(self, rig):
        from repro.xmlmeta.descriptors import (
            AssemblyConnection, AssemblyDescriptor, AssemblyInstance)
        dep = Deployer(rig.nodes, RuntimePlanner(),
                       coordinator_host="hub")
        asm = AssemblyDescriptor(
            name="a",
            instances=[AssemblyInstance("x", "Counter"),
                       AssemblyInstance("y", "Counter")],
            connections=[AssemblyConnection("x", "peer", "y", "value")])
        app = rig.run(until=dep.deploy(asm))
        assert [c.from_instance for c in app.connections_to("y")] == ["x"]
        assert app.connections_to("x") == []
        assert app.host_of("x") in rig.nodes

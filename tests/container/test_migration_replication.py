"""Tests for migration, replication and aggregation."""

import pytest

from repro.container.aggregation import (
    AggregationCoordinator,
    AggregationError,
)
from repro.container.migration import MigrationEngine, MigrationError
from repro.container.replication import ReplicaManager, ReplicationError
from repro.testing import (
    COUNTER_IFACE,
    counter_package,
    star_rig,
    sum_worker_package,
)


@pytest.fixture
def rig():
    r = star_rig(3)
    r.node("hub").install_package(counter_package())
    return r


class TestMigration:
    def test_state_travels(self, rig):
        hub = rig.node("hub")
        inst = hub.container.create_instance("Counter")
        inst.executor.count = 123
        info = rig.run(until=MigrationEngine(hub).migrate(
            inst.instance_id, "h1"))
        assert info.host == "h1"
        new_inst = rig.node("h1").container.find_instance(info.instance_id)
        assert new_inst.executor.count == 123
        assert hub.container.find_instance(inst.instance_id) is None

    def test_package_ships_when_target_lacks_component(self, rig):
        hub = rig.node("hub")
        inst = hub.container.create_instance("Counter")
        assert not rig.node("h1").repository.is_installed("Counter")
        rig.run(until=MigrationEngine(hub).migrate(inst.instance_id, "h1"))
        assert rig.node("h1").repository.is_installed("Counter")
        assert rig.metrics.get("migration.package_bytes") > 0

    def test_no_reinstall_when_target_has_component(self, rig):
        hub = rig.node("hub")
        rig.node("h1").install_package(counter_package())
        inst = hub.container.create_instance("Counter")
        rig.run(until=MigrationEngine(hub).migrate(inst.instance_id, "h1"))
        assert rig.metrics.get("migration.package_bytes") == 0

    def test_receptacle_wiring_preserved(self, rig):
        hub = rig.node("hub")
        a = hub.container.create_instance("Counter")
        b = hub.container.create_instance("Counter")
        hub.container.connect(a.instance_id, "peer",
                              b.ports.facet("value").ior)
        info = rig.run(until=MigrationEngine(hub).migrate(
            a.instance_id, "h2"))
        moved = rig.node("h2").container.find_instance(info.instance_id)
        assert moved.ports.receptacle("peer").peer.host_id == "hub"

    def test_resources_move_between_hosts(self, rig):
        hub = rig.node("hub")
        inst = hub.container.create_instance("Counter")
        rig.run(until=MigrationEngine(hub).migrate(inst.instance_id, "h1"))
        assert hub.resources.cpu_committed == 0.0
        assert rig.node("h1").resources.cpu_committed == 5.0

    def test_pinned_component_refuses(self, rig):
        hub = rig.node("hub")
        hub.install_package(counter_package(name="Pinned",
                                            mobility="pinned"))
        inst = hub.container.create_instance("Pinned")
        with pytest.raises(MigrationError):
            rig.run(until=MigrationEngine(hub).migrate(
                inst.instance_id, "h1"))

    def test_migration_to_same_host_rejected(self, rig):
        hub = rig.node("hub")
        inst = hub.container.create_instance("Counter")
        with pytest.raises(MigrationError):
            rig.run(until=MigrationEngine(hub).migrate(
                inst.instance_id, "hub"))

    def test_unknown_instance_rejected(self, rig):
        with pytest.raises(MigrationError):
            rig.run(until=MigrationEngine(rig.node("hub")).migrate(
                "ghost", "h1"))

    def test_rollback_when_target_lacks_resources(self):
        r = star_rig(1)
        hub = r.node("hub")
        # big enough to fit on the hub but not on a desktop leaf
        hub.install_package(counter_package(memory_mb=1024.0))
        inst = hub.container.create_instance("Counter")
        inst.executor.count = 7
        with pytest.raises(MigrationError):
            r.run(until=MigrationEngine(hub).migrate(inst.instance_id, "h0"))
        # restored locally with state intact
        restored = hub.container.find_instance(inst.instance_id)
        assert restored is not None
        assert restored.executor.count == 7
        assert r.metrics.get("migration.rollbacks") == 1.0


class TestReplication:
    def test_group_creation_across_hosts(self, rig):
        group = rig.run(until=ReplicaManager(rig.node("hub")).create_group(
            "Counter", ["hub", "h0", "h1"]))
        assert [m.host for m in group.members] == ["hub", "h0", "h1"]
        assert all(m.facet_ior is not None for m in group.members)
        assert group.mode == "coordinated"

    def test_non_replicable_rejected(self, rig):
        hub = rig.node("hub")
        hub.install_package(counter_package(name="Solo",
                                            replication="none"))
        with pytest.raises(ReplicationError):
            rig.run(until=ReplicaManager(hub).create_group(
                "Solo", ["hub", "h0"]))

    def test_failover_selection(self, rig):
        hub = rig.node("hub")
        group = rig.run(until=ReplicaManager(hub).create_group(
            "Counter", ["hub", "h0"]))
        assert group.select(rig.topology).host == "hub"
        rig.topology.set_host_state("hub", alive=False)
        assert group.select(rig.topology).host == "h0"
        rig.topology.set_host_state("h0", alive=False)
        with pytest.raises(ReplicationError):
            group.select(rig.topology)

    def test_round_robin_spreads(self, rig):
        group = rig.run(until=ReplicaManager(rig.node("hub")).create_group(
            "Counter", ["hub", "h0"]))
        picks = [group.select_round_robin(rig.topology).host
                 for _ in range(4)]
        assert picks == ["hub", "h0", "hub", "h0"]

    def test_coordinated_sync_pushes_state(self, rig):
        hub = rig.node("hub")
        manager = ReplicaManager(hub)
        group = rig.run(until=manager.create_group("Counter",
                                                   ["hub", "h0", "h1"]))
        primary = hub.container.find_instance(group.members[0].instance_id)
        primary.executor.count = 55
        synced = rig.run(until=manager.sync(group))
        assert synced == 2
        backup = rig.node("h0").container.find_instance(
            group.members[1].instance_id)
        assert backup.executor.count == 55

    def test_sync_requires_coordinated_mode(self, rig):
        hub = rig.node("hub")
        hub.install_package(counter_package(name="StatelessC",
                                            replication="stateless"))
        manager = ReplicaManager(hub)
        group = rig.run(until=manager.create_group("StatelessC", ["hub"]))
        with pytest.raises(ReplicationError):
            rig.run(until=manager.sync(group))


class TestAggregation:
    @pytest.fixture
    def agg_rig(self):
        r = star_rig(4)
        r.node("hub").install_package(sum_worker_package())
        return r

    def test_scatter_gather_correct(self, agg_rig):
        coordinator = AggregationCoordinator(agg_rig.node("hub"))
        result = agg_rig.run(until=coordinator.run(
            "SumWorker", ["h0", "h1", "h2", "h3"],
            {"lo": 0, "hi": 10_000, "cost_per_item": 0.001}))
        assert result == sum(range(10_000))

    def test_workers_cleaned_up(self, agg_rig):
        coordinator = AggregationCoordinator(agg_rig.node("hub"))
        agg_rig.run(until=coordinator.run(
            "SumWorker", ["h0", "h1"], {"lo": 0, "hi": 100}))
        assert all(len(agg_rig.node(h).container) == 0
                   for h in ("h0", "h1"))

    def test_parallelism_beats_single_worker(self, agg_rig):
        work = {"lo": 0, "hi": 40_000, "cost_per_item": 0.01}

        def elapsed(hosts):
            r = star_rig(4)
            r.node("hub").install_package(sum_worker_package())
            t0 = r.env.now
            r.run(until=AggregationCoordinator(r.node("hub")).run(
                "SumWorker", hosts, dict(work)))
            return r.env.now - t0

        t1 = elapsed(["h0"])
        t4 = elapsed(["h0", "h1", "h2", "h3"])
        assert t4 < t1 / 2.5  # near-linear speedup

    def test_worker_crash_rerun_on_survivor(self, agg_rig):
        coordinator = AggregationCoordinator(agg_rig.node("hub"))
        ev = coordinator.run("SumWorker", ["h0", "h1"],
                             {"lo": 0, "hi": 40_000,
                              "cost_per_item": 0.05})
        # kill one worker mid-computation
        agg_rig.env.run(until=agg_rig.env.now + 1.0)
        agg_rig.topology.set_host_state("h1", alive=False)
        result = agg_rig.run(until=ev)
        assert result == sum(range(40_000))
        assert agg_rig.metrics.get("aggregation.reruns") >= 1

    def test_non_aggregatable_rejected(self, agg_rig):
        agg_rig.node("hub").install_package(counter_package())
        with pytest.raises(AggregationError):
            agg_rig.run(until=AggregationCoordinator(
                agg_rig.node("hub")).run("Counter", ["h0"], {}))

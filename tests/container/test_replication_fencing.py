"""Regression tests for replica fencing and churn-stable round robin.

Two bugs lived here: (1) the coordinated sync picked its primary as
"first currently-alive member", so a crashed-and-restarted ex-primary
silently reclaimed the role and pushed its stale state over newer
backup state; (2) the round-robin cursor advanced modulo the *alive*
list, so any crash or restart elsewhere in the group skewed which
member was picked next.
"""

import pytest

from repro.container.replication import ReplicaManager, ReplicationError
from repro.testing import counter_package, star_rig


@pytest.fixture
def rig():
    r = star_rig(3)
    r.node("hub").install_package(counter_package())
    return r


def exec_of(rig, member):
    inst = rig.node(member.host).container.find_instance(member.instance_id)
    return inst.executor


def make_group(rig, hosts):
    """Group on leaf hosts, managed from the always-alive hub (in a
    star, leaf-to-leaf traffic routes through the hub)."""
    manager = ReplicaManager(rig.node("hub"))
    group = rig.run(until=manager.create_group("Counter", hosts))
    return manager, group


class TestPrimaryFencing:
    def test_restarted_stale_primary_cannot_overwrite_newer_state(self, rig):
        manager, group = make_group(rig, ["h0", "h1", "h2"])
        exec_of(rig, group.members[0]).count = 10
        rig.run(until=manager.sync(group))
        assert [exec_of(rig, m).count for m in group.members] == [10, 10, 10]

        rig.topology.set_host_state("h0", alive=False)
        rig.run(until=manager.sync(group))         # failover promotion
        assert group.primary.host == "h1"
        assert group.epoch == 1
        # state moves on under the new primary while h0 is down
        exec_of(rig, group.members[1]).count = 99

        rig.topology.set_host_state("h0", alive=True)
        rig.run(until=manager.sync(group))         # stale copy is back
        # fenced out: h0 (epoch 0) never reclaims the primary role
        assert group.primary.host == "h1"
        for member in group.members:
            assert exec_of(rig, member).count == 99
        assert rig.metrics.get("replication.promotions") == 1

    def test_synced_backup_outranks_restarted_stale_member(self, rig):
        manager, group = make_group(rig, ["h0", "h1", "h2"])
        exec_of(rig, group.members[0]).count = 10
        rig.run(until=manager.sync(group))

        rig.topology.set_host_state("h0", alive=False)
        rig.run(until=manager.sync(group))         # h1 promoted, h2 synced
        exec_of(rig, group.members[1]).count = 99
        rig.run(until=manager.sync(group))         # h2 now carries 99

        rig.topology.set_host_state("h0", alive=True)
        rig.topology.set_host_state("h1", alive=False)
        rig.run(until=manager.sync(group))
        # h2 was synced at the promotion epoch, so it outranks the
        # restarted h0 (epoch 0) even though h0 sorts first
        assert group.primary.host == "h2"
        assert exec_of(rig, group.members[0]).count == 99
        assert exec_of(rig, group.members[2]).count == 99


class TestRoundRobinChurn:
    def test_rotation_unskewed_by_crash_and_restart(self, rig):
        _, group = make_group(rig, ["hub", "h0", "h1"])
        topo = rig.topology
        assert group.select_round_robin(topo).host == "hub"
        topo.set_host_state("hub", alive=False)
        # hub's slot is skipped, not collapsed: the rotation continues
        # at h0 instead of jumping past it
        assert group.select_round_robin(topo).host == "h0"
        topo.set_host_state("hub", alive=True)
        # the restart neither resets nor double-counts the cursor
        assert group.select_round_robin(topo).host == "h1"
        assert group.select_round_robin(topo).host == "hub"

    def test_spread_stays_even_with_one_member_down(self, rig):
        _, group = make_group(rig, ["hub", "h0", "h1"])
        rig.topology.set_host_state("h0", alive=False)
        picks = [group.select_round_robin(rig.topology).host
                 for _ in range(8)]
        assert picks.count("hub") == 4
        assert picks.count("h1") == 4
        assert "h0" not in picks

    def test_all_members_down_raises(self, rig):
        _, group = make_group(rig, ["hub", "h0"])
        rig.topology.set_host_state("hub", alive=False)
        rig.topology.set_host_state("h0", alive=False)
        with pytest.raises(ReplicationError):
            group.select_round_robin(rig.topology)

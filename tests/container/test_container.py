"""Unit/integration tests for the container: lifecycle, ports, factories."""

import pytest

from repro.components.factory import (
    CreationFailed,
    FACTORY_IFACE,
    NoSuchInstance,
)
from repro.container.container import ContainerError
from repro.container.instance import InstanceState, InstanceStateError
from repro.node.repository import NotInstalledError
from repro.orb.cdr import Any
from repro.orb.exceptions import NO_RESOURCES
from repro.orb.ior import IOR
from repro.orb.typecodes import tc_long
from repro.testing import (
    COUNTER_IFACE,
    POKE_KIND,
    counter_package,
    star_rig,
)


@pytest.fixture
def rig():
    r = star_rig(3)
    r.node("hub").install_package(counter_package())
    return r


class TestInstanceCreation:
    def test_create_wires_all_declared_ports(self, rig):
        inst = rig.node("hub").container.create_instance("Counter")
        assert inst.state is InstanceState.ACTIVE
        assert inst.ports.facet("value").ior is not None
        assert not inst.ports.receptacle("peer").connected
        assert inst.ports.event_source("ticks").channel is not None
        sink = inst.ports.event_sink("pokes")
        assert sink.consumer_ior is not None
        assert len(sink.subscriptions) == 1  # local channel by default

    def test_unknown_component_rejected(self, rig):
        with pytest.raises(NotInstalledError):
            rig.node("hub").container.create_instance("Ghost")

    def test_duplicate_requested_name_rejected(self, rig):
        c = rig.node("hub").container
        c.create_instance("Counter", requested_name="one")
        with pytest.raises(ContainerError):
            c.create_instance("Counter", requested_name="one")

    def test_initial_state_applied(self, rig):
        inst = rig.node("hub").container.create_instance(
            "Counter", initial_state={"count": 99, "pokes_seen": 1})
        assert inst.executor.count == 99

    def test_resources_reserved_and_released(self, rig):
        node = rig.node("hub")
        before = node.resources.cpu_committed
        inst = node.container.create_instance("Counter")
        assert node.resources.cpu_committed == before + 5.0
        node.container.destroy_instance(inst.instance_id)
        assert node.resources.cpu_committed == before

    def test_admission_control_no_resources(self):
        r = star_rig(1)
        # component QoS bigger than a desktop's memory
        r.node("hub").install_package(
            counter_package(memory_mb=100_000.0))
        with pytest.raises(NO_RESOURCES):
            r.node("hub").container.create_instance("Counter")
        # nothing leaked
        assert r.node("hub").resources.memory_committed == 0.0

    def test_listener_notifications(self, rig):
        seen = []
        c = rig.node("hub").container
        c.listeners.append(lambda a, i: seen.append((a, i.instance_id)))
        inst = c.create_instance("Counter")
        c.destroy_instance(inst.instance_id)
        assert ("created", inst.instance_id) in seen
        assert ("destroyed", inst.instance_id) in seen

    def test_registry_generation_bumps(self, rig):
        node = rig.node("hub")
        g0 = node.registry.generation
        inst = node.container.create_instance("Counter")
        assert node.registry.generation > g0


class TestDestroy:
    def test_destroy_deactivates_servants(self, rig):
        node = rig.node("hub")
        inst = node.container.create_instance("Counter")
        facet_ior = inst.ports.facet("value").ior
        node.container.destroy_instance(inst.instance_id)
        from repro.orb.exceptions import OBJECT_NOT_EXIST
        stub = rig.node("h0").orb.stub(facet_ior, COUNTER_IFACE)
        with pytest.raises(OBJECT_NOT_EXIST):
            rig.node("h0").orb.sync(stub.read())

    def test_destroy_unknown_rejected(self, rig):
        with pytest.raises(ContainerError):
            rig.node("hub").container.destroy_instance("ghost")

    def test_destroy_interrupts_spawned_processes(self, rig):
        node = rig.node("hub")
        inst = node.container.create_instance("Counter")

        def forever(ctx):
            while True:
                yield ctx.schedule(1.0)

        ctx = inst.executor.context
        proc = ctx.spawn(forever(ctx))
        node.container.destroy_instance(inst.instance_id)
        rig.run(until=rig.env.now + 5)
        assert not proc.is_alive


class TestWiring:
    def test_connect_and_call_through_receptacle(self, rig):
        node = rig.node("hub")
        a = node.container.create_instance("Counter")
        b = node.container.create_instance("Counter")
        node.container.connect(a.instance_id, "peer",
                               b.ports.facet("value").ior)
        stub = a.executor.context.connection("peer")
        assert node.orb.sync(stub.increment(3)) == 3
        assert b.executor.count == 3

    def test_unconnected_receptacle_yields_none(self, rig):
        inst = rig.node("hub").container.create_instance("Counter")
        assert inst.executor.context.connection("peer") is None

    def test_event_emission_reaches_local_subscribers(self, rig):
        node = rig.node("hub")
        a = node.container.create_instance("Counter")
        b = node.container.create_instance("Counter")
        # both sinks subscribe to the hub's poke channel by default;
        # push into it and each executor sees the poke.
        from repro.orb.services.events import EVENT_CHANNEL_IFACE
        chan = node.events.channel_ior(POKE_KIND)
        stub = node.orb.stub(chan, EVENT_CHANNEL_IFACE)
        node.orb.sync(stub.push(Any(tc_long, 1)))
        rig.run(until=rig.env.now + 1)
        assert a.executor.pokes_seen == 1
        assert b.executor.pokes_seen == 1

    def test_tick_events_fan_out_cross_host(self, rig):
        hub = rig.node("hub")
        inst = hub.container.create_instance("Counter")
        # subscribe a bare consumer on h0 to hub's tick channel
        from repro.orb.services.events import (
            CallbackPushConsumer, EVENT_CHANNEL_IFACE)
        got = []
        consumer = CallbackPushConsumer(lambda a: got.append(a.value))
        h0 = rig.node("h0")
        cons_ior = h0.orb.adapter("root").activate(consumer)
        chan = hub.events.channel_ior("demo.tick")
        h0.orb.sync(h0.orb.stub(chan, EVENT_CHANNEL_IFACE)
                    .connect_push_consumer(cons_ior))
        stub = h0.orb.stub(inst.ports.facet("value").ior, COUNTER_IFACE)
        h0.orb.sync(stub.increment(1))
        rig.run(until=rig.env.now + 1)
        assert got == [1]


class TestFactory:
    def test_factory_creates_and_destroys(self, rig):
        hub = rig.node("hub")
        h0 = rig.node("h0")
        factory_ior = hub.container.factory_ior("Counter")
        factory = h0.orb.stub(factory_ior, FACTORY_IFACE)
        iid = h0.orb.sync(factory.create_instance(""))
        assert hub.container.find_instance(iid) is not None
        facet = h0.orb.sync(factory.get_facet(iid, "value"))
        assert isinstance(facet, IOR)
        assert h0.orb.sync(factory.instance_ids()) == [iid]
        assert h0.orb.sync(factory._get_component_name()) == "Counter"
        h0.orb.sync(factory.destroy_instance(iid))
        assert hub.container.find_instance(iid) is None

    def test_factory_errors(self, rig):
        hub = rig.node("hub")
        h0 = rig.node("h0")
        factory = h0.orb.stub(hub.container.factory_ior("Counter"),
                              FACTORY_IFACE)
        with pytest.raises(NoSuchInstance):
            h0.orb.sync(factory.destroy_instance("ghost"))
        with pytest.raises(NoSuchInstance):
            h0.orb.sync(factory.get_facet("ghost", "value"))
        iid = h0.orb.sync(factory.create_instance(""))
        with pytest.raises(NoSuchInstance):
            h0.orb.sync(factory.get_facet(iid, "no-such-port"))

    def test_factory_for_uninstalled_component_rejected(self, rig):
        with pytest.raises(ContainerError):
            rig.node("h0").container.factory_for("Counter")


class TestInstanceStateGuards:
    def test_require_state(self, rig):
        inst = rig.node("hub").container.create_instance("Counter")
        inst.require_state(InstanceState.ACTIVE)
        with pytest.raises(InstanceStateError):
            inst.require_state(InstanceState.PASSIVE)

    def test_info_snapshot(self, rig):
        inst = rig.node("hub").container.create_instance("Counter")
        info = inst.info()
        assert info.component == "Counter"
        assert info.host == "hub"
        assert info.active
        kinds = {p.name: p.kind for p in info.ports}
        assert kinds == {"value": "facet", "peer": "receptacle",
                         "ticks": "event-source", "pokes": "event-sink"}

"""Tests for the container context and the per-node event broker."""

import pytest

from repro.container.context import infer_typecode
from repro.node.events import EventBroker
from repro.orb.cdr import Any
from repro.orb.exceptions import OBJECT_NOT_EXIST
from repro.orb.services.events import EVENT_CHANNEL_IFACE
from repro.orb.typecodes import (
    tc_boolean,
    tc_double,
    tc_long,
    tc_octetseq,
    tc_string,
)
from repro.testing import TICK_KIND, counter_package, star_rig
from repro.util.errors import ConfigurationError


class TestInferTypecode:
    @pytest.mark.parametrize("value,tc", [
        (True, tc_boolean),
        (7, tc_long),
        (1.5, tc_double),
        ("s", tc_string),
        (b"x", tc_octetseq),
        (bytearray(b"y"), tc_octetseq),
    ])
    def test_inference(self, value, tc):
        assert infer_typecode(value) == tc

    def test_bool_not_confused_with_int(self):
        assert infer_typecode(True) == tc_boolean
        assert infer_typecode(1) == tc_long

    def test_unknown_type_rejected(self):
        with pytest.raises(ConfigurationError):
            infer_typecode(object())
        with pytest.raises(ConfigurationError):
            infer_typecode([1, 2])


class TestContext:
    @pytest.fixture
    def rig(self):
        r = star_rig(2)
        r.node("hub").install_package(counter_package())
        return r

    def test_identity_fields(self, rig):
        inst = rig.node("hub").container.create_instance("Counter")
        ctx = inst.executor.context
        assert ctx.instance_id == inst.instance_id
        assert ctx.host_id == "hub"
        assert ctx.now() == rig.env.now

    def test_charge_cpu_takes_scaled_time_and_accounts(self, rig):
        hub = rig.node("hub")
        inst = hub.container.create_instance("Counter")
        ctx = inst.executor.context
        charged_before = hub.resources.cpu_seconds_charged

        def proc():
            yield ctx.charge_cpu(40.0)  # 40 units on a 1000-unit server
            return rig.env.now
        t = rig.run(until=rig.env.process(proc()))
        assert t == pytest.approx(40.0 / hub.host.profile.cpu_power)
        assert hub.resources.cpu_seconds_charged > charged_before

    def test_emit_with_explicit_any(self, rig):
        hub = rig.node("hub")
        inst = hub.container.create_instance("Counter")
        payload = Any(tc_string, "wrapped")
        inst.executor.context.emit("ticks", payload)
        assert inst.ports.event_source("ticks").emitted == 1

    def test_emit_on_wrong_port_kind_rejected(self, rig):
        from repro.components.ports import PortError
        inst = rig.node("hub").container.create_instance("Counter")
        with pytest.raises(PortError):
            inst.executor.context.emit("value", 1)  # a facet, not a source


class TestEventBroker:
    @pytest.fixture
    def rig(self):
        return star_rig(2)

    def test_channels_created_lazily_and_cached(self, rig):
        broker = rig.node("hub").events
        assert broker.kinds() == []
        chan = broker.channel("k1")
        assert broker.channel("k1") is chan
        assert broker.kinds() == ["k1"]

    def test_channel_ior_addressable_remotely(self, rig):
        broker = rig.node("hub").events
        ior = broker.channel_ior("news")
        h0 = rig.node("h0")
        stub = h0.orb.stub(ior, EVENT_CHANNEL_IFACE)
        assert h0.orb.sync(stub.consumer_count()) == "0"

    def test_wellknown_ior_for_missing_channel_fails_cleanly(self, rig):
        ior = EventBroker.channel_ior_on("hub", "never-created")
        h0 = rig.node("h0")
        stub = h0.orb.stub(ior, EVENT_CHANNEL_IFACE)
        with pytest.raises(OBJECT_NOT_EXIST):
            h0.orb.sync(stub.consumer_count())

    def test_instance_creation_opens_channels_for_emits(self, rig):
        hub = rig.node("hub")
        hub.install_package(counter_package())
        hub.container.create_instance("Counter")
        assert TICK_KIND in hub.events.kinds()

"""Tests for the Node service: repository, resources, registry, acceptor."""

import pytest

from repro.node.acceptor import InstallError
from repro.node.node import Node
from repro.node.registry import NotInstalled
from repro.node.repository import ComponentRepository, NotInstalledError
from repro.node.resources import ResourceManager, ResourceSnapshot
from repro.orb.exceptions import NO_RESOURCES, TRANSIENT
from repro.orb.ior import IOR
from repro.packaging.package import ComponentPackage, PackageError
from repro.packaging.signature import SignatureError, VendorKeyRegistry
from repro.sim.kernel import Environment
from repro.sim.topology import DESKTOP, PDA, SERVER, Host
from repro.testing import COUNTER_IFACE, counter_package, star_rig
from repro.util.errors import ConfigurationError
from repro.xmlmeta.descriptors import QoSSpec
from repro.xmlmeta.versions import Version, VersionRange


class TestResourceManager:
    def make(self, profile=DESKTOP):
        env = Environment()
        return env, ResourceManager(env, Host("h", profile))

    def test_reserve_release_accounting(self):
        env, rm = self.make()
        qos = QoSSpec(cpu_units=100, memory_mb=64)
        assert rm.fits(qos)
        rm.reserve(qos)
        assert rm.cpu_committed == 100
        assert rm.instance_count == 1
        rm.release(qos)
        assert rm.cpu_committed == 0
        assert rm.instance_count == 0

    def test_overcommit_rejected(self):
        env, rm = self.make()
        with pytest.raises(NO_RESOURCES):
            rm.reserve(QoSSpec(cpu_units=DESKTOP.cpu_power + 1))
        with pytest.raises(NO_RESOURCES):
            rm.reserve(QoSSpec(memory_mb=DESKTOP.memory_mb + 1))

    def test_snapshot_fields(self):
        env, rm = self.make(SERVER)
        rm.reserve(QoSSpec(cpu_units=250, memory_mb=100))
        snap = rm.snapshot()
        assert snap.cpu_available == SERVER.cpu_power - 250
        assert snap.cpu_utilization == pytest.approx(250 / SERVER.cpu_power)
        assert snap.memory_available == SERVER.memory_mb - 100
        assert not snap.is_tiny

    def test_snapshot_value_roundtrip(self):
        env, rm = self.make(PDA)
        snap = rm.snapshot()
        assert ResourceSnapshot.from_value(snap.to_value()) == snap
        assert snap.is_tiny

    def test_work_duration_scales_inverse_to_power(self):
        env, rm_fast = self.make(SERVER)
        env2, rm_slow = self.make(PDA)
        assert rm_slow.work_duration(10) > rm_fast.work_duration(10) * 10


class TestRepository:
    def test_install_and_lookup_best_version(self):
        repo = ComponentRepository(DESKTOP)
        repo.install(counter_package("1.0.0"))
        repo.install(counter_package("1.2.0"))
        repo.install(counter_package("2.0.0"))
        assert len(repo) == 3
        best = repo.lookup("Counter")
        assert str(best.version) == "2.0.0"
        in_range = repo.lookup("Counter", VersionRange(">=1.0, <2.0"))
        assert str(in_range.version) == "1.2.0"

    def test_duplicate_version_rejected(self):
        repo = ComponentRepository(DESKTOP)
        repo.install(counter_package("1.0.0"))
        with pytest.raises(PackageError):
            repo.install(counter_package("1.0.0"))

    def test_lookup_missing(self):
        repo = ComponentRepository(DESKTOP)
        with pytest.raises(NotInstalledError):
            repo.lookup("Ghost")
        assert not repo.is_installed("Ghost")
        assert "Ghost" not in repo

    def test_providers_of(self):
        repo = ComponentRepository(DESKTOP)
        repo.install(counter_package())
        assert [c.name for c in repo.providers_of(COUNTER_IFACE.repo_id)] \
            == ["Counter"]
        assert repo.providers_of("IDL:none:1.0") == []

    def test_remove(self):
        repo = ComponentRepository(DESKTOP)
        repo.install(counter_package("1.0.0"))
        repo.remove("Counter", Version(1, 0, 0))
        assert len(repo) == 0
        with pytest.raises(NotInstalledError):
            repo.remove("Counter", Version(1, 0, 0))

    def test_listeners(self):
        repo = ComponentRepository(DESKTOP)
        seen = []
        repo.listeners.append(lambda a, c: seen.append((a, c.name)))
        repo.install(counter_package("1.0.0"))
        repo.remove("Counter", Version(1, 0, 0))
        assert seen == [("installed", "Counter"), ("removed", "Counter")]

    def test_signature_requirement(self):
        keys = VendorKeyRegistry()
        repo = ComponentRepository(DESKTOP, vendor_keys=keys,
                                   require_signature=True)
        with pytest.raises(SignatureError):
            repo.install(counter_package())  # unsigned


class TestNodeServices:
    @pytest.fixture
    def rig(self):
        r = star_rig(2)
        r.node("hub").install_package(counter_package())
        return r

    def test_service_ior_wellknown(self):
        ior = Node.service_ior("h9", "registry")
        assert ior.host_id == "h9"
        assert ior.adapter == "node"
        assert ior.object_key == "registry"
        with pytest.raises(ConfigurationError):
            Node.service_ior("h9", "bogus")

    def test_remote_registry_views(self, rig):
        hub, h0 = rig.node("hub"), rig.node("h0")
        hub.container.create_instance("Counter")
        reg = h0.service_stub("hub", "registry")
        installed = h0.orb.sync(reg.installed())
        assert installed[0]["name"] == "Counter"
        instances = h0.orb.sync(reg.instances())
        assert len(instances) == 1
        providers = h0.orb.sync(reg.find_providers(COUNTER_IFACE.repo_id))
        assert providers == ["Counter"]
        running = h0.orb.sync(reg.running_providers(COUNTER_IFACE.repo_id))
        assert len(running) == 1

    def test_factory_of_remote(self, rig):
        h0 = rig.node("h0")
        reg = h0.service_stub("hub", "registry")
        factory_ior = h0.orb.sync(reg.factory_of("Counter"))
        assert isinstance(factory_ior, IOR)
        with pytest.raises(NotInstalled):
            h0.orb.sync(reg.factory_of("Ghost"))

    def test_acceptor_install_fetch_roundtrip(self, rig):
        hub, h0 = rig.node("hub"), rig.node("h0")
        acceptor = hub.service_stub("h0", "acceptor")
        pkg_bytes = hub.repository.package_bytes("Counter")
        result = hub.orb.sync(acceptor.install(pkg_bytes))
        assert result == "Counter 1.0.0"
        assert h0.repository.is_installed("Counter")
        assert hub.orb.sync(acceptor.is_installed("Counter", ">=1.0"))
        fetched = hub.orb.sync(acceptor.fetch("Counter", ""))
        assert ComponentPackage(fetched).name == "Counter"
        assert hub.orb.sync(acceptor.installed_names()) == ["Counter"]

    def test_acceptor_rejects_garbage(self, rig):
        hub = rig.node("hub")
        acceptor = hub.service_stub("h0", "acceptor")
        with pytest.raises(InstallError):
            hub.orb.sync(acceptor.install(b"not a package"))

    def test_acceptor_fetch_missing(self, rig):
        hub = rig.node("hub")
        acceptor = hub.service_stub("h0", "acceptor")
        with pytest.raises(NotInstalled):
            hub.orb.sync(acceptor.fetch("Ghost", ""))

    def test_resource_manager_remote(self, rig):
        hub = rig.node("hub")
        rm = hub.service_stub("h0", "resources")
        snap = ResourceSnapshot.from_value(hub.orb.sync(rm.snapshot()))
        assert snap.host == "h0"
        assert hub.orb.sync(rm.fits(10.0, 10.0, 0.0))
        assert not hub.orb.sync(rm.fits(1e9, 0.0, 0.0))


class TestLocalResolver:
    def test_prefers_running_instance(self):
        r = star_rig(1)
        hub = r.node("hub")
        hub.install_package(counter_package())
        inst = hub.container.create_instance("Counter")
        ior = r.run(until=hub.request_component(COUNTER_IFACE.repo_id))
        assert ior == inst.ports.facet("value").ior
        assert len(hub.container) == 1  # no second instance

    def test_instantiates_installed_provider(self):
        r = star_rig(1)
        hub = r.node("hub")
        hub.install_package(counter_package())
        ior = r.run(until=hub.request_component(COUNTER_IFACE.repo_id))
        assert ior is not None
        assert len(hub.container) == 1

    def test_unknown_interface_fails(self):
        r = star_rig(1)
        with pytest.raises(TRANSIENT):
            r.run(until=r.node("hub").request_component("IDL:none:1.0"))

    def test_dispatch_charges_resource_manager(self):
        r = star_rig(1)
        hub = r.node("hub")
        hub.install_package(counter_package())
        inst = hub.container.create_instance("Counter")
        stub = r.node("h0").orb.stub(inst.ports.facet("value").ior,
                                     COUNTER_IFACE)
        before = hub.resources.cpu_seconds_charged
        r.node("h0").orb.sync(stub.read())
        assert hub.resources.cpu_seconds_charged > before

"""Unit tests for the IDL compiler: lexer, parser, codegen."""

import pytest

from repro.idl import compile_idl, parse, tokenize
from repro.idl.codegen import IdlSemanticError
from repro.idl.lexer import IdlLexError
from repro.idl.parser import IdlSyntaxError
from repro.idl import idlast as ast
from repro.orb.cdr import decode_one, encode_one
from repro.orb.exceptions import UserException
from repro.orb.typecodes import TCKind


class TestLexer:
    def test_keywords_vs_identifiers(self):
        toks = tokenize("interface Foo")
        assert (toks[0].kind, toks[0].value) == ("kw", "interface")
        assert (toks[1].kind, toks[1].value) == ("ident", "Foo")
        assert toks[-1].kind == "eof"

    def test_comments_stripped(self):
        toks = tokenize("a // line comment\n/* block\ncomment */ b")
        assert [t.value for t in toks[:-1]] == ["a", "b"]

    def test_line_numbers_tracked(self):
        toks = tokenize("a\n\nb")
        assert toks[0].line == 1
        assert toks[1].line == 3

    def test_scoped_name_token(self):
        toks = tokenize("A::B")
        assert [t.value for t in toks[:-1]] == ["A", "::", "B"]

    def test_literals(self):
        toks = tokenize('42 0x1F 3.5 1e3 "str" \'c\'')
        kinds = [t.kind for t in toks[:-1]]
        assert kinds == ["int", "int", "float", "float", "string", "char"]

    def test_bad_character_raises(self):
        with pytest.raises(IdlLexError):
            tokenize("interface $bad")

    def test_pragma_token(self):
        toks = tokenize('#pragma prefix "omg.org"\nmodule M {};')
        assert toks[0].kind == "pragma"


class TestParser:
    def test_empty_module(self):
        spec = parse("module M {};")
        (mod,) = spec.definitions
        assert isinstance(mod, ast.ModuleDecl)
        assert mod.name == "M"
        assert mod.body == []

    def test_interface_with_inheritance(self):
        spec = parse("""
            interface A {};
            interface B {};
            interface C : A, B {};
        """)
        c = spec.definitions[2]
        assert [b.text for b in c.bases] == ["A", "B"]

    def test_operation_shapes(self):
        spec = parse("""
            interface I {
              void nop();
              long add(in long a, in long b);
              oneway void fire(in string tag);
              string both(inout string s, out long n);
            };
        """)
        ops = {o.name: o for o in spec.definitions[0].body}
        assert ops["nop"].result is None
        assert ops["add"].result == ast.PrimitiveType("long")
        assert ops["fire"].oneway
        assert [p.mode for p in ops["both"].params] == ["inout", "out"]

    def test_raises_clause(self):
        spec = parse("""
            exception E { string what; };
            interface I { void f() raises (E); };
        """)
        op_decl = spec.definitions[1].body[0]
        assert [r.text for r in op_decl.raises] == ["E"]

    def test_attributes(self):
        spec = parse("""
            interface I {
              attribute long x, y;
              readonly attribute string name;
            };
        """)
        attrs = spec.definitions[0].body
        assert [a.name for a in attrs] == ["x", "y", "name"]
        assert attrs[2].readonly

    def test_struct_multi_declarators(self):
        spec = parse("struct S { long a, b; string c; };")
        members = spec.definitions[0].members
        assert [m.name for m in members] == ["a", "b", "c"]

    def test_typedef_with_array_dims(self):
        spec = parse("typedef long Grid[2][3];")
        td = spec.definitions[0]
        assert isinstance(td.type, ast.ArrayOf)
        assert td.type.dims == (2, 3)

    def test_sequence_with_bound(self):
        spec = parse("typedef sequence<string, 10> Names;")
        td = spec.definitions[0]
        assert td.type.bound == 10

    def test_union_with_default(self):
        spec = parse("""
            union U switch (long) {
              case 1: long i;
              case 2:
              case 3: string s;
              default: double d;
            };
        """)
        u = spec.definitions[0]
        assert [a.labels for a in u.arms] == [[1], [2, 3], [None]]

    def test_const_declarations(self):
        spec = parse("""
            const long A = 5;
            const double B = -2.5;
            const string C = "hi";
            const boolean D = TRUE;
        """)
        values = [d.value for d in spec.definitions]
        assert values == [5, -2.5, "hi", True]

    def test_pragma_prefix_captured(self):
        spec = parse('#pragma prefix "omg.org"\nmodule M {};')
        assert spec.prefix == "omg.org"

    @pytest.mark.parametrize("source", [
        "module M {",                     # unterminated
        "interface I { void f() };",      # missing ';' after op... actually missing ( )
        "struct S { long; };",            # missing member name
        "interface I : {};",              # missing base
        "typedef;",
        "union U switch (long) { long i; };",  # missing case
    ])
    def test_syntax_errors(self, source):
        with pytest.raises(IdlSyntaxError):
            parse(source)

    def test_unsigned_variants(self):
        spec = parse("struct S { unsigned short a; unsigned long b; "
                     "unsigned long long c; long long d; };")
        names = [m.type.name for m in spec.definitions[0].members]
        assert names == ["unsigned short", "unsigned long",
                         "unsigned long long", "long long"]


class TestCodegen:
    def test_full_module_compiles(self):
        mod = compile_idl("""
            module Shop {
              enum Size { small, large };
              struct Item { string name; double price; Size size; };
              typedef sequence<Item> Items;
              exception SoldOut { string item; };
              interface Store {
                readonly attribute string name;
                Items list_items();
                void buy(in string name) raises (SoldOut);
              };
            };
        """)
        shop = mod.Shop
        assert shop.Item.kind is TCKind.STRUCT
        assert shop.Items.kind is TCKind.ALIAS
        assert issubclass(shop.SoldOut, UserException)
        assert shop.Store.repo_id == "IDL:Shop/Store:1.0"
        assert "_get_name" in shop.Store.operations
        assert shop.Store.operations["buy"].raises[0].name == "SoldOut"

    def test_prefix_in_repo_ids(self):
        mod = compile_idl('#pragma prefix "acme.com"\n'
                          "module M { interface I {}; };")
        assert mod.M.I.repo_id == "IDL:acme.com/M/I:1.0"

    def test_compiled_typecodes_marshal(self):
        mod = compile_idl("""
            module T {
              struct P { long a; sequence<double> xs; };
            };
        """)
        value = {"a": 1, "xs": [1.5, 2.5]}
        assert decode_one(mod.T.P, encode_one(mod.T.P, value)) == value

    def test_interface_as_parameter_type(self):
        mod = compile_idl("""
            module F {
              interface Worker {};
              interface Pool { Worker grab(in Worker hint); };
            };
        """)
        grab = mod.F.Pool.operations["grab"]
        assert grab.result.kind is TCKind.OBJREF
        assert grab.result.repo_id == mod.F.Worker.repo_id

    def test_cross_module_scoped_names(self):
        mod = compile_idl("""
            module A { struct S { long x; }; };
            module B { interface I { A::S get(); }; };
        """)
        assert mod.B.I.operations["get"].result == mod.A.S

    def test_reopened_module(self):
        mod = compile_idl("""
            module M { struct A { long x; }; };
            module M { struct B { A inner; }; };
        """)
        assert mod.M.B.members[0][1] == mod.M.A

    def test_interface_inheritance_compiled(self):
        mod = compile_idl("""
            interface Base { void b(); };
            interface Derived : Base { void d(); };
        """)
        assert mod.Derived.find_operation("b") is not None
        assert mod.Derived.is_a(mod.Base.repo_id)

    def test_interface_scoped_types_exposed(self):
        mod = compile_idl("""
            interface I {
              struct Inner { long x; };
              Inner get();
            };
        """)
        assert mod.I_Inner.kind is TCKind.STRUCT
        assert mod.I.operations["get"].result == mod.I_Inner

    def test_undefined_name_rejected(self):
        with pytest.raises(IdlSemanticError):
            compile_idl("struct S { Missing m; };")

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(IdlSemanticError):
            compile_idl("struct S { long x; }; struct S { long y; };")

    def test_exception_not_usable_as_type(self):
        with pytest.raises(IdlSemanticError):
            compile_idl("""
                exception E { string s; };
                struct S { E e; };
            """)

    def test_non_interface_base_rejected(self):
        with pytest.raises(IdlSemanticError):
            compile_idl("""
                struct S { long x; };
                interface I : S {};
            """)

    def test_union_compiles_and_marshals(self):
        mod = compile_idl("""
            enum Kind { ints, text };
            union V switch (Kind) {
              case ints: long i;
              default: string s;
            };
        """)
        v = ("ints", 5)
        assert decode_one(mod.V, encode_one(mod.V, v)) == v
        v2 = ("text", "words")
        assert decode_one(mod.V, encode_one(mod.V, v2)) == v2

    def test_recompile_is_safe(self):
        src = "module R { exception E { string s; }; interface I { void f() raises (E); }; };"
        m1 = compile_idl(src)
        m2 = compile_idl(src)
        assert m2.R.I.repo_id == m1.R.I.repo_id

    def test_compiled_exception_raising(self):
        mod = compile_idl("exception Bang { string why; long code; };")
        exc = mod.Bang("because", 7)
        assert exc.why == "because"
        assert exc.code == 7
        assert exc.FIELDS == ("why", "code")

"""Campaign engine: seeded determinism and clean runs.

Marked ``chaos`` — full campaigns stand up the whole system and run
tens of simulated seconds; ``make chaos`` runs the long form, the
short campaigns here keep ``make check`` honest.
"""

import pytest

from repro.chaos import CampaignConfig, ChaosCampaign, build_world, run_campaign
from repro.util.errors import ConfigurationError

pytestmark = pytest.mark.chaos

SHORT = CampaignConfig(horizon=12.0, mean_gap=2.0, mean_dwell=4.0,
                       drain=6.0)


class TestConfigValidation:
    def test_bad_values_rejected(self):
        with pytest.raises(ConfigurationError):
            CampaignConfig(horizon=0)
        with pytest.raises(ConfigurationError):
            CampaignConfig(mean_gap=0)
        with pytest.raises(ConfigurationError):
            CampaignConfig(max_concurrent_faults=0)
        with pytest.raises(ConfigurationError):
            CampaignConfig(weights=(("no_such_fault", 1.0),))
        with pytest.raises(ConfigurationError):
            CampaignConfig(weights=(("crash_host", 0.0),))

    def test_weights_serialized_as_ordered_pairs(self):
        cfg = CampaignConfig(weights=(("wan_flap", 2.0),
                                      ("crash_host", 1.0)))
        assert cfg.to_dict()["weights"] == [["wan_flap", 2.0],
                                            ["crash_host", 1.0]]


class TestShortCampaign:
    def test_short_campaign_runs_clean(self):
        report = run_campaign(401, config=SHORT)
        assert report.ok, report.render_text()
        assert report.actions, "campaign applied no faults"
        quiescent = [c for c in report.checks
                     if c.phase == "quiescence"]
        assert len(quiescent) == 7          # the full default panel
        assert all(c.ok for c in quiescent)
        assert report.metrics.get("chaos.actions", 0) >= 1

    def test_same_seed_is_byte_identical(self):
        a = run_campaign(402, config=SHORT)
        b = run_campaign(402, config=SHORT)
        assert a.to_json() == b.to_json()
        assert a.digest() == b.digest()

    def test_different_seeds_diverge(self):
        a = run_campaign(403, config=SHORT)
        b = run_campaign(404, config=SHORT)
        assert a.digest() != b.digest()

    def test_faults_are_healed_by_quiescence(self):
        world = build_world(405)
        campaign = ChaosCampaign(world, SHORT)
        report = campaign.run()
        assert campaign.active == []
        applied = sum(1 for a in report.actions
                      if not a.kind.startswith("heal.")
                      and a.target != "-")
        healed = sum(1 for a in report.actions
                     if a.kind.startswith("heal."))
        assert applied == healed
        # World really is healed: every host back up, links restored.
        assert set(world.alive_hosts()) == set(
            world.topology.host_ids())
        assert all(link.up for link in world.topology.links())

    def test_settle_window_derived_from_system_timers(self):
        world = build_world(406)
        campaign = ChaosCampaign(world, SHORT)
        fed = world.federation.config
        assert campaign.report.settle >= fed.member_timeout
        explicit = ChaosCampaign(world, CampaignConfig(settle=9.0))
        assert explicit.report.settle == 9.0

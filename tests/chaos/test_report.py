"""Unit tests for the chaos report model (canonical serialization)."""

import json

from repro.chaos import (
    ChaosAction,
    ChaosReport,
    InvariantCheck,
    InvariantViolation,
)
from repro.chaos.report import canonical_json


def sample_report():
    return ChaosReport(
        seed=7, horizon=30.0, settle=12.5,
        config={"horizon": 30.0, "weights": [["crash_host", 3.0]]},
        actions=[
            ChaosAction(1.5, "crash_host", "c1h1",
                        detail=(("dwell", 4.0),)),
            ChaosAction(5.5, "heal.crash_host", "c1h1"),
        ],
        checks=[
            InvariantCheck(2.0, "loops.alive", "mid", True, "all live"),
            InvariantCheck(20.0, "deployment.no_orphans", "quiescence",
                           True, "2 instances, all singular"),
        ],
        violations=[],
        metrics={"chaos.actions": 1.0, "client.ok": 40},
    )


class TestCanonicalJson:
    def test_sorted_keys_and_tight_separators(self):
        assert canonical_json({"b": 1, "a": [2, 3]}) == '{"a":[2,3],"b":1}'

    def test_json_is_stable_across_calls(self):
        report = sample_report()
        assert report.to_json() == report.to_json()
        assert report.digest() == report.digest()

    def test_digest_changes_with_content(self):
        a = sample_report()
        b = sample_report()
        b.actions.append(ChaosAction(9.0, "wan_flap", "c0h0-c1h0"))
        assert a.digest() != b.digest()

    def test_ok_reflects_violations(self):
        report = sample_report()
        assert report.ok
        report.violations.append(InvariantViolation(
            21.0, "federation.membership", "quiescence",
            "membership diverged", seed=7,
            trace=("t=1.500 crash_host(c1h1)",)))
        assert not report.ok
        assert "VIOLATIONS" in report.render_text()
        assert "--seed 7" in report.render_text()


class TestRoundTrip:
    def test_from_dict_round_trips_to_identical_json(self):
        report = sample_report()
        rebuilt = ChaosReport.from_dict(json.loads(report.to_json()))
        assert rebuilt.to_json() == report.to_json()
        assert rebuilt.digest() == report.digest()

    def test_violation_round_trip_keeps_seed_and_trace(self):
        report = sample_report()
        report.violations.append(InvariantViolation(
            21.0, "replica.single_primary", "quiescence",
            "no primary", seed=7, trace=("a", "b")))
        rebuilt = ChaosReport.from_dict(json.loads(report.to_json()))
        assert rebuilt.violations[0].seed == 7
        assert rebuilt.violations[0].trace == ("a", "b")
        assert not rebuilt.ok

    def test_action_counts(self):
        report = sample_report()
        assert report.action_counts() == {"crash_host": 1,
                                          "heal.crash_host": 1}
        assert "crash_host=1" in report.render_text()

"""Invariant monitors: all-green on a healthy world, and each one
actually fires when its property is broken."""

import pytest

from repro.chaos import (
    MID,
    QUIESCENCE,
    build_world,
    default_monitors,
    probe_monitor,
)
from repro.chaos.invariants import (
    FederatedResolvableMonitor,
    MembershipConvergenceMonitor,
    NoOrphanInstancesMonitor,
    SinglePrimaryMonitor,
)


def probe(world, monitor, phase):
    return world.rig.run_process(probe_monitor(monitor, world, phase))


@pytest.fixture(scope="module")
def healthy_world():
    world = build_world(seed=301)
    world.rig.run(until=world.rig.env.now + 5.0)
    return world


class TestHealthyWorldIsGreen:
    def test_all_monitors_pass_mid_campaign(self, healthy_world):
        for monitor in default_monitors():
            ok, detail = probe(healthy_world, monitor, MID)
            assert ok, f"{monitor.name} failed on healthy world: {detail}"

    def test_all_monitors_pass_at_quiescence(self, healthy_world):
        world = build_world(seed=302)
        world.rig.run(until=world.rig.env.now + 5.0)
        world.stop_clients()
        world.rig.run(until=world.rig.env.now + 6.0)
        for monitor in default_monitors():
            ok, detail = probe(world, monitor, QUIESCENCE)
            assert ok, f"{monitor.name} failed at quiescence: {detail}"


class TestMonitorsDetectBreakage:
    def test_orphan_is_flagged_at_quiescence_only(self):
        world = build_world(seed=303)
        monitor = NoOrphanInstancesMonitor()
        world.deployer.orphans.append(("chaos-app", "i9", "c9h9"))
        ok_mid, _ = probe(world, monitor, MID)
        assert ok_mid                       # lenient while faults fly
        ok, detail = probe(world, monitor, QUIESCENCE)
        assert not ok and "orphan" in detail

    def test_membership_divergence_flagged(self):
        world = build_world(seed=304)
        monitor = MembershipConvergenceMonitor()
        # Crash a host and probe *immediately*: membership still lists
        # it, so ground truth and the gossiped view disagree.
        world.injector.crash_host("c2h2")
        ok, detail = probe(world, monitor, QUIESCENCE)
        assert not ok and "diverged" in detail

    def test_rigged_primary_designation_flagged(self):
        world = build_world(seed=305)
        monitor = SinglePrimaryMonitor()
        world.group.primary_id = "nobody"
        ok, detail = probe(world, monitor, MID)
        assert not ok and "designated" in detail

    def test_member_ahead_of_group_epoch_flagged(self):
        world = build_world(seed=306)
        monitor = SinglePrimaryMonitor()
        world.group.members[-1].epoch = world.group.epoch + 5
        ok, detail = probe(world, monitor, MID)
        assert not ok and "ahead of group epoch" in detail

    def test_unresolvable_provider_flagged(self):
        world = build_world(seed=307)
        monitor = FederatedResolvableMonitor(ttl_bound=6.0)
        # Fabricate ground truth the registry cannot know about by
        # pretending a second host runs the provider.
        import repro.chaos.invariants as inv
        real = inv._running_ground_truth
        try:
            inv._running_ground_truth = (
                lambda w: real(w) | {"c2h0"})
            ok, detail = probe(world, monitor, QUIESCENCE)
        finally:
            inv._running_ground_truth = real
        assert not ok and "unresolvable" in detail

    def test_strictness_split(self):
        strict = {m.name for m in default_monitors() if m.strict_mid}
        assert strict == {"loops.alive", "replica.single_primary"}

"""Chaos replay digests must not depend on PYTHONHASHSEED.

A campaign report is its own reproducer (PR-9), but that contract is
only as strong as the weakest iteration order in the stack: one
``for x in some_set`` on a hot path and two *processes* with different
hash seeds produce different reports from the same seed.  The SIM004
rule hunts those statically; this test closes the loop end to end by
running the same campaign in two fresh interpreters with different
``PYTHONHASHSEED`` values and demanding byte-identical reports.
"""

import json
import os
import subprocess
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]
SRC = REPO_ROOT / "src"


def _run_campaign(tmp_path, hashseed, seed=11, horizon=12.0):
    out = tmp_path / f"report-hashseed{hashseed}.json"
    env = dict(os.environ)
    env["PYTHONHASHSEED"] = str(hashseed)
    env["PYTHONPATH"] = str(SRC)
    proc = subprocess.run(
        [sys.executable, "-m", "repro.tools.chaos",
         "--seed", str(seed), "--horizon", str(horizon),
         "--json", str(out)],
        env=env, capture_output=True, text=True, timeout=300)
    assert proc.returncode == 0, proc.stdout + proc.stderr
    return out.read_bytes()


class TestCrossProcessDigest:
    def test_reports_byte_identical_across_hash_seeds(self, tmp_path):
        first = _run_campaign(tmp_path, hashseed=1)
        second = _run_campaign(tmp_path, hashseed=2)
        assert first == second, (
            "chaos report differs between PYTHONHASHSEED=1 and =2: "
            "some code path observes set/dict hash order")

    def test_digest_matches_in_process_run(self, tmp_path):
        """The subprocess report replays in *this* process too."""
        from repro.chaos import (
            CampaignConfig, ChaosReport, run_campaign,
        )
        saved = ChaosReport.from_dict(
            json.loads(_run_campaign(tmp_path, hashseed=5)))
        local = run_campaign(
            saved.seed, config=CampaignConfig(horizon=saved.horizon))
        assert local.digest() == saved.digest()

"""Client-side circuit breaker: state machine and retry integration."""

import pytest

from repro.orb.core import InterfaceDef, ORB, Servant, op
from repro.orb.exceptions import (BAD_OPERATION, MINOR_BREAKER_OPEN,
                                  SystemException, TRANSIENT)
from repro.orb.retry import (BreakerRegistry, CircuitBreaker, RetryPolicy,
                             call_with_retry, send_oneway_with_breaker)
from repro.orb.typecodes import tc_long
from repro.sim.faults import FaultInjector
from repro.sim.kernel import Environment
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.topology import star

IFACE = InterfaceDef("IDL:test/Counter:1.0", "Counter", operations=[
    op("bump", [("x", tc_long)], tc_long),
    op("poke", [("x", tc_long)], oneway=True),
])
BUMP = IFACE.operations["bump"]
POKE = IFACE.operations["poke"]


class CounterServant(Servant):
    _interface = IFACE

    def __init__(self):
        self.calls = 0
        self.pokes = []

    def bump(self, x):
        self.calls += 1
        return x + 1

    def poke(self, x):
        self.pokes.append(x)


def make_rig():
    env = Environment()
    net = Network(env, star(3), rngs=RngRegistry(11))
    server = ORB(env, net, "h0")
    client = ORB(env, net, "h1")
    servant = CounterServant()
    ior = server.adapter("root").activate(servant)
    return env, net, server, client, servant, ior


def advance(env, dt):
    env.run(until=env.timeout(dt))


FAST = RetryPolicy(attempts=3, timeout=0.5, backoff=0.1,
                   backoff_factor=1.0, jitter=False)


class TestStateMachine:
    def test_param_validation(self):
        env, net, _, client, _, _ = make_rig()
        with pytest.raises(ValueError):
            CircuitBreaker(client, "h0", failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(client, "h0", reset_timeout=0)
        with pytest.raises(ValueError):
            CircuitBreaker(client, "h0", half_open_probes=0)

    def test_opens_at_threshold(self):
        env, net, _, client, _, _ = make_rig()
        breaker = CircuitBreaker(client, "h0", failure_threshold=3)
        for _ in range(2):
            breaker.on_failure()
        assert breaker.state == CircuitBreaker.CLOSED
        breaker.on_failure()
        assert breaker.state == CircuitBreaker.OPEN
        assert breaker.transitions == [(0.0, "closed", "open")]
        assert net.metrics.get("breaker.opened") == 1

    def test_success_resets_failure_count(self):
        env, net, _, client, _, _ = make_rig()
        breaker = CircuitBreaker(client, "h0", failure_threshold=3)
        breaker.on_failure()
        breaker.on_failure()
        breaker.on_success()
        assert breaker.failures == 0
        breaker.on_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_open_fast_fails_until_reset_timeout(self):
        env, net, _, client, _, _ = make_rig()
        breaker = CircuitBreaker(client, "h0", failure_threshold=1,
                                 reset_timeout=5.0)
        breaker.on_failure()
        assert not breaker.allow()
        assert not breaker.allow()
        assert breaker.fast_fails == 2
        assert net.metrics.get("breaker.fast_fails") == 2
        exc = breaker.reject_exception()
        assert isinstance(exc, TRANSIENT)
        assert exc.minor == MINOR_BREAKER_OPEN
        advance(env, 5.0)
        assert breaker.allow()  # now a half-open probe
        assert breaker.state == CircuitBreaker.HALF_OPEN

    def test_half_open_probe_budget(self):
        env, net, _, client, _, _ = make_rig()
        breaker = CircuitBreaker(client, "h0", failure_threshold=1,
                                 reset_timeout=1.0, half_open_probes=2)
        breaker.on_failure()
        advance(env, 1.0)
        assert breaker.allow()
        assert breaker.allow()
        assert not breaker.allow()  # probe budget spent

    def test_half_open_failure_reopens_and_rearms(self):
        env, net, _, client, _, _ = make_rig()
        breaker = CircuitBreaker(client, "h0", failure_threshold=1,
                                 reset_timeout=2.0)
        breaker.on_failure()          # t=0: open
        advance(env, 2.0)
        assert breaker.allow()        # t=2: half-open probe
        breaker.on_failure()          # probe failed: re-open
        assert breaker.state == CircuitBreaker.OPEN
        assert not breaker.allow()    # timer re-armed from t=2
        advance(env, 2.0)
        assert breaker.allow()
        breaker.on_success()
        assert breaker.state == CircuitBreaker.CLOSED
        assert [(f, t) for _, f, t in breaker.transitions] == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]
        assert net.metrics.get("breaker.closed") == 1
        assert net.metrics.get("breaker.half_open") == 2


class TestRetryIntegration:
    def test_breaker_opens_on_dead_peer_then_fast_fails(self):
        env, net, server, client, servant, ior = make_rig()
        FaultInjector(env, net.topology).cut_link("h0", "hub")
        breaker = CircuitBreaker(client, "h0", failure_threshold=3,
                                 reset_timeout=30.0)
        with pytest.raises(SystemException):
            call_with_retry(client, ior, BUMP, (1,), policy=FAST,
                            breaker=breaker)
        assert breaker.state == CircuitBreaker.OPEN
        requests_on_wire = net.metrics.get("orb.requests")
        # Open breaker: the retry loop fast-fails locally, nothing is
        # marshalled, nothing hits the wire.
        with pytest.raises(TRANSIENT) as exc_info:
            call_with_retry(client, ior, BUMP, (2,), policy=FAST,
                            breaker=breaker)
        assert exc_info.value.minor == MINOR_BREAKER_OPEN
        assert net.metrics.get("orb.requests") == requests_on_wire
        assert breaker.fast_fails == FAST.attempts

    def test_breaker_closes_after_peer_heals(self):
        env, net, server, client, servant, ior = make_rig()
        injector = FaultInjector(env, net.topology)
        injector.cut_link("h0", "hub")
        breaker = CircuitBreaker(client, "h0", failure_threshold=3,
                                 reset_timeout=5.0)
        with pytest.raises(SystemException):
            call_with_retry(client, ior, BUMP, (1,), policy=FAST,
                            breaker=breaker)
        injector.heal_link("h0", "hub")
        advance(env, 5.0)
        result = call_with_retry(client, ior, BUMP, (10,), policy=FAST,
                                 breaker=breaker)
        assert result == 11
        assert breaker.state == CircuitBreaker.CLOSED
        assert [(f, t) for _, f, t in breaker.transitions] == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]

    def test_non_retryable_answer_counts_as_success(self):
        env, net, server, client, servant, ior = make_rig()
        breaker = CircuitBreaker(client, "h0", failure_threshold=3)
        breaker.on_failure()
        breaker.on_failure()
        missing = op("no_such_op", [], tc_long)
        with pytest.raises(BAD_OPERATION):
            call_with_retry(client, ior, missing, (), policy=FAST,
                            breaker=breaker)
        # A definitive error reply proves the peer is alive.
        assert breaker.failures == 0
        assert breaker.state == CircuitBreaker.CLOSED

    def test_registry_isolates_peers(self):
        env, net, server, client, servant, ior = make_rig()
        registry = BreakerRegistry(client, failure_threshold=2)
        b0 = registry.breaker_for("h0")
        assert registry.breaker_for("h0") is b0
        b2 = registry.breaker_for("h2")
        b0.on_failure()
        b0.on_failure()
        assert b0.state == CircuitBreaker.OPEN
        assert b2.state == CircuitBreaker.CLOSED
        assert b2.failure_threshold == 2
        assert set(registry.breakers()) == {"h0", "h2"}


class TestOnewayProofOfLife:
    """Regression: oneway-only clients could never re-close a breaker.

    Oneways carry no reply, so ``on_success`` never fired; a HALF_OPEN
    breaker on a oneway-only path stayed half-open (or re-opened)
    forever even when the peer was healthy.  Accepted oneway sends now
    count toward the half-open probe budget via ``on_oneway_sent``.
    """

    def test_open_breaker_suppresses_oneway(self):
        env, net, _, client, servant, ior = make_rig()
        breaker = CircuitBreaker(client, "h0", failure_threshold=1,
                                 reset_timeout=5.0)
        breaker.on_failure()
        sent = send_oneway_with_breaker(client, ior, POKE, (1,),
                                        breaker=breaker)
        assert sent is False
        env.run(until=1.0)
        assert servant.pokes == []          # nothing hit the wire
        assert breaker.fast_fails == 1

    def test_oneway_sends_reclose_half_open_breaker(self):
        env, net, _, client, servant, ior = make_rig()
        breaker = CircuitBreaker(client, "h0", failure_threshold=1,
                                 reset_timeout=5.0, half_open_probes=2)
        breaker.on_failure()
        advance(env, 5.0)
        assert send_oneway_with_breaker(client, ior, POKE, (1,),
                                        breaker=breaker)
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert send_oneway_with_breaker(client, ior, POKE, (2,),
                                        breaker=breaker)
        # Probe budget filled by accepted sends alone: re-closed with
        # no reply ever observed.
        assert breaker.state == CircuitBreaker.CLOSED
        assert send_oneway_with_breaker(client, ior, POKE, (3,),
                                        breaker=breaker)
        env.run(until=10.0)
        assert servant.pokes == [1, 2, 3]
        assert [(f, t) for _, f, t in breaker.transitions] == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]

    def test_oneway_send_resets_failure_count_when_closed(self):
        env, net, _, client, _, ior = make_rig()
        breaker = CircuitBreaker(client, "h0", failure_threshold=3)
        breaker.on_failure()
        breaker.on_failure()
        send_oneway_with_breaker(client, ior, POKE, (0,), breaker=breaker)
        assert breaker.failures == 0
        breaker.on_failure()
        assert breaker.state == CircuitBreaker.CLOSED

    def test_plain_send_without_breaker(self):
        env, net, _, client, servant, ior = make_rig()
        assert send_oneway_with_breaker(client, ior, POKE, (9,))
        env.run(until=1.0)
        assert servant.pokes == [9]

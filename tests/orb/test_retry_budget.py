"""Retry-budget (amplification cap) tests — chaos PR.

Under a partition every first attempt times out, and naive retry loops
turn N requests/s into ``N × attempts`` requests/s of pure
amplification aimed at the sickest part of the system.  The
:class:`RetryBudget` token bucket caps that: first attempts deposit
``ratio`` tokens, each retry withdraws one, a dry bucket sheds the
retry (``orb.retries.shed``) and surfaces the last failure instead.
"""

import pytest

from repro.orb.core import InterfaceDef, ORB, Servant, op
from repro.orb.exceptions import TIMEOUT, TRANSIENT
from repro.orb.retry import (
    BreakerRegistry,
    RetryBudget,
    RetryPolicy,
    call_with_retry,
)
from repro.orb.typecodes import tc_long
from repro.sim.kernel import Environment
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.stats import MetricRegistry
from repro.sim.topology import LinkClass, Topology

FLAKY = InterfaceDef("IDL:test/Flaky:1.0", "Flaky", operations=[
    op("get", [], tc_long),
    op("fail_n", [("n", tc_long)], tc_long),
])


class FlakyServant(Servant):
    _interface = FLAKY

    def __init__(self):
        self.calls = 0
        self.failures_left = 0

    def get(self):
        self.calls += 1
        return self.calls

    def fail_n(self, n):
        self.calls += 1
        if self.failures_left > 0:
            self.failures_left -= 1
            raise TRANSIENT("not yet")
        return self.calls


def make_rig():
    topo = Topology()
    topo.add_host("a")
    topo.add_host("b")
    topo.add_link("a", "b", LinkClass("lan", latency=0.001,
                                     bandwidth=1e6, loss=0.0))
    env = Environment()
    net = Network(env, topo, rngs=RngRegistry(5))
    server = ORB(env, net, "a")
    client = ORB(env, net, "b")
    servant = FlakyServant()
    ior = server.adapter("root").activate(servant)
    return env, client, servant, ior


class TestBudgetBucket:
    def test_validation(self):
        env = Environment()
        with pytest.raises(ValueError):
            RetryBudget(env, None, ratio=-0.1)
        with pytest.raises(ValueError):
            RetryBudget(env, None, refill_rate=-1.0)
        with pytest.raises(ValueError):
            RetryBudget(env, None, max_tokens=0.5)

    def test_attempts_deposit_and_retries_withdraw(self):
        env = Environment()
        budget = RetryBudget(env, None, ratio=0.5, refill_rate=0.0,
                             max_tokens=10.0, initial=0.0)
        assert budget.available() == 0.0
        for _ in range(4):
            budget.on_attempt()
        assert budget.available() == pytest.approx(2.0)
        assert budget.try_spend() and budget.try_spend()
        assert not budget.try_spend()           # dry: shed
        assert budget.shed == 1 and budget.spent == 2

    def test_refill_over_simulated_time(self):
        env = Environment()
        budget = RetryBudget(env, None, ratio=0.0, refill_rate=2.0,
                             max_tokens=5.0, initial=0.0)
        assert not budget.try_spend()
        env.run(until=env.timeout(1.0))
        assert budget.available() == pytest.approx(2.0)
        assert budget.try_spend()

    def test_tokens_capped_at_max(self):
        env = Environment()
        budget = RetryBudget(env, None, ratio=1.0, refill_rate=10.0,
                             max_tokens=3.0)
        for _ in range(20):
            budget.on_attempt()
        assert budget.available() == 3.0

    def test_shed_is_counted(self):
        env = Environment()
        metrics = MetricRegistry()
        budget = RetryBudget(env, metrics, refill_rate=0.0, initial=0.0)
        assert not budget.try_spend()
        assert metrics.get("orb.retries.shed") == 1


class TestBudgetedRetryLoop:
    def test_dry_budget_sheds_instead_of_retrying(self):
        env, client, servant, ior = make_rig()
        servant.failures_left = 99
        budget = RetryBudget(env, client.metrics, ratio=0.0,
                             refill_rate=0.0, initial=0.0)
        with pytest.raises(TRANSIENT):
            call_with_retry(
                client, ior, FLAKY.operations["fail_n"], (0,),
                policy=RetryPolicy(attempts=5, timeout=1.0, backoff=0.1),
                budget=budget)
        # One first attempt, zero retries: shed, not amplified.
        assert servant.calls == 1
        assert client.metrics.get("orb.retries.shed") >= 1
        assert client.metrics.get("orb.retries", 0.0) == 0.0

    def test_funded_budget_allows_recovery(self):
        env, client, servant, ior = make_rig()
        servant.failures_left = 2
        budget = RetryBudget(env, client.metrics, initial=5.0,
                             refill_rate=0.0)
        result = call_with_retry(
            client, ior, FLAKY.operations["fail_n"], (0,),
            policy=RetryPolicy(attempts=4, timeout=1.0, backoff=0.1),
            budget=budget)
        assert result == 3
        assert budget.spent == 2 and budget.shed == 0

    def test_storm_amplification_is_bounded(self):
        """100 first attempts against a dead host: total wire attempts
        stay near 100 + budget, nowhere near 100 × attempts."""
        env, client, servant, ior = make_rig()
        client.network.topology.set_host_state("a", alive=False)
        budget = RetryBudget(env, client.metrics, ratio=0.1,
                             refill_rate=0.0, max_tokens=50.0,
                             initial=0.0)
        policy = RetryPolicy(attempts=4, timeout=0.2, backoff=0.05,
                             jitter=False)
        for _ in range(100):
            with pytest.raises(TIMEOUT):
                call_with_retry(client, ior, FLAKY.operations["get"],
                                (), policy=policy, budget=budget)
        retries = client.metrics.get("orb.retries")
        assert retries <= 15                 # ~ratio × attempts, not 300
        assert client.metrics.get("orb.retries.shed") >= 100

    def test_breaker_registry_carries_shared_budget(self):
        env, client, servant, ior = make_rig()
        budget = RetryBudget(env, client.metrics)
        registry = BreakerRegistry(client, retry_budget=budget,
                                   failure_threshold=3)
        assert registry.retry_budget is budget
        breaker = registry.breaker_for("a")
        assert registry.breaker_for("a") is breaker

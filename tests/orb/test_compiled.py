"""Tests for the compiled CDR codec plans and the invocation fast path.

Covers the plan cache (hit counters during a standard invocation), the
max-nesting edge cases where the fast path must agree with the
interpreter's dynamic depth limit, misaligned enclosing encapsulations,
and the pooled-encoder plumbing (``take``/``reset``).
"""

import pytest

from repro.orb import compiled
from repro.orb.cdr import (
    Any,
    CDRDecoder,
    CDREncoder,
    decode_value,
    decode_value_interp,
    encode_one,
    encode_value,
    encode_value_interp,
)
from repro.orb.compiled import CodecPlan, compile_plan, get_plan, op_codec
from repro.orb.core import InterfaceDef, ORB, Servant, op
from repro.orb.exceptions import BAD_PARAM
from repro.orb.typecodes import (
    alias_tc,
    array_tc,
    enum_tc,
    sequence_tc,
    struct_tc,
    tc_any,
    tc_boolean,
    tc_char,
    tc_double,
    tc_long,
    tc_octet,
    tc_short,
    tc_string,
    tc_void,
    union_tc,
)
from repro.sim.kernel import Environment
from repro.sim.network import Network
from repro.sim.topology import star

POINT = struct_tc("Point", [("x", tc_double), ("y", tc_double)])
MIXED = struct_tc("Mixed", [
    ("flag", tc_boolean),
    ("id", tc_long),
    ("name", tc_string),
    ("ratio", tc_double),
    ("tail", sequence_tc(POINT)),
])
MIXED_VALUE = {
    "flag": True,
    "id": 7,
    "name": "mixed",
    "ratio": 0.5,
    "tail": [{"x": 1.0, "y": 2.0}, {"x": 3.0, "y": 4.0}],
}


def both_encodings(tc, value, prefix=0):
    """Encode via interpreter and compiled plan at offset *prefix*."""
    e_ref = CDREncoder()
    e_fast = CDREncoder()
    for i in range(prefix):
        e_ref.write_octet(i)
        e_fast.write_octet(i)
    encode_value_interp(e_ref, tc, value)
    get_plan(tc).encode(e_fast, value)
    return e_ref.getvalue(), e_fast.getvalue()


class TestPlanEquivalence:
    @pytest.mark.parametrize("tc,value", [
        (POINT, {"x": 1.5, "y": -2.5}),
        (MIXED, MIXED_VALUE),
        (sequence_tc(tc_double), [0.0, 1.0, 2.0]),
        (sequence_tc(tc_short), [-3, 0, 3]),
        (sequence_tc(tc_char), list("abc")),
        (array_tc(tc_long, 4), [1, 2, 3, 4]),
        (array_tc(POINT, 2), [{"x": 0.0, "y": 0.0}, {"x": 1.0, "y": 1.0}]),
        (enum_tc("Color", ["red", "green"]), "green"),
        (alias_tc("Name", tc_string), "aliased"),
        (tc_any, Any(POINT, {"x": 9.0, "y": 8.0})),
        (union_tc("U", tc_long,
                  [(1, "i", tc_long), (None, "d", tc_double)],
                  default_index=1), (1, 42)),
        (struct_tc("V", [("pad", tc_octet), ("v", tc_void)]),
         {"pad": 1, "v": None}),
    ])
    def test_bytes_and_values_match(self, tc, value):
        for prefix in range(8):
            ref, fast = both_encodings(tc, value, prefix)
            assert ref == fast, f"byte mismatch at prefix {prefix}"
            d_ref = CDRDecoder(ref)
            d_fast = CDRDecoder(fast)
            for _ in range(prefix):
                d_ref.read_octet()
                d_fast.read_octet()
            v_ref = decode_value_interp(d_ref, tc)
            v_fast = get_plan(tc).decode(d_fast)
            assert v_ref == v_fast
            assert d_ref._pos == d_fast._pos

    def test_struct_attribute_object(self):
        class P:
            x = 3.0
            y = 4.0
        ref, fast = both_encodings(POINT, P())
        assert ref == fast

    def test_misaligned_enclosing_encapsulation(self):
        """A value encoded inside an encapsulation starts a fresh
        alignment stream even when the enclosing stream is misaligned."""
        inner_ref, inner_fast = both_encodings(POINT, {"x": 1.0, "y": 2.0})
        assert inner_ref == inner_fast
        outer = CDREncoder()
        outer.write_octet(0xAB)          # misalign the outer stream
        outer.write_encapsulation(inner_fast)
        dec = CDRDecoder(outer.getvalue())
        assert dec.read_octet() == 0xAB
        body = CDRDecoder(dec.read_encapsulation())
        assert get_plan(POINT).decode(body) == {"x": 1.0, "y": 2.0}


class TestPlanErrors:
    def test_bad_primitive_rejected(self):
        with pytest.raises(BAD_PARAM):
            encode_one(tc_short, 2 ** 20)
        with pytest.raises(BAD_PARAM):
            encode_one(POINT, {"x": "nope", "y": 1.0})

    def test_char_validation(self):
        with pytest.raises(BAD_PARAM):
            encode_one(struct_tc("C", [("c", tc_char)]), {"c": "ab"})

    def test_struct_member_validation(self):
        with pytest.raises(BAD_PARAM):
            encode_one(POINT, {"x": 1.0})
        with pytest.raises(BAD_PARAM):
            encode_one(POINT, {"x": 1.0, "y": 2.0, "z": 3.0})

    def test_enum_validation(self):
        tc = enum_tc("E", ["a"])
        with pytest.raises(BAD_PARAM):
            encode_one(tc, "zzz")
        with pytest.raises(BAD_PARAM):
            encode_one(tc, 4)

    def test_union_validation(self):
        tc = union_tc("U", tc_long, [(1, "i", tc_long)])
        with pytest.raises(BAD_PARAM):
            encode_one(tc, (9, 1))  # no arm, no default
        with pytest.raises(BAD_PARAM):
            encode_one(tc, 42)      # not a pair

    def test_batched_sequence_garbage_count(self):
        """A bogus huge element count must fail fast, not allocate."""
        tc = sequence_tc(tc_double)
        with pytest.raises(BAD_PARAM):
            get_plan(tc).decode(CDRDecoder(b"\xff\xff\xff\xff" + b"\x00" * 8))


class TestMaxNesting:
    def _deep_struct(self, depth):
        tc = tc_long
        for i in range(depth):
            tc = struct_tc(f"S{i}", [("m", tc)])
        return tc

    def _deep_value(self, depth):
        v = 1
        for _ in range(depth):
            v = {"m": v}
        return v

    def test_deep_struct_rejected_by_both_paths(self):
        tc = self._deep_struct(70)
        value = self._deep_value(70)
        with pytest.raises(BAD_PARAM, match="nesting too deep"):
            encode_value_interp(CDREncoder(), tc, value)
        with pytest.raises(BAD_PARAM, match="nesting too deep"):
            compile_plan(tc).encode(CDREncoder(), value)

    def test_shallow_struct_accepted_by_both_paths(self):
        tc = self._deep_struct(20)
        value = self._deep_value(20)
        ref, fast = both_encodings(tc, value)
        assert ref == fast
        assert get_plan(tc).decode(CDRDecoder(fast)) == value

    def test_deep_sequence_type_with_empty_value_ok(self):
        """An over-deep TypeCode is fine while the value stays shallow:
        the interpreter only enforces depth as it recurses, and the
        compiled plan must match."""
        tc = tc_long
        for _ in range(70):
            tc = sequence_tc(tc)
        ref, fast = both_encodings(tc, [])
        assert ref == fast == b"\x00\x00\x00\x00"
        assert compile_plan(tc).decode(CDRDecoder(fast)) == []

    def test_deep_sequence_value_rejected_by_both_paths(self):
        tc = tc_long
        value = 1
        for _ in range(70):
            tc = sequence_tc(tc)
            value = [value]
        with pytest.raises(BAD_PARAM, match="nesting too deep"):
            encode_value_interp(CDREncoder(), tc, value)
        with pytest.raises(BAD_PARAM, match="nesting too deep"):
            compile_plan(tc).encode(CDREncoder(), value)


class TestEncoderPooling:
    def test_take_detaches_and_resets(self):
        enc = CDREncoder()
        enc.write_ulong(7)
        data = enc.take()
        assert data == b"\x00\x00\x00\x07"
        assert len(enc) == 0
        enc.write_ulong(9)   # reusable after take
        assert enc.getvalue() == b"\x00\x00\x00\x09"

    def test_getvalue_unchanged_by_take_contract(self):
        enc = CDREncoder()
        enc.write_string("x")
        assert enc.getvalue() == enc.getvalue()  # non-destructive
        assert enc.take() == b"\x00\x00\x00\x02x\x00"

    def test_reset_clears(self):
        enc = CDREncoder()
        enc.write_double(1.0)
        enc.reset()
        assert len(enc) == 0

    def test_align_pads_with_zero_bytes(self):
        enc = CDREncoder()
        enc.write_octet(1)
        enc.align(8)
        assert enc.getvalue() == b"\x01" + b"\x00" * 7
        enc.align(8)  # already aligned: no-op
        assert len(enc) == 8

    def test_pack_error_paths(self):
        enc = CDREncoder()
        with pytest.raises(BAD_PARAM):
            enc.write_float("not-a-number")
        with pytest.raises(BAD_PARAM):
            enc.write_ulong(-1)


ECHO = InterfaceDef("IDL:test/CompiledEcho:1.0", "CompiledEcho", operations=[
    op("echo", [("p", POINT)], POINT),
])


class EchoServant(Servant):
    _interface = ECHO

    def echo(self, p):
        return p


class TestInvocationFastPath:
    def _rig(self):
        env = Environment()
        net = Network(env, star(1))
        server = ORB(env, net, "hub")
        client = ORB(env, net, "h0")
        ior = server.adapter("root").activate(EchoServant())
        return client, ior

    def test_plan_cache_hit_during_standard_invocation(self):
        client, ior = self._rig()
        stub = client.stub(ior, ECHO)
        compiled.reset_stats()
        result = client.sync(stub.echo({"x": 1.0, "y": 2.0}))
        assert result == {"x": 1.0, "y": 2.0}
        assert compiled.stats["hits"] > 0

    def test_repeat_invocations_do_not_recompile(self):
        client, ior = self._rig()
        stub = client.stub(ior, ECHO)
        client.sync(stub.echo({"x": 1.0, "y": 2.0}))
        compiled.reset_stats()
        client.sync(stub.echo({"x": 3.0, "y": 4.0}))
        assert compiled.stats["compiled"] == 0
        assert compiled.stats["misses"] == 0

    def test_stub_memoizes_operation_methods(self):
        client, ior = self._rig()
        stub = client.stub(ior, ECHO)
        first = stub.echo
        assert stub.echo is first

    def test_op_codec_cached_per_operation(self):
        odef = ECHO.operations["echo"]
        assert op_codec(odef) is op_codec(odef)

    def test_find_operation_cache_invalidated_on_add(self):
        iface = InterfaceDef("IDL:test/Grow:1.0", "Grow",
                             operations=[op("a")])
        assert iface.find_operation("a") is not None
        assert iface.find_operation("b") is None
        iface.add_operation(op("b"))
        assert iface.find_operation("b") is not None

    def test_find_operation_sees_bases(self):
        base = InterfaceDef("IDL:test/Base:1.0", "Base",
                            operations=[op("ping")])
        child = InterfaceDef("IDL:test/Child:1.0", "Child",
                             operations=[op("pong")], bases=[base])
        assert child.find_operation("ping") is not None
        assert child.find_operation("pong") is not None
        own = InterfaceDef("IDL:test/Own:1.0", "Own",
                           operations=[op("ping", cpu_cost=9.0)],
                           bases=[base])
        assert own.find_operation("ping").cpu_cost == 9.0


class TestPlanCache:
    def test_equal_typecodes_share_a_plan(self):
        a = struct_tc("Shared", [("x", tc_long)])
        b = struct_tc("Shared", [("x", tc_long)])
        assert a is not b
        assert get_plan(a) is get_plan(b)

    def test_get_plan_returns_codec_plan(self):
        plan = get_plan(POINT)
        assert isinstance(plan, CodecPlan)
        assert plan.fixed is not None  # Point is wholly fixed-size

    def test_top_level_api_uses_plans(self):
        compiled.reset_stats()
        enc = CDREncoder()
        encode_value(enc, POINT, {"x": 0.0, "y": 0.0})
        decode_value(CDRDecoder(enc.getvalue()), POINT)
        assert compiled.stats["hits"] + compiled.stats["misses"] >= 2

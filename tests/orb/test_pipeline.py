"""GIOP request pipelining: coalescing, unpacking, admission, crashes."""

import pytest

from repro.orb import giop
from repro.orb.core import InterfaceDef, ORB, Servant, op
from repro.orb.exceptions import BAD_PARAM, MARSHAL
from repro.orb.typecodes import tc_long, tc_string
from repro.sim.kernel import Environment
from repro.sim.network import HEADER_BYTES, Network
from repro.sim.rng import RngRegistry
from repro.sim.topology import star

IFACE = InterfaceDef("IDL:test/Sink:1.0", "Sink", operations=[
    op("note", [("x", tc_long)], oneway=True),
    op("slow_note", [("x", tc_long)], oneway=True, cpu_cost=40.0),
    op("ask", [("s", tc_string)], tc_string),
])
NOTE = IFACE.operations["note"]
SLOW_NOTE = IFACE.operations["slow_note"]
ASK = IFACE.operations["ask"]


class SinkServant(Servant):
    _interface = IFACE

    def __init__(self):
        self.notes = []

    def note(self, x):
        self.notes.append(x)

    def slow_note(self, x):
        self.notes.append(x)

    def ask(self, s):
        return s.upper()


def make_rig(server_kwargs=None, **client_kwargs):
    env = Environment()
    net = Network(env, star(2), rngs=RngRegistry(5))
    server = ORB(env, net, "h0", **(server_kwargs or {}))
    client = ORB(env, net, "h1", **client_kwargs)
    servant = SinkServant()
    ior = server.adapter("root").activate(servant)
    return env, net, server, client, servant, ior


class TestMultiFraming:
    def test_encode_multi_rejects_empty_and_oversize(self):
        with pytest.raises(BAD_PARAM):
            giop.encode_multi([])
        with pytest.raises(BAD_PARAM):
            giop.encode_multi([b"x"] * (giop.MAX_MULTI_FRAMES + 1))

    def test_roundtrip_preserves_frame_bytes(self):
        frames = [b"abc", b"defg", b"x" * 13]
        decoded = giop._decode_message_body(giop.encode_multi(frames))
        assert type(decoded) is giop.MultiMessage
        assert list(decoded.frames) == frames

    def test_truncated_multi_is_a_decode_error(self):
        # Underflow surfaces as BAD_PARAM (bounds check) or MARSHAL
        # (struct error) — either way a SystemException, never a raw
        # Python error escaping the defensive decoder.
        wire = giop.encode_multi([b"abcd", b"efgh"])
        for cut in (4, 9, len(wire) - 1):
            with pytest.raises((MARSHAL, BAD_PARAM)):
                giop.decode_message(wire[:cut])

    def test_absurd_count_rejected_before_allocation(self):
        import struct
        wire = struct.pack(">B3xI", giop.MSG_MULTI, 2 ** 31)
        with pytest.raises(MARSHAL):
            giop._decode_message_body(wire)


class TestCoalescing:
    def test_window_coalesces_oneways_into_one_message(self):
        env, net, _server, client, servant, ior = make_rig(
            pipeline_window=0.01)
        before = net.metrics.get("net.messages")
        for i in range(5):
            client.send_oneway(ior, NOTE, (i,))
        env.run(until=1.0)
        assert servant.notes == [0, 1, 2, 3, 4]          # order kept
        assert net.metrics.get("net.messages") == before + 1
        assert net.metrics.get("net.logical") == 5
        assert net.metrics.get("orb.pipeline.flushes") == 1
        assert net.metrics.get("orb.pipeline.frames") == 5

    def test_header_amortization_saves_bytes(self):
        sent = {}
        for window in (None, 0.01):
            env, net, _server, client, servant, ior = make_rig(
                pipeline_window=window)
            for i in range(10):
                client.send_oneway(ior, NOTE, (i,))
            env.run(until=1.0)
            assert servant.notes == list(range(10))
            sent[window] = net.metrics.get("net.bytes")
        # 10 messages carry 10 headers; 1 coalesced message carries 1.
        # Framing adds 8 bytes + ~8/frame, far less than 9 headers.
        assert sent[0.01] <= sent[None] - 7 * HEADER_BYTES

    def test_frame_threshold_flushes_without_waiting(self):
        env, net, _server, client, servant, ior = make_rig(
            pipeline_window=60.0, pipeline_max_frames=3)
        for i in range(3):
            client.send_oneway(ior, NOTE, (i,))
        env.run(until=1.0)      # far below the 60 s window
        assert servant.notes == [0, 1, 2]

    def test_byte_threshold_flushes_without_waiting(self):
        env, net, _server, client, servant, ior = make_rig(
            pipeline_window=60.0, pipeline_max_bytes=100)
        client.send_oneway(ior, NOTE, (1,))
        client.send_oneway(ior, NOTE, (2,))   # pushes past 100 bytes
        env.run(until=1.0)
        assert servant.notes == [1, 2]

    def test_single_frame_window_sends_plain_message(self):
        env, net, _server, client, servant, ior = make_rig(
            pipeline_window=0.01)
        client.send_oneway(ior, NOTE, (7,))
        env.run(until=1.0)
        assert servant.notes == [7]
        assert net.metrics.get("orb.pipeline.flushes") == 0

    def test_flush_pipelines_forces_early_send(self):
        env, net, _server, client, servant, ior = make_rig(
            pipeline_window=60.0)
        client.send_oneway(ior, NOTE, (1,))
        client.send_oneway(ior, NOTE, (2,))
        client.flush_pipelines()
        env.run(until=1.0)
        assert servant.notes == [1, 2]

    def test_twoway_traffic_not_pipelined(self):
        env, net, _server, client, _servant, ior = make_rig(
            pipeline_window=60.0)
        reply = client.invoke(ior, ASK, ("hi",), timeout=5.0)
        env.run(until=1.0)
        assert reply.ok and reply.value == "HI"


class TestUnpackSemantics:
    def test_each_frame_goes_through_admission(self):
        # dispatch_limit 1 + slow servant: the first logical request in
        # the multi occupies the table; the rest are shed one by one —
        # coalescing must not smuggle requests past admission.
        env, net, _server, client, servant, ior = make_rig(
            server_kwargs={"dispatch_limit": 1}, pipeline_window=0.01)
        for i in range(5):
            client.send_oneway(ior, SLOW_NOTE, (i,))
        env.run(until=10.0)
        assert servant.notes == [0]
        assert net.metrics.get("orb.shed") == 4
        assert net.metrics.get("orb.shed.oneway") == 4

    def test_oneway_shed_counter_without_pipelining(self):
        # Regression (pre-PR failing): shed oneways were only visible
        # in the aggregate orb.shed, indistinguishable from two-ways.
        env, net, _server, client, servant, ior = make_rig(
            server_kwargs={"dispatch_limit": 1})
        for i in range(4):
            client.send_oneway(ior, SLOW_NOTE, (i,))
        env.run(until=10.0)
        assert servant.notes == [0]
        assert net.metrics.get("orb.shed.oneway") == 3
        assert net.metrics.get("orb.shed") == 3

    def test_nested_multi_rejected_frame_not_fatal(self):
        env, net, server, _client, servant, ior = make_rig()
        inner = giop.encode_multi([b"\x00bogus"])
        good = giop.encode_request(
            1, False, giop.encode_request_prefix(
                "h0", ior.adapter, ior.object_key, "note"),
            b"\x00\x00\x00\x2a")
        wire = giop.encode_multi([inner, good, b"\xff garbage"])
        net.send("h1", "h0", "giop", wire, len(wire), frames=3)
        env.run(until=1.0)
        # The nested multi and the garbage frame are counted bad; the
        # good frame in between still dispatches.
        assert net.metrics.get("orb.bad_messages") == 2
        assert servant.notes == [42]


class TestFanout:
    def test_fanout_reaches_every_target(self):
        env, net, server, client, _servant, _ior = make_rig()
        servants = [SinkServant(), SinkServant()]
        iors = [server.adapter(f"a{k}").activate(s)
                for k, s in enumerate(servants)]
        client.send_oneway_fanout(iors, NOTE, (5,))
        env.run(until=1.0)
        assert [s.notes for s in servants] == [[5], [5]]

    def test_fanout_rejects_twoway(self):
        _env, _net, _server, client, _servant, ior = make_rig()
        with pytest.raises(BAD_PARAM):
            client.send_oneway_fanout([ior], ASK, ("hi",))

    def test_fanout_frames_coalesce_under_pipelining(self):
        # Both targets live on the same host: the per-target frames of
        # one fanout land in the same pipeline channel and ship as a
        # single multi-request transmission.
        env, net, server, client, _servant, _ior = make_rig(
            pipeline_window=0.01)
        servants = [SinkServant(), SinkServant()]
        iors = [server.adapter(f"a{k}").activate(s)
                for k, s in enumerate(servants)]
        before = net.metrics.get("net.messages")
        client.send_oneway_fanout(iors, NOTE, (8,))
        env.run(until=1.0)
        assert [s.notes for s in servants] == [[8], [8]]
        assert net.metrics.get("net.messages") == before + 1
        assert net.metrics.get("orb.pipeline.frames") == 2


class TestCrashSemantics:
    def test_crash_discards_buffered_frames(self):
        env, net, _server, client, servant, ior = make_rig(
            pipeline_window=60.0)
        client.send_oneway(ior, NOTE, (1,))
        client.send_oneway(ior, NOTE, (2,))
        host = net.topology.host("h1")
        host.crash()
        host.restart()
        env.run(until=120.0)
        assert servant.notes == []    # pre-crash frames must not flush
        client.send_oneway(ior, NOTE, (3,))
        client.flush_pipelines()
        env.run(until=130.0)
        assert servant.notes == [3]   # channel still usable after restart

"""Unit tests for the exec-compiled codec tier (repro.orb.codegen).

Property coverage (three-way equivalence with the interpreter and the
compiled plans) lives in ``tests/property/test_trimodal_properties.py``;
this file pins the plumbing: tier selection in ``get_plan``, the
generation caches and stats, struct value polymorphism, union arms,
and the batch-format LRU in ``compiled.make_batcher``.
"""

import pytest

from repro.orb import codegen
from repro.orb.cdr import CDRDecoder, CDREncoder, encode_value_interp
from repro.orb.compiled import compile_plan, get_plan, make_batcher, set_codegen
from repro.orb.exceptions import BAD_PARAM
from repro.orb.typecodes import (
    enum_tc,
    sequence_tc,
    struct_tc,
    tc_any,
    tc_double,
    tc_long,
    tc_objref,
    tc_string,
    union_tc,
)

SUPPORTED_TC = struct_tc("CgSample", [
    ("id", tc_long),
    ("name", tc_string),
    ("path", sequence_tc(struct_tc("CgPoint", [
        ("x", tc_double), ("y", tc_double)]))),
])
SUPPORTED_VALUE = {"id": 41, "name": "n1",
                   "path": [{"x": 1.5, "y": -2.5}]}


@pytest.fixture(autouse=True)
def _fresh_codegen():
    """Each test sees empty codegen caches and zeroed stats."""
    codegen.clear_cache()
    codegen.reset_stats()
    set_codegen(True)
    yield
    set_codegen(True)


# -- tier selection -----------------------------------------------------------

def test_get_plan_selects_codegen_tier_for_supported_typecode():
    plan = get_plan(SUPPORTED_TC)
    assert plan.tier == "codegen"
    assert plan.encode.__codegen_source__
    assert plan.decode.__codegen_source__


@pytest.mark.parametrize("tc", [
    tc_any,
    tc_objref,
    struct_tc("HasAny", [("a", tc_long), ("b", tc_any)]),
    struct_tc("HasRef", [("r", tc_objref)]),
    sequence_tc(tc_any),
], ids=["any", "objref", "struct_any", "struct_objref", "seq_any"])
def test_get_plan_keeps_value_dependent_shapes_on_plan_tier(tc):
    # any/objref wire shape depends on the runtime value, so these stay
    # on the closure-compiled tier — by design, not by accident.
    assert codegen.generate(tc) is None
    assert get_plan(tc).tier == "plan"


def test_compile_plan_stays_pure_plan_tier():
    # compile_plan is the escape hatch for a fresh uncached closure
    # compile; it must never come back codegen-wrapped.
    plan = compile_plan(SUPPORTED_TC)
    assert plan.tier == "plan"
    assert not hasattr(plan.encode, "__codegen_source__")


def test_set_codegen_false_falls_back_to_plan_tier():
    set_codegen(False)
    assert get_plan(SUPPORTED_TC).tier == "plan"
    set_codegen(True)
    assert get_plan(SUPPORTED_TC).tier == "codegen"


# -- caches and stats ---------------------------------------------------------

def test_generate_counts_and_caches():
    assert codegen.cache_size() == 0
    first = codegen.generate(SUPPORTED_TC)
    assert first is not None
    assert codegen.stats["generated"] == 1
    assert codegen.stats["cache_misses"] == 1

    again = codegen.generate(SUPPORTED_TC)
    assert again is first
    assert codegen.stats["cache_hits"] == 1
    assert codegen.stats["generated"] == 1  # compiled once, served twice


def test_unsupported_typecode_caches_its_decline():
    assert codegen.generate(tc_any) is None
    assert codegen.stats["unsupported"] == 1
    # The negative result is cached too: declining again is a hit, not
    # a second supportability walk.
    assert codegen.generate(tc_any) is None
    assert codegen.stats["unsupported"] == 1
    assert codegen.stats["cache_hits"] == 1


def test_stats_snapshot_reports_runtime_call_counts():
    enc_fn, dec_fn = codegen.generate(SUPPORTED_TC)
    enc = CDREncoder()
    enc_fn(enc, SUPPORTED_VALUE)
    dec_fn(CDRDecoder(enc.getvalue()))
    snap = codegen.stats_snapshot()
    assert snap["encode_calls"] >= 1
    assert snap["decode_calls"] >= 1
    assert snap["generated"] == 1


# -- value handling -----------------------------------------------------------

class _PointObj:
    def __init__(self, x, y):
        self.x = x
        self.y = y


class _SampleObj:
    def __init__(self):
        self.id = 41
        self.name = "n1"
        self.path = [_PointObj(1.5, -2.5)]


def test_struct_encode_accepts_attribute_objects():
    # Servant results are often plain objects, not dicts; the generated
    # encoder must read members either way and emit identical bytes.
    enc_fn, dec_fn = codegen.generate(SUPPORTED_TC)
    by_dict, by_attr = CDREncoder(), CDREncoder()
    enc_fn(by_dict, SUPPORTED_VALUE)
    enc_fn(by_attr, _SampleObj())
    assert by_dict.getvalue() == by_attr.getvalue()
    assert dec_fn(CDRDecoder(by_attr.getvalue())) == SUPPORTED_VALUE


UNION_TC = union_tc("CgEither", tc_long, [
    (1, "num", tc_long),
    (2, "text", tc_string),
    (None, "other", enum_tc("CgColor", ["red", "green", "blue"])),
], default_index=2)

UNION_NO_DEFAULT_TC = union_tc("CgStrict", tc_long, [
    (1, "num", tc_long),
    (2, "text", tc_string),
])


@pytest.mark.parametrize("value", [(1, -7), (2, "hi"), (99, "green")],
                         ids=["arm1", "arm2", "default_arm"])
def test_union_roundtrip_matches_interpreter(value):
    enc_fn, dec_fn = codegen.generate(UNION_TC)
    ref = CDREncoder()
    encode_value_interp(ref, UNION_TC, value)
    enc = CDREncoder()
    enc_fn(enc, value)
    assert enc.getvalue() == ref.getvalue()
    assert dec_fn(CDRDecoder(enc.getvalue())) == value


def test_union_without_default_rejects_unknown_discriminator():
    enc_fn, _dec_fn = codegen.generate(UNION_NO_DEFAULT_TC)
    with pytest.raises(BAD_PARAM):
        enc_fn(CDREncoder(), (42, "nope"))


def test_union_value_must_be_pair():
    enc_fn, _dec_fn = codegen.generate(UNION_TC)
    with pytest.raises(BAD_PARAM):
        enc_fn(CDREncoder(), "not-a-pair")


# -- batch-format LRU ---------------------------------------------------------

def test_make_batcher_lru_keeps_hot_entry_and_bounds_cache():
    # One fixed leaf: a long (4 bytes, 4-aligned).
    batch = make_batcher([("i", 4, 4)])
    hot = batch(0, 1)
    from repro.orb.compiled import _BATCH_CACHE_MAX

    # Insert far more shapes than the cache holds, touching the hot
    # entry periodically; the LRU must keep it while evicting the rest.
    for n in range(2, 3 * _BATCH_CACHE_MAX):
        batch(0, n)
        if n % 16 == 0:
            assert batch(0, 1) is hot
    assert len(batch.cache) <= _BATCH_CACHE_MAX
    assert batch(0, 1) is hot
    # Cold early shapes were evicted (they would only be present if the
    # cache grew without bound).
    assert (0, 2) not in batch.cache


# -- operation-codec memo invalidation ----------------------------------------

def test_set_codegen_false_invalidates_memoized_op_codecs():
    # Regression: the per-OperationDef codec memo survived tier
    # switches, so an ablation run flipping set_codegen(False) kept
    # executing stale codegen-tier codecs on every operation memoized
    # before the switch.
    from repro.orb.compiled import op_codec
    from repro.orb.core import InterfaceDef, op

    iface = InterfaceDef("IDL:test/Memo:1.0", "Memo", operations=[
        op("put", [("v", SUPPORTED_TC)], tc_long),
    ])
    odef = iface.operations["put"]
    hot = op_codec(odef)
    assert hot.in_plans[0].tier == "codegen"
    assert op_codec(odef) is hot           # memoized on the odef

    set_codegen(False)
    cold = op_codec(odef)
    assert cold is not hot                 # memo was dropped
    assert cold.in_plans[0].tier != "codegen"

    set_codegen(True)
    assert op_codec(odef).in_plans[0].tier == "codegen"

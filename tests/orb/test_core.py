"""Integration-flavoured unit tests for the ORB runtime."""

import pytest

from repro.orb.core import (
    InterfaceDef,
    ORB,
    OperationDef,
    ParamDef,
    Servant,
    make_exception_class,
    op,
)
from repro.orb.exceptions import (
    BAD_OPERATION,
    BAD_PARAM,
    COMM_FAILURE,
    OBJECT_NOT_EXIST,
    TIMEOUT,
    UNKNOWN,
    SystemException,
)
from repro.orb.typecodes import (
    except_tc,
    sequence_tc,
    tc_double,
    tc_long,
    tc_string,
    tc_void,
)
from repro.sim.kernel import Environment
from repro.sim.network import Network
from repro.sim.topology import PDA, SERVER, star
from repro.util.errors import ConfigurationError

NEG_TC = except_tc("Negative", [("value", tc_long)],
                   repo_id="IDL:test/Negative:1.0")
Negative = make_exception_class("Negative", NEG_TC)

ECHO = InterfaceDef("IDL:test/Echo:1.0", "Echo", operations=[
    op("echo", [("s", tc_string)], tc_string),
    op("sqrt", [("x", tc_double)], tc_double, raises=[NEG_TC]),
    op("split", [("s", tc_string), ("head", tc_string, "out"),
                 ("tail", tc_string, "out")]),
    op("scale", [("x", tc_double, "inout"), ("factor", tc_double)],
       tc_double),
    op("fire", [("tag", tc_string)], oneway=True),
    op("slow", [], tc_long, cpu_cost=100.0),
])


class EchoServant(Servant):
    _interface = ECHO

    def __init__(self):
        self.fired = []

    def echo(self, s):
        return s

    def sqrt(self, x):
        if x < 0:
            raise Negative(int(x))
        return x ** 0.5

    def split(self, s):
        return (s[:1], s[1:])

    def scale(self, x, factor):
        return (x * factor, x * factor)

    def fire(self, tag):
        self.fired.append(tag)

    def slow(self):
        return 1


@pytest.fixture
def rig():
    env = Environment()
    net = Network(env, star(3, hub_profile=SERVER))
    server = ORB(env, net, "hub")
    client = ORB(env, net, "h0")
    servant = EchoServant()
    ior = server.adapter("root").activate(servant)
    stub = client.stub(ior, ECHO)
    return env, net, server, client, servant, ior, stub


class TestInvocation:
    def test_roundtrip_result(self, rig):
        env, net, server, client, servant, ior, stub = rig
        assert client.sync(stub.echo("hi")) == "hi"

    def test_call_helper(self, rig):
        env, net, server, client, servant, ior, stub = rig
        assert client.call(ior, ECHO.operations["echo"], ("x",)) == "x"

    def test_user_exception_reconstructed(self, rig):
        env, net, server, client, servant, ior, stub = rig
        with pytest.raises(Negative) as exc_info:
            client.sync(stub.sqrt(-4.0))
        assert exc_info.value.value == -4

    def test_out_params_returned_as_tuple(self, rig):
        env, net, server, client, servant, ior, stub = rig
        assert client.sync(stub.split("abc")) == ("a", "bc")

    def test_inout_with_result(self, rig):
        env, net, server, client, servant, ior, stub = rig
        # result + inout value
        assert client.sync(stub.scale(2.0, 3.0)) == (6.0, 6.0)

    def test_oneway_returns_immediately(self, rig):
        env, net, server, client, servant, ior, stub = rig
        ev = stub.fire("t1")
        assert ev.triggered  # already succeeded, before any sim time
        env.run()
        assert servant.fired == ["t1"]

    def test_send_oneway_is_fire_and_forget(self, rig):
        env, net, server, client, servant, ior, stub = rig
        wire_len = client.send_oneway(ior, ECHO.operations["fire"],
                                      ("t1",))
        assert wire_len > 0
        assert client._pending == {}  # no reply expected, ever
        env.run()
        assert servant.fired == ["t1"]
        assert client._pending == {}
        assert client.metrics.get("orb.oneways") == 1

    def test_send_oneway_rejects_twoway_operations(self, rig):
        env, net, server, client, servant, ior, stub = rig
        with pytest.raises(BAD_PARAM):
            client.send_oneway(ior, ECHO.operations["echo"], ("x",))

    def test_untimed_invoke_reaped_by_reply_deadline(self, rig):
        env, net, server, client, servant, ior, stub = rig
        client.reply_deadline = 4.0
        net.topology.set_host_state("hub", alive=False)

        def proc():
            with pytest.raises(TIMEOUT):
                yield client.invoke(ior, ECHO.operations["echo"], ("x",))

        env.run(until=env.process(proc()))
        assert env.now == pytest.approx(4.0)
        assert client._pending == {}

    def test_wrong_arg_count_rejected_client_side(self, rig):
        env, net, server, client, servant, ior, stub = rig
        with pytest.raises(BAD_PARAM):
            stub.echo("a", "b")

    def test_unknown_operation_attribute_error(self, rig):
        env, net, server, client, servant, ior, stub = rig
        with pytest.raises(AttributeError):
            stub.frobnicate()

    def test_servant_bug_maps_to_unknown(self, rig):
        env, net, server, client, servant, ior, stub = rig
        servant.echo = lambda s: 1 / 0
        with pytest.raises(UNKNOWN):
            client.sync(stub.echo("x"))

    def test_invocation_takes_simulated_time(self, rig):
        env, net, server, client, servant, ior, stub = rig
        client.sync(stub.echo("hi"))
        assert env.now > 0.0

    def test_cpu_cost_scales_with_host_power(self):
        def latency(profile):
            env = Environment()
            net = Network(env, star(1, hub_profile=profile))
            server = ORB(env, net, "hub")
            client = ORB(env, net, "h0")
            ior = server.adapter("root").activate(EchoServant())
            client.sync(client.stub(ior, ECHO).slow())
            return env.now
        assert latency(PDA) > latency(SERVER) * 5

    def test_nested_invocation_from_servant(self, rig):
        env, net, server, client, servant, ior, stub = rig

        RELAY = InterfaceDef("IDL:test/Relay:1.0", "Relay", operations=[
            op("relay", [("s", tc_string)], tc_string),
        ])

        class RelayServant(Servant):
            _interface = RELAY

            def __init__(self, orb, target_ior):
                self.orb = orb
                self.target = target_ior

            def relay(self, s):
                # generator method: performs a nested remote call
                result = yield self.orb.invoke(
                    self.target, ECHO.operations["echo"], (s + "!",)
                )
                return result

        relay_orb = ORB(env, net, "h1")
        relay_ior = relay_orb.adapter("root").activate(
            RelayServant(relay_orb, ior)
        )
        got = client.sync(client.stub(relay_ior, RELAY).relay("ping"))
        assert got == "ping!"


class TestTimeoutsAndFailures:
    def test_timeout_on_dead_server(self, rig):
        env, net, server, client, servant, ior, stub = rig
        net.topology.set_host_state("hub", alive=False)
        with pytest.raises(TIMEOUT):
            client.sync(stub.echo("x", _timeout=0.5))

    def test_late_reply_counted_not_crashing(self, rig):
        env, net, server, client, servant, ior, stub = rig
        # Timeout shorter than server dispatch cost: reply arrives late.
        slow_stub = client.stub(ior, ECHO)
        with pytest.raises(TIMEOUT):
            client.sync(slow_stub.slow(_timeout=0.0001))
        env.run()
        assert net.metrics.get("orb.late_replies") == 1.0

    def test_client_crash_fails_pending(self, rig):
        env, net, server, client, servant, ior, stub = rig
        ev = stub.echo("x")
        net.topology.set_host_state("h0", alive=False)
        env.run()
        assert ev.triggered and not ev.ok
        assert isinstance(ev.value, COMM_FAILURE)

    def test_no_adapter_object_not_exist(self, rig):
        env, net, server, client, servant, ior, stub = rig
        from repro.orb.ior import IOR
        bad = IOR(ior.repo_id, "hub", "nonexistent", "obj-0")
        with pytest.raises(OBJECT_NOT_EXIST):
            client.sync(client.stub(bad, ECHO).echo("x"))

    def test_bad_operation_rejected_server_side(self, rig):
        env, net, server, client, servant, ior, stub = rig
        fake_op = op("frobnicate", [], tc_long)
        with pytest.raises(BAD_OPERATION):
            client.call(ior, fake_op, ())

    def test_default_timeout_applies(self):
        env = Environment()
        net = Network(env, star(2))
        client = ORB(env, net, "h0", default_timeout=0.25)
        from repro.orb.ior import IOR
        ghost = IOR("IDL:test/Echo:1.0", "h1", "root", "obj-9")
        with pytest.raises(TIMEOUT):
            client.sync(client.stub(ghost, ECHO).echo("x"))
        assert env.now == pytest.approx(0.25)


class TestDefinitions:
    def test_oneway_constraints_enforced(self):
        with pytest.raises(ConfigurationError):
            op("bad", [], tc_long, oneway=True)
        with pytest.raises(ConfigurationError):
            op("bad", [("x", tc_long, "out")], oneway=True)

    def test_param_mode_validated(self):
        with pytest.raises(ConfigurationError):
            ParamDef("p", tc_long, "sideways")

    def test_interface_inheritance_lookup(self):
        base = InterfaceDef("IDL:t/A:1.0", "A", operations=[op("a")])
        derived = InterfaceDef("IDL:t/B:1.0", "B",
                               operations=[op("b")], bases=[base])
        assert derived.find_operation("a") is base.operations["a"]
        assert derived.is_a("IDL:t/A:1.0")
        assert not base.is_a("IDL:t/B:1.0")
        assert set(derived.all_operations()) == {"a", "b"}

    def test_duplicate_operation_rejected(self):
        iface = InterfaceDef("IDL:t/C:1.0", "C", operations=[op("x")])
        with pytest.raises(ConfigurationError):
            iface.add_operation(op("x"))

    def test_attributes_become_get_set(self):
        iface = InterfaceDef("IDL:t/D:1.0", "D")
        iface.add_attribute("rw", tc_long)
        iface.add_attribute("ro", tc_string, readonly=True)
        assert "_get_rw" in iface.operations
        assert "_set_rw" in iface.operations
        assert "_get_ro" in iface.operations
        assert "_set_ro" not in iface.operations

    def test_servant_without_interface_rejected(self):
        class Bare(Servant):
            pass
        with pytest.raises(ConfigurationError):
            Bare().interface()

"""Unit tests for object adapters, IORs and GIOP framing."""

import pytest

from repro.orb import giop
from repro.orb.core import InterfaceDef, ORB, Servant, op
from repro.orb.exceptions import BAD_PARAM, OBJECT_NOT_EXIST
from repro.orb.ior import IOR
from repro.orb.typecodes import tc_long, tc_string
from repro.sim.kernel import Environment
from repro.sim.network import Network
from repro.sim.topology import star
from repro.util.errors import ConfigurationError

PING = InterfaceDef("IDL:test/Ping:1.0", "Ping", operations=[
    op("ping", [], tc_long),
])


class PingServant(Servant):
    _interface = PING

    def ping(self):
        return 1


@pytest.fixture
def orb():
    env = Environment()
    net = Network(env, star(1))
    return ORB(env, net, "hub")


class TestIOR:
    def test_roundtrip(self):
        ior = IOR("IDL:a/B:1.0", "host1", "root", "obj-3")
        assert IOR.from_string(ior.to_string()) == ior

    def test_parse_rejects_garbage(self):
        with pytest.raises(ValueError):
            IOR.from_string("not an ior")
        with pytest.raises(ValueError):
            IOR.from_string("IOR:missing-parts")

    def test_reserved_characters_rejected(self):
        with pytest.raises(ValueError):
            IOR("IDL:a/B:1.0", "host/1", "root", "k")
        with pytest.raises(ValueError):
            IOR("IDL:a@B", "h", "root", "k")

    def test_empty_parts_rejected(self):
        with pytest.raises(ValueError):
            IOR("", "h", "a", "k")
        with pytest.raises(ValueError):
            IOR("IDL:a/B:1.0", "h", "", "k")

    def test_hashable_value_object(self):
        a = IOR("IDL:a/B:1.0", "h", "r", "k")
        b = IOR("IDL:a/B:1.0", "h", "r", "k")
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1


class TestPOA:
    def test_activate_produces_valid_ior(self, orb):
        poa = orb.adapter("root")
        ior = poa.activate(PingServant())
        assert ior.host_id == "hub"
        assert ior.adapter == "root"
        assert ior.repo_id == PING.repo_id
        assert poa.is_active(ior.object_key)

    def test_explicit_key(self, orb):
        poa = orb.adapter("root")
        ior = poa.activate(PingServant(), key="well-known")
        assert ior.object_key == "well-known"

    def test_duplicate_key_rejected(self, orb):
        poa = orb.adapter("root")
        poa.activate(PingServant(), key="k")
        with pytest.raises(ConfigurationError):
            poa.activate(PingServant(), key="k")

    def test_deactivate_removes(self, orb):
        poa = orb.adapter("root")
        servant = PingServant()
        ior = poa.activate(servant)
        assert poa.deactivate(ior.object_key) is servant
        with pytest.raises(OBJECT_NOT_EXIST):
            poa.servant_for(ior.object_key)
        with pytest.raises(OBJECT_NOT_EXIST):
            poa.deactivate(ior.object_key)

    def test_servant_activator_lazy_incarnation(self, orb):
        poa = orb.adapter("root")
        incarnated = []

        def activator(key):
            if key.startswith("lazy"):
                incarnated.append(key)
                return PingServant()
            return None

        poa.servant_activator = activator
        servant = poa.servant_for("lazy-1")
        assert incarnated == ["lazy-1"]
        # second lookup reuses the incarnated servant
        assert poa.servant_for("lazy-1") is servant
        with pytest.raises(OBJECT_NOT_EXIST):
            poa.servant_for("other")

    def test_ior_for_active_object(self, orb):
        poa = orb.adapter("root")
        ior = poa.activate(PingServant(), key="x")
        assert poa.ior_for("x") == ior
        with pytest.raises(OBJECT_NOT_EXIST):
            poa.ior_for("ghost")

    def test_adapters_are_cached_by_name(self, orb):
        assert orb.adapter("a") is orb.adapter("a")
        assert orb.adapter("a") is not orb.adapter("b")

    def test_serve_returns_working_stub(self, orb):
        stub = orb.adapter("root").serve(PingServant())
        assert orb.sync(stub.ping()) == 1


class TestGIOP:
    def test_request_roundtrip(self):
        req = giop.RequestMessage(7, True, "h", "root", "obj-1", "ping",
                                  b"\x01\x02")
        got = giop.decode_message(req.encode())
        assert got == req

    def test_request_roundtrip_with_service_context(self):
        req = giop.RequestMessage(
            9, True, "h", "root", "obj-1", "ping", b"\x01\x02",
            service_context=(("trace-id", "t000001"),
                             ("span-id", "s000042")))
        got = giop.decode_message(req.encode())
        assert got == req
        assert dict(got.service_context)["trace-id"] == "t000001"

    def test_service_context_defaults_empty(self):
        req = giop.RequestMessage(7, True, "h", "root", "obj-1", "ping",
                                  b"")
        assert req.service_context == ()
        assert giop.decode_message(req.encode()).service_context == ()

    def test_reply_roundtrip(self):
        rep = giop.ReplyMessage(7, giop.USER_EXCEPTION, b"payload")
        got = giop.decode_message(rep.encode())
        assert got == rep

    def test_invalid_status_rejected(self):
        with pytest.raises(BAD_PARAM):
            giop.ReplyMessage(1, 99, b"")

    def test_unknown_message_type_rejected(self):
        with pytest.raises(BAD_PARAM):
            giop.decode_message(b"\xff\x00\x00\x00")

    def test_wire_size_reflects_payload(self):
        small = giop.RequestMessage(1, True, "h", "a", "k", "op", b"").encode()
        big = giop.RequestMessage(1, True, "h", "a", "k", "op",
                                  b"x" * 1000).encode()
        assert len(big) - len(small) >= 1000

"""Unit tests for CDR marshalling."""

import pytest

from repro.orb.cdr import (
    Any,
    CDRDecoder,
    CDREncoder,
    decode_one,
    decode_typecode,
    encode_one,
    encode_typecode,
)
from repro.orb.exceptions import BAD_PARAM
from repro.orb.ior import IOR
from repro.orb.typecodes import (
    alias_tc,
    array_tc,
    enum_tc,
    except_tc,
    objref_tc,
    sequence_tc,
    struct_tc,
    tc_any,
    tc_boolean,
    tc_char,
    tc_double,
    tc_float,
    tc_long,
    tc_longlong,
    tc_objref,
    tc_octet,
    tc_octetseq,
    tc_short,
    tc_string,
    tc_ulong,
    tc_ulonglong,
    tc_ushort,
    tc_void,
    union_tc,
)


def roundtrip(tc, value):
    data = encode_one(tc, value)
    return decode_one(tc, data), data


class TestPrimitives:
    @pytest.mark.parametrize("tc,value", [
        (tc_short, -1234),
        (tc_ushort, 65535),
        (tc_long, -(2**31)),
        (tc_ulong, 2**32 - 1),
        (tc_longlong, -(2**63)),
        (tc_ulonglong, 2**64 - 1),
        (tc_boolean, True),
        (tc_boolean, False),
        (tc_octet, 255),
        (tc_char, "Z"),
        (tc_double, 3.141592653589793),
        (tc_string, "hello, world"),
        (tc_string, ""),
        (tc_string, "unicode: ñ€漢"),
        (tc_octetseq, b"\x00\x01\xff"),
        (tc_void, None),
    ])
    def test_roundtrip(self, tc, value):
        got, _ = roundtrip(tc, value)
        assert got == value

    def test_float_roundtrips_at_single_precision(self):
        got, _ = roundtrip(tc_float, 1.5)
        assert got == 1.5

    def test_out_of_range_rejected(self):
        with pytest.raises(BAD_PARAM):
            encode_one(tc_short, 2**20)
        with pytest.raises(BAD_PARAM):
            encode_one(tc_octet, -1)

    def test_char_must_be_single(self):
        with pytest.raises(BAD_PARAM):
            encode_one(tc_char, "ab")

    def test_string_type_checked(self):
        with pytest.raises(BAD_PARAM):
            encode_one(tc_string, 42)

    def test_void_rejects_value(self):
        with pytest.raises(BAD_PARAM):
            encode_one(tc_void, 1)


class TestAlignment:
    def test_double_aligned_to_8(self):
        enc = CDREncoder()
        enc.write_octet(1)
        enc.write_double(2.0)
        data = enc.getvalue()
        assert len(data) == 16  # 1 + 7 pad + 8
        dec = CDRDecoder(data)
        assert dec.read_octet() == 1
        assert dec.read_double() == 2.0

    def test_ulong_aligned_to_4(self):
        enc = CDREncoder()
        enc.write_octet(1)
        enc.write_ulong(7)
        assert len(enc.getvalue()) == 8

    def test_no_padding_when_aligned(self):
        enc = CDREncoder()
        enc.write_ulong(1)
        enc.write_ulong(2)
        assert len(enc.getvalue()) == 8

    def test_string_length_prefixed_and_nul_terminated(self):
        data = encode_one(tc_string, "ab")
        # ulong length 3, 'a','b','\0'
        assert data == b"\x00\x00\x00\x03ab\x00"


class TestConstructed:
    POINT = struct_tc("Point", [("x", tc_double), ("y", tc_double)])

    def test_struct_roundtrip(self):
        got, _ = roundtrip(self.POINT, {"x": 1.0, "y": -2.0})
        assert got == {"x": 1.0, "y": -2.0}

    def test_struct_accepts_attribute_objects(self):
        class P:
            x = 3.0
            y = 4.0
        got, _ = roundtrip(self.POINT, P())
        assert got == {"x": 3.0, "y": 4.0}

    def test_struct_missing_member_rejected(self):
        with pytest.raises(BAD_PARAM):
            encode_one(self.POINT, {"x": 1.0})

    def test_struct_extra_member_rejected(self):
        with pytest.raises(BAD_PARAM):
            encode_one(self.POINT, {"x": 1.0, "y": 2.0, "z": 3.0})

    def test_nested_struct(self):
        seg = struct_tc("Seg", [("a", self.POINT), ("b", self.POINT)])
        value = {"a": {"x": 0.0, "y": 0.0}, "b": {"x": 1.0, "y": 1.0}}
        got, _ = roundtrip(seg, value)
        assert got == value

    def test_sequence_roundtrip(self):
        tc = sequence_tc(tc_long)
        got, _ = roundtrip(tc, [1, 2, 3])
        assert got == [1, 2, 3]
        got, _ = roundtrip(tc, [])
        assert got == []

    def test_bounded_sequence_enforced(self):
        tc = sequence_tc(tc_long, bound=2)
        roundtrip(tc, [1, 2])
        with pytest.raises(BAD_PARAM):
            encode_one(tc, [1, 2, 3])

    def test_octet_sequence_fast_path(self):
        tc = sequence_tc(tc_octet)
        assert tc is tc_octetseq
        got, _ = roundtrip(tc, b"abc")
        assert got == b"abc"

    def test_array_exact_length(self):
        tc = array_tc(tc_long, 3)
        got, _ = roundtrip(tc, [7, 8, 9])
        assert got == [7, 8, 9]
        with pytest.raises(BAD_PARAM):
            encode_one(tc, [7, 8])

    def test_enum_roundtrip_by_label_and_index(self):
        tc = enum_tc("Color", ["red", "green", "blue"])
        got, data = roundtrip(tc, "green")
        assert got == "green"
        assert data == b"\x00\x00\x00\x01"
        got2, _ = roundtrip(tc, 2)
        assert got2 == "blue"

    def test_enum_bad_label_rejected(self):
        tc = enum_tc("Color", ["red"])
        with pytest.raises(BAD_PARAM):
            encode_one(tc, "mauve")
        with pytest.raises(BAD_PARAM):
            encode_one(tc, 5)

    def test_alias_transparent(self):
        tc = alias_tc("Name", tc_string)
        got, data = roundtrip(tc, "x")
        assert got == "x"
        assert data == encode_one(tc_string, "x")

    def test_union_arms(self):
        tc = union_tc("U", tc_long, [
            (1, "i", tc_long),
            (2, "s", tc_string),
            (None, "d", tc_double),
        ], default_index=2)
        assert roundtrip(tc, (1, 42))[0] == (1, 42)
        assert roundtrip(tc, (2, "hey"))[0] == (2, "hey")
        assert roundtrip(tc, (99, 2.5))[0] == (99, 2.5)  # default arm

    def test_union_without_default_rejects_unknown(self):
        tc = union_tc("U", tc_long, [(1, "i", tc_long)])
        with pytest.raises(BAD_PARAM):
            encode_one(tc, (9, 1))

    def test_exception_shape(self):
        tc = except_tc("Oops", [("code", tc_long)])
        got, _ = roundtrip(tc, {"code": 7})
        assert got == {"code": 7}


class TestAnyAndObjref:
    def test_any_roundtrip(self):
        inner = struct_tc("P", [("x", tc_long)])
        value = Any(inner, {"x": 9})
        got, _ = roundtrip(tc_any, value)
        assert got == value

    def test_any_requires_any_instance(self):
        with pytest.raises(BAD_PARAM):
            encode_one(tc_any, 42)

    def test_objref_roundtrip(self):
        ior = IOR("IDL:x/Y:1.0", "hostA", "root", "obj-1")
        got, _ = roundtrip(tc_objref, ior)
        assert got == ior

    def test_nil_objref(self):
        got, _ = roundtrip(tc_objref, None)
        assert got is None

    def test_typed_objref(self):
        tc = objref_tc("IDL:x/Y:1.0", "Y")
        ior = IOR("IDL:x/Y:1.0", "h", "a", "k")
        got, _ = roundtrip(tc, ior)
        assert got == ior


class TestTypeCodeMarshalling:
    @pytest.mark.parametrize("tc", [
        tc_long, tc_string, tc_double, tc_any, tc_octetseq,
        struct_tc("P", [("x", tc_double), ("tags", sequence_tc(tc_string))]),
        enum_tc("E", ["a", "b"]),
        sequence_tc(struct_tc("Q", [("n", tc_long)])),
        array_tc(tc_long, 4),
        alias_tc("A", sequence_tc(tc_long)),
        objref_tc("IDL:x/Y:1.0", "Y"),
        except_tc("X", [("m", tc_string)]),
        union_tc("U", tc_long,
                 [(1, "i", tc_long), (None, "s", tc_string)],
                 default_index=1),
    ])
    def test_typecode_roundtrip(self, tc):
        enc = CDREncoder()
        encode_typecode(enc, tc)
        dec = CDRDecoder(enc.getvalue())
        got = decode_typecode(dec)
        assert got == tc
        assert dec.at_end()


class TestDecoderRobustness:
    def test_underflow_detected(self):
        with pytest.raises(BAD_PARAM, match="underflow"):
            decode_one(tc_long, b"\x00\x00")

    def test_string_underflow(self):
        with pytest.raises(BAD_PARAM):
            decode_one(tc_string, b"\x00\x00\x00\xff")

    def test_string_missing_nul(self):
        with pytest.raises(BAD_PARAM):
            decode_one(tc_string, b"\x00\x00\x00\x02ab")

    def test_enum_index_out_of_range(self):
        tc = enum_tc("E", ["only"])
        with pytest.raises(BAD_PARAM):
            decode_one(tc, b"\x00\x00\x00\x05")

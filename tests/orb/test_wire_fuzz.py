"""Seeded wire-fuzz of the GIOP/CDR decoder (``fuzz`` marker).

Contract under test: for any byte string, ``giop.decode_message``
either returns a message whose decoded sizes are bounded by the frame
length, or raises a ``SystemException`` — never a raw Python exception.
Run standalone with ``make fuzz``.
"""

import pytest

from repro.orb import giop
from repro.orb.exceptions import SystemException
from repro.orb.fuzz import (FuzzReport, check_bounded, check_value_bounded,
                            codec_corpus, corpus, mutate, run_codec_fuzz,
                            run_fuzz)

pytestmark = pytest.mark.fuzz

SEEDS = [0, 1, 2, 3, 4]


def test_corpus_is_valid():
    for frame in corpus():
        message = giop.decode_message(frame)
        check_bounded(message, frame)


@pytest.mark.parametrize("seed", SEEDS)
def test_fuzz_no_escapes(seed):
    report = run_fuzz(seed, iterations=2000)
    detail = "\n".join(
        f"  iter {i}: {exc!r} on {len(m)}-byte mutant {m[:48].hex()}..."
        for i, m, exc in report.failures[:10])
    assert report.ok, (
        f"seed {seed}: {len(report.failures)} contract breaches\n{detail}")
    assert report.iterations == 2000
    assert report.decoded + report.rejected == report.iterations
    # The corpus must exercise both outcomes, or the fuzz proves nothing.
    assert report.rejected > 0
    assert report.decoded > 0


def test_codec_corpus_is_valid():
    # Every corpus frame decodes cleanly through the generated decoder
    # and the decoded value passes its own bound check.
    from repro.orb.cdr import CDRDecoder

    for dec_fn, frame in codec_corpus():
        value = dec_fn(CDRDecoder(frame))
        check_value_bounded(value, frame)


@pytest.mark.parametrize("seed", SEEDS)
def test_codec_fuzz_no_escapes(seed):
    report = run_codec_fuzz(seed, iterations=2000)
    detail = "\n".join(
        f"  iter {i}: {exc!r} on {len(m)}-byte mutant {m[:48].hex()}..."
        for i, m, exc in report.failures[:10])
    assert report.ok, (
        f"seed {seed}: {len(report.failures)} contract breaches\n{detail}")
    assert report.iterations == 2000
    assert report.decoded + report.rejected == report.iterations
    # Mutants must exercise both outcomes for the run to mean anything.
    assert report.rejected > 0
    assert report.decoded > 0


def test_check_value_bounded_catches_overallocation():
    with pytest.raises(AssertionError):
        check_value_bounded(["x" * 64] * 8, b"\x00" * 8)


def test_mutate_is_deterministic():
    import numpy as np
    frame = corpus()[0]
    runs = []
    for _ in range(2):
        rng = np.random.default_rng(99)
        runs.append([mutate(frame, rng) for _ in range(50)])
    assert runs[0] == runs[1]


def test_report_ok_property():
    report = FuzzReport(seed=0)
    assert report.ok
    report.failures.append((0, b"", RuntimeError("x")))
    assert not report.ok


def test_check_bounded_catches_overallocation():
    # A reply claiming a body larger than its own frame must trip.
    msg = giop.ReplyMessage(request_id=1, status=giop.NO_EXCEPTION,
                            body=b"\x00" * 64)
    with pytest.raises(AssertionError):
        check_bounded(msg, b"\x00" * 8)

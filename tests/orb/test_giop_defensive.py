"""Defensive-decode regressions: a corrupted wire must never crash.

Two of these are pre-PR-failing regressions: invalid UTF-8 used to
escape ``decode_message`` as a raw ``UnicodeDecodeError`` and crash the
node's message handler, and a corrupted service-context count used to
be iterated without any bound.
"""

import struct

import pytest

from repro.orb import giop
from repro.orb.cdr import CDRDecoder, decode_one, decode_typecode
from repro.orb.core import InterfaceDef, ORB, Servant, op
from repro.orb.exceptions import MARSHAL, SystemException
from repro.orb.typecodes import sequence_tc, tc_long, tc_string
from repro.sim.kernel import Environment
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.topology import star


def valid_request(service_context=(("trace-id", "t1"),)) -> bytes:
    return giop.RequestMessage(
        request_id=1, response_expected=True, host="h0",
        adapter="root", object_key="k", operation="ping",
        args=b"\x00\x00\x00\x01", service_context=service_context,
    ).encode()


class TestDecodeMessageDefense:
    def test_invalid_utf8_raises_marshal_not_unicode_error(self):
        # Regression: the operation string carries invalid UTF-8.
        wire = bytearray(valid_request())
        pos = wire.find(b"ping")
        wire[pos:pos + 4] = b"\xff\xfe\xfd\xfc"
        with pytest.raises(MARSHAL):
            giop.decode_message(bytes(wire))

    def test_oversized_service_context_count(self):
        # Regression: stomp the slot count with 0xFFFFFFFF; the decoder
        # must reject it up front instead of looping billions of times.
        wire = bytearray(valid_request(service_context=()))
        # The count is the last ulong of the frame.
        assert wire[-4:] == b"\x00\x00\x00\x00"
        wire[-4:] = b"\xff\xff\xff\xff"
        with pytest.raises(MARSHAL, match="service context"):
            giop.decode_message(bytes(wire))

    def test_slot_count_cap(self):
        many = tuple((f"k{i}", "v") for i in range(
            giop.MAX_SERVICE_CONTEXT_SLOTS + 1))
        wire = valid_request(service_context=many)
        with pytest.raises(MARSHAL, match="cap"):
            giop.decode_message(wire)
        at_cap = tuple((f"k{i}", "v") for i in range(
            giop.MAX_SERVICE_CONTEXT_SLOTS))
        decoded = giop.decode_message(valid_request(service_context=at_cap))
        assert len(decoded.service_context) == giop.MAX_SERVICE_CONTEXT_SLOTS

    def test_empty_and_tiny_frames(self):
        for wire in (b"", b"\x00", b"\x01\x02", b"\xff" * 3):
            with pytest.raises(SystemException):
                giop.decode_message(wire)

    def test_every_truncation_point_is_clean(self):
        wire = valid_request()
        for cut in range(len(wire)):
            try:
                giop.decode_message(wire[:cut])
            except SystemException:
                pass  # the only acceptable failure mode

    def test_struct_error_converted(self, monkeypatch):
        # Any struct.error born inside decoding surfaces as MARSHAL.
        monkeypatch.setattr(
            giop, "_decode_message_body",
            lambda dec: (_ for _ in ()).throw(struct.error("boom")))
        with pytest.raises(MARSHAL):
            giop.decode_message(b"\x00\x00\x00\x00")


class TestCdrCountDefense:
    def test_interp_sequence_count_bounded(self):
        # count says 2^32-1 elements but only 4 bytes follow
        data = b"\xff\xff\xff\xff" + b"\x00\x00\x00\x01"
        with pytest.raises(SystemException):
            decode_one(sequence_tc(tc_long), data)

    def test_typecode_member_count_bounded(self):
        # STRUCT typecode whose member count is garbage
        from repro.orb.cdr import CDREncoder, encode_typecode
        from repro.orb.typecodes import struct_tc
        enc = CDREncoder()
        encode_typecode(enc, struct_tc("S", [("a", tc_long)],
                                       repo_id="IDL:S:1.0"))
        wire = bytearray(enc.getvalue())
        # member count lives right after the two strings in the body;
        # stomp every aligned ulong and require a clean failure mode
        for pos in range(0, len(wire) - 4, 4):
            stomped = bytearray(wire)
            stomped[pos:pos + 4] = b"\xff\xff\xff\xff"
            try:
                decode_typecode(CDRDecoder(bytes(stomped)))
            except SystemException:
                pass


IFACE = InterfaceDef("IDL:test/Echo:1.0", "Echo", operations=[
    op("echo", [("s", tc_string)], tc_string),
])


class EchoServant(Servant):
    _interface = IFACE

    def echo(self, s):
        return s


def make_rig():
    env = Environment()
    net = Network(env, star(2), rngs=RngRegistry(7))
    server = ORB(env, net, "h0")
    client = ORB(env, net, "h1")
    ior = server.adapter("root").activate(EchoServant())
    return env, net, server, client, ior


class TestMessageHandlerSurvival:
    """Regression: ORB._on_message used to catch only SystemException."""

    def test_corrupt_payload_counted_and_dropped(self):
        env, net, server, client, ior = make_rig()
        wire = bytearray(valid_request())
        pos = wire.find(b"ping")
        wire[pos:pos + 4] = b"\xff\xfe\xfd\xfc"  # invalid UTF-8
        net.send("h1", "h0", "giop", bytes(wire), len(wire))
        env.run(until=env.timeout(1.0))  # must not crash the handler
        assert net.metrics.get("orb.bad_messages") == 1

    def test_non_system_exception_from_decode_is_contained(self, monkeypatch):
        env, net, server, client, ior = make_rig()
        monkeypatch.setattr(
            "repro.orb.core.giop.decode_message",
            lambda data: (_ for _ in ()).throw(RuntimeError("boom")))
        net.send("h1", "h0", "giop", b"anything", 8)
        env.run(until=env.timeout(1.0))
        assert net.metrics.get("orb.bad_messages") == 1

    def test_node_keeps_serving_after_garbage(self):
        env, net, server, client, ior = make_rig()
        odef = IFACE.operations["echo"]
        for garbage in (b"", b"\x00" * 16, bytes(range(100)), b"\xff" * 33):
            net.send("h1", "h0", "giop", garbage, len(garbage))
        env.run(until=env.timeout(1.0))
        result = client.call(ior, odef, ("still alive",), timeout=5.0)
        assert result == "still alive"
        assert net.metrics.get("orb.bad_messages") == 4

"""Regression: deadline-heap sweeper re-arm duplication (ISSUE 7).

The ORB keeps ONE armed sweeper timer for the earliest pending
deadline.  Pre-fix, arming an earlier deadline did not disarm the
later timer, and the preempted timer — the kernel cannot cancel
timers — performed a *full re-arm* when it finally fired.  Under
steady traffic every short-deadline call that preempted the sweeper
therefore left one extra live timer behind, each of which re-armed
again at expiry: the kernel heap grew one stale sweeper per
preemption, exactly the per-call-timer leak the deadline heap was
built to remove (and, transitively, re-arm churn that could starve
the event loop around mass-expiry instants).

The fix versions the sweeper with a token: arming bumps it; a firing
timer carrying a stale token is a no-op.  These tests pin both the
leak bound and the timing semantics around preemption.
"""

from repro.orb.core import InterfaceDef, ORB, op
from repro.orb.exceptions import TIMEOUT
from repro.orb.typecodes import tc_long
from repro.sim.kernel import Environment
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.topology import star

IFACE = InterfaceDef("IDL:test/Void:1.0", "Void", operations=[
    op("ping", [("x", tc_long)], tc_long),
])
PING = IFACE.operations["ping"]


def make_client():
    env = Environment()
    net = Network(env, star(2), rngs=RngRegistry(9))
    client = ORB(env, net, "h1", reply_deadline=None)
    # Nothing listens on h0: every request is dropped at delivery and
    # every pending entry lives until its deadline sweeps it.
    return env, net, client


def silent_ior(client):
    from repro.orb.ior import IOR
    return IOR(IFACE.repo_id, "h0", "root", "missing")


class TestSweeperDuplication:
    def test_preempted_sweepers_do_not_accumulate(self):
        env, net, client = make_client()
        ior = silent_ior(client)
        # Arm a long deadline first, then a longer backstop entry.
        long_ev = client.invoke(ior, PING, (0,), timeout=60.0)
        backstop = client.invoke(ior, PING, (1,), timeout=120.0)

        def churn():
            # 100 short calls, each preempting the armed 60 s sweeper.
            for i in range(100):
                client.invoke(ior, PING, (i,), timeout=0.1)
                yield env.timeout(0.2)

        env.process(churn())
        env.run(until=61.0)
        # All shorts and the 60 s call timed out; the backstop remains.
        assert not long_ev.ok and isinstance(long_ev.value, TIMEOUT)
        assert not backstop.triggered
        assert net.metrics.get("orb.timeouts") == 101
        # THE regression: at t=61 the only kernel events left are the
        # live sweeper armed for t=120 (plus nothing else — traffic is
        # done).  Pre-fix, each of the 100 preempted timers fired at
        # t≈60, saw the non-empty heap, and re-armed ANOTHER sweeper:
        # 101 timers pending here instead of 1.
        assert len(env._queue) <= 2
        env.run(until=121.0)
        assert not backstop.ok and isinstance(backstop.value, TIMEOUT)
        assert net.metrics.get("orb.timeouts") == 102

    def test_armed_at_tracks_earliest_deadline(self):
        env, _net, client = make_client()
        ior = silent_ior(client)
        client.invoke(ior, PING, (0,), timeout=30.0)
        assert client._deadline_armed_at == 30.0
        client.invoke(ior, PING, (1,), timeout=5.0)
        assert client._deadline_armed_at == 5.0   # preempted earlier
        client.invoke(ior, PING, (2,), timeout=10.0)
        assert client._deadline_armed_at == 5.0   # later: no re-arm
        env.run(until=6.0)
        # After the 5 s sweep the sweeper re-armed for the next entry.
        assert client._deadline_armed_at == 10.0
        env.run(until=31.0)
        assert client._deadline_armed_at == float("inf")

    def test_sweep_after_preemption_still_times_out_later_entry(self):
        env, _net, client = make_client()
        ior = silent_ior(client)
        slow = client.invoke(ior, PING, (0,), timeout=3.0)
        fast = client.invoke(ior, PING, (1,), timeout=0.5)
        env.run(until=1.0)
        assert not fast.ok and isinstance(fast.value, TIMEOUT)
        assert not slow.triggered           # not swept early
        env.run(until=4.0)
        assert not slow.ok and isinstance(slow.value, TIMEOUT)
        assert env.now >= 3.0

"""Edge-case tests for the ORB runtime: attributes, generator servants,
metering, dispatch accounting, stub narrowing."""

import pytest

from repro.orb.core import (
    InterfaceDef,
    ORB,
    Servant,
    make_exception_class,
    op,
)
from repro.orb.exceptions import BAD_PARAM, UNKNOWN
from repro.orb.typecodes import except_tc, tc_double, tc_long, tc_string
from repro.sim.kernel import Environment
from repro.sim.network import Network
from repro.sim.topology import star

SLOW_TC = except_tc("TooSlow", [("limit", tc_long)],
                    repo_id="IDL:test/TooSlow:1.0")
TooSlow = make_exception_class("TooSlow", SLOW_TC)

WORKERISH = InterfaceDef("IDL:test/Workerish:1.0", "Workerish")
WORKERISH.add_attribute("speed", tc_double)
WORKERISH.add_attribute("label", tc_string, readonly=True)
WORKERISH.add_operation(op("work", [("units", tc_long)], tc_long,
                           raises=[SLOW_TC]))


class WorkerishServant(Servant):
    _interface = WORKERISH

    def __init__(self):
        self.speed = 1.0
        self.worked = 0

    def _get_speed(self):
        return self.speed

    def _set_speed(self, value):
        self.speed = value

    def _get_label(self):
        return "workerish"

    def work(self, units):
        # generator servant: sleeps in simulated time, may raise a
        # declared user exception from inside the generator
        if units > 100:
            raise TooSlow(100)
        yield self._ctx_timeout(units * 0.001)
        self.worked += units
        return self.worked

    def _ctx_timeout(self, delay):
        return self._env.timeout(delay)


@pytest.fixture
def rig():
    env = Environment()
    net = Network(env, star(1))
    server = ORB(env, net, "hub")
    client = ORB(env, net, "h0")
    servant = WorkerishServant()
    servant._env = env
    ior = server.adapter("root").activate(servant)
    stub = client.stub(ior, WORKERISH)
    return env, net, server, client, servant, stub


class TestAttributes:
    def test_get_set_attribute(self, rig):
        env, net, server, client, servant, stub = rig
        assert client.sync(stub._get_speed()) == 1.0
        client.sync(stub._set_speed(2.5))
        assert servant.speed == 2.5
        assert client.sync(stub._get_speed()) == 2.5

    def test_readonly_attribute_has_no_setter(self, rig):
        env, net, server, client, servant, stub = rig
        assert client.sync(stub._get_label()) == "workerish"
        with pytest.raises(AttributeError):
            stub._set_label("x")


class TestGeneratorServants:
    def test_generator_takes_simulated_time(self, rig):
        env, net, server, client, servant, stub = rig
        t0 = env.now
        assert client.sync(stub.work(50)) == 50
        assert env.now - t0 >= 0.050

    def test_user_exception_before_first_yield(self, rig):
        env, net, server, client, servant, stub = rig
        with pytest.raises(TooSlow) as info:
            client.sync(stub.work(1000))
        assert info.value.limit == 100

    def test_generator_crash_maps_to_unknown(self, rig):
        env, net, server, client, servant, stub = rig

        def broken(units):
            yield env.timeout(0.001)
            raise RuntimeError("boom inside generator")
        servant.work = broken
        with pytest.raises(UNKNOWN):
            client.sync(stub.work(1))


class TestMetering:
    def test_meter_counts_messages_and_bytes(self, rig):
        env, net, server, client, servant, stub = rig
        client.sync(stub._get_speed(_meter="myproto"))
        client.sync(stub._get_speed(_meter="myproto"))
        assert net.metrics.get("myproto.msgs") == 2
        assert net.metrics.get("myproto.bytes") > 0

    def test_unmetered_calls_do_not_pollute(self, rig):
        env, net, server, client, servant, stub = rig
        client.sync(stub._get_speed())
        assert net.metrics.get("myproto2.msgs") == 0


class TestDispatchAccounting:
    def test_dispatch_listeners_charged(self, rig):
        env, net, server, client, servant, stub = rig
        charges = []
        server.dispatch_listeners.append(charges.append)
        client.sync(stub._get_speed())
        assert len(charges) == 1
        assert charges[0] > 0

    def test_marshal_validation_happens_before_send(self, rig):
        env, net, server, client, servant, stub = rig
        msgs_before = net.messages_sent()
        with pytest.raises(BAD_PARAM):
            stub._set_speed("not a double")
        assert net.messages_sent() == msgs_before


class TestStubIdentity:
    def test_stub_exposes_ior_and_interface(self, rig):
        env, net, server, client, servant, stub = rig
        assert stub.ior.repo_id == WORKERISH.repo_id
        assert stub.stub_interface is WORKERISH
        assert "Workerish" in repr(stub)

    def test_two_stubs_same_target_share_servant_state(self, rig):
        env, net, server, client, servant, stub = rig
        other = client.stub(stub.ior, WORKERISH)
        client.sync(stub._set_speed(9.0))
        assert client.sync(other._get_speed()) == 9.0

"""Admission control: bounded dispatch tables and load shedding."""

import pytest

from repro.orb.core import InterfaceDef, ORB, Servant, _DispatchSlots, op
from repro.orb.exceptions import MINOR_SHED, TRANSIENT
from repro.orb.typecodes import tc_long
from repro.sim.kernel import Environment
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.topology import star
from repro.util.errors import ConfigurationError

# Leaf hosts have cpu_power 400, so cpu_cost=40 burns 0.1 s per call.
IFACE = InterfaceDef("IDL:test/Slow:1.0", "Slow", operations=[
    op("work", [("x", tc_long)], tc_long, cpu_cost=40.0),
    op("fire", [("x", tc_long)], oneway=True, cpu_cost=40.0),
])
WORK = IFACE.operations["work"]
FIRE = IFACE.operations["fire"]


class SlowServant(Servant):
    _interface = IFACE

    def __init__(self):
        self.calls = []

    def work(self, x):
        self.calls.append(x)
        return x * 2

    def fire(self, x):
        self.calls.append(x)


def make_rig(**orb_kwargs):
    env = Environment()
    net = Network(env, star(2), rngs=RngRegistry(3))
    server = ORB(env, net, "h0", **orb_kwargs)
    client = ORB(env, net, "h1")
    servant = SlowServant()
    ior = server.adapter("root").activate(servant)
    return env, net, server, client, servant, ior


def burst(client, ior, n, timeout=20.0):
    return [client.invoke(ior, WORK, (i,), timeout=timeout)
            for i in range(n)]


class TestDispatchSlots:
    def test_capacity_validated(self):
        env = Environment()
        with pytest.raises(ConfigurationError):
            _DispatchSlots(env, 0)
        with pytest.raises(ConfigurationError):
            _DispatchSlots(env, -3)

    def test_fifo_acquire_release(self):
        env = Environment()
        slots = _DispatchSlots(env, 1)
        order = []

        def holder(tag, hold):
            yield slots.acquire()
            yield env.timeout(hold)
            order.append(tag)
            slots.release()

        for tag in ("a", "b", "c"):
            env.process(holder(tag, 0.1))
        env.run(until=env.timeout(1.0))
        assert order == ["a", "b", "c"]
        assert slots.queued == 0


class TestLoadShedding:
    def test_overflow_sheds_transient_with_minor(self):
        env, net, server, client, servant, ior = make_rig(
            dispatch_workers=1, dispatch_limit=2)
        events = burst(client, ior, 6)
        env.run(until=env.timeout(5.0))
        served = [ev for ev in events if ev.ok]
        shed = [ev for ev in events if not ev.ok]
        assert len(served) == 2
        assert len(shed) == 4
        for ev in shed:
            assert isinstance(ev.value, TRANSIENT)
            assert ev.value.minor == MINOR_SHED
        assert net.metrics.get("orb.shed") == 4
        assert len(servant.calls) == 2

    def test_no_limit_means_no_shedding(self):
        env, net, server, client, servant, ior = make_rig(
            dispatch_workers=1)
        events = burst(client, ior, 6)
        env.run(until=env.timeout(5.0))
        assert all(ev.ok for ev in events)
        assert net.metrics.get("orb.shed") == 0

    def test_workers_serialize_cpu(self):
        # One worker, three 0.1 s jobs: the last reply lands after
        # ~0.3 s of servant CPU, not 0.1 s of parallel make-believe.
        done = {}
        for workers in (1, 3):
            env, net, server, client, servant, ior = make_rig(
                dispatch_workers=workers)
            events = burst(client, ior, 3)
            for i, ev in enumerate(events):
                ev.callbacks.append(
                    lambda _ev, i=i, env=env: done.setdefault(
                        (workers, i), env.now))
            env.run(until=env.timeout(5.0))
        serial_last = max(v for (w, _), v in done.items() if w == 1)
        parallel_last = max(v for (w, _), v in done.items() if w == 3)
        assert serial_last == pytest.approx(parallel_last + 0.2, abs=1e-3)

    def test_oneway_shed_is_silent(self):
        env, net, server, client, servant, ior = make_rig(
            dispatch_workers=1, dispatch_limit=1)
        client.invoke(ior, WORK, (0,), timeout=20.0)
        env.run(until=env.timeout(0.01))  # first request now inflight
        for i in range(3):
            client.send_oneway(ior, FIRE, (i,))
        replies_before = net.metrics.get("net.messages")
        env.run(until=env.timeout(5.0))
        assert net.metrics.get("orb.shed") == 3
        # Shedding a oneway produces no reply traffic: the only message
        # after the burst is the reply to the original two-way call.
        assert net.metrics.get("net.messages") == replies_before + 1

    def test_table_drains_and_accepts_again(self):
        env, net, server, client, servant, ior = make_rig(
            dispatch_workers=1, dispatch_limit=1)
        first = burst(client, ior, 3)
        env.run(until=env.timeout(5.0))
        assert sum(ev.ok for ev in first) == 1
        late = client.invoke(ior, WORK, (99,), timeout=20.0)
        env.run(until=env.timeout(5.0))
        assert late.ok and late.value == 198

    def test_inflight_gauge_via_watchers(self):
        env, net, server, client, servant, ior = make_rig(
            dispatch_workers=1, dispatch_limit=3)
        depths = []
        server.dispatch_watchers.append(depths.append)
        events = burst(client, ior, 8)
        env.run(until=env.timeout(5.0))
        assert max(depths) == 3          # never above the limit
        assert depths[-1] == 0           # fully drained
        assert server.inflight_dispatches == 0
        assert sum(ev.ok for ev in events) == 3

"""Unit tests for DII, the interface repository, naming and events."""

import pytest

from repro.orb.cdr import Any
from repro.orb.core import InterfaceDef, ORB, Servant, op
from repro.orb.dii import (
    GLOBAL_IFR,
    InterfaceRepository,
    Request,
    request_from_ifr,
)
from repro.orb.exceptions import BAD_OPERATION, BAD_PARAM
from repro.orb.services.events import (
    CallbackPushConsumer,
    EVENT_CHANNEL_IFACE,
    EventChannelServant,
)
from repro.orb.services.naming import (
    AlreadyBound,
    NAMING_IFACE,
    NamingServant,
    NotFound,
)
from repro.orb.typecodes import tc_long, tc_string
from repro.sim.kernel import Environment
from repro.sim.network import Network
from repro.sim.topology import star
from repro.util.errors import ConfigurationError

CALC = InterfaceDef("IDL:diitest/Calc:1.0", "Calc", operations=[
    op("add", [("a", tc_long), ("b", tc_long)], tc_long),
])


class CalcServant(Servant):
    _interface = CALC

    def add(self, a, b):
        return a + b


@pytest.fixture
def rig():
    env = Environment()
    net = Network(env, star(2))
    server = ORB(env, net, "hub")
    client = ORB(env, net, "h0")
    ior = server.adapter("root").activate(CalcServant())
    return env, server, client, ior


class TestInterfaceRepository:
    def test_register_and_lookup(self):
        ifr = InterfaceRepository()
        ifr.register(CALC)
        assert ifr.lookup(CALC.repo_id) is CALC
        assert CALC.repo_id in ifr

    def test_duplicate_identity_is_idempotent(self):
        ifr = InterfaceRepository()
        ifr.register(CALC)
        ifr.register(CALC)  # same object: fine

    def test_conflicting_registration_rejected(self):
        ifr = InterfaceRepository()
        ifr.register(CALC)
        clone = InterfaceDef(CALC.repo_id, "Other")
        with pytest.raises(ConfigurationError):
            ifr.register(clone)
        ifr.register(clone, replace=True)
        assert ifr.lookup(CALC.repo_id) is clone

    def test_require_unknown_raises(self):
        ifr = InterfaceRepository()
        with pytest.raises(BAD_PARAM):
            ifr.require("IDL:nope:1.0")


class TestDII:
    def test_manual_request(self, rig):
        env, server, client, ior = rig
        req = (Request(client, ior, "add")
               .add_in_arg("a", tc_long, 20)
               .add_in_arg("b", tc_long, 22)
               .set_return_type(tc_long))
        assert req.invoke_sync() == 42

    def test_request_from_ifr(self, rig):
        env, server, client, ior = rig
        ifr = InterfaceRepository()
        ifr.register(CALC)
        req = request_from_ifr(client, ifr, ior, "add", (1, 2))
        assert req.invoke_sync() == 3

    def test_request_from_ifr_checks_operation(self, rig):
        env, server, client, ior = rig
        ifr = InterfaceRepository()
        ifr.register(CALC)
        with pytest.raises(BAD_OPERATION):
            request_from_ifr(client, ifr, ior, "mul", (1, 2))

    def test_request_from_ifr_checks_arity(self, rig):
        env, server, client, ior = rig
        ifr = InterfaceRepository()
        ifr.register(CALC)
        with pytest.raises(BAD_PARAM):
            request_from_ifr(client, ifr, ior, "add", (1,))


class TestNaming:
    @pytest.fixture
    def naming(self, rig):
        env, server, client, calc_ior = rig
        ns_ior = server.adapter("services").activate(NamingServant(),
                                                     key="naming")
        return env, client, client.stub(ns_ior, NAMING_IFACE), calc_ior

    def test_bind_resolve(self, naming):
        env, client, ns, calc_ior = naming
        client.sync(ns.bind("apps/calc", calc_ior))
        assert client.sync(ns.resolve("apps/calc")) == calc_ior

    def test_double_bind_raises_already_bound(self, naming):
        env, client, ns, calc_ior = naming
        client.sync(ns.bind("x", calc_ior))
        with pytest.raises(AlreadyBound):
            client.sync(ns.bind("x", calc_ior))

    def test_rebind_overwrites(self, naming):
        env, client, ns, calc_ior = naming
        client.sync(ns.bind("x", calc_ior))
        client.sync(ns.rebind("x", None))
        assert client.sync(ns.resolve("x")) is None

    def test_resolve_unknown_raises_not_found(self, naming):
        env, client, ns, calc_ior = naming
        with pytest.raises(NotFound):
            client.sync(ns.resolve("ghost"))

    def test_unbind(self, naming):
        env, client, ns, calc_ior = naming
        client.sync(ns.bind("x", calc_ior))
        client.sync(ns.unbind("x"))
        with pytest.raises(NotFound):
            client.sync(ns.resolve("x"))
        with pytest.raises(NotFound):
            client.sync(ns.unbind("x"))

    def test_list_prefix(self, naming):
        env, client, ns, calc_ior = naming
        for name in ("apps/a", "apps/b", "sys/c"):
            client.sync(ns.bind(name, calc_ior))
        assert client.sync(ns.list("apps/")) == ["apps/a", "apps/b"]
        assert client.sync(ns.list("")) == ["apps/a", "apps/b", "sys/c"]


class TestEventChannel:
    def test_fanout_to_multiple_consumers(self, rig):
        env, server, client, _ior = rig
        chan = EventChannelServant(server, "tick")
        chan_ior = server.adapter("services").activate(chan)
        got_a, got_b = [], []
        ior_a = client.adapter("root").activate(
            CallbackPushConsumer(lambda a: got_a.append(a.value)))
        ior_b = client.adapter("root").activate(
            CallbackPushConsumer(lambda a: got_b.append(a.value)))
        stub = client.stub(chan_ior, EVENT_CHANNEL_IFACE)
        client.sync(stub.connect_push_consumer(ior_a))
        client.sync(stub.connect_push_consumer(ior_b))
        client.sync(stub.push(Any(tc_string, "e1")))
        env.run(until=env.now + 1)
        assert got_a == ["e1"]
        assert got_b == ["e1"]

    def test_duplicate_connect_ignored(self, rig):
        env, server, client, _ior = rig
        chan = EventChannelServant(server, "k")
        chan_ior = server.adapter("services").activate(chan)
        got = []
        cons = client.adapter("root").activate(
            CallbackPushConsumer(lambda a: got.append(a.value)))
        stub = client.stub(chan_ior, EVENT_CHANNEL_IFACE)
        client.sync(stub.connect_push_consumer(cons))
        client.sync(stub.connect_push_consumer(cons))
        client.sync(stub.push(Any(tc_string, "x")))
        env.run(until=env.now + 1)
        assert got == ["x"]

    def test_disconnect_stops_delivery(self, rig):
        env, server, client, _ior = rig
        chan = EventChannelServant(server, "k")
        chan_ior = server.adapter("services").activate(chan)
        got = []
        cons = client.adapter("root").activate(
            CallbackPushConsumer(lambda a: got.append(a.value)))
        stub = client.stub(chan_ior, EVENT_CHANNEL_IFACE)
        client.sync(stub.connect_push_consumer(cons))
        client.sync(stub.disconnect_push_consumer(cons))
        client.sync(stub.push(Any(tc_string, "x")))
        env.run(until=env.now + 1)
        assert got == []

    def test_nil_consumer_rejected(self, rig):
        env, server, client, _ior = rig
        chan = EventChannelServant(server, "k")
        chan_ior = server.adapter("services").activate(chan)
        stub = client.stub(chan_ior, EVENT_CHANNEL_IFACE)
        with pytest.raises(BAD_PARAM):
            client.sync(stub.connect_push_consumer(None))

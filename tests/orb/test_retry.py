"""Tests for the retry policy layer."""

import pytest

from repro.orb.core import InterfaceDef, ORB, Servant, op
from repro.orb.exceptions import TIMEOUT, TRANSIENT
from repro.orb.retry import RetryPolicy, call_with_retry, invoke_with_retry
from repro.orb.typecodes import tc_long, tc_string
from repro.sim.kernel import Environment
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.topology import LinkClass, Topology

FLAKY = InterfaceDef("IDL:test/Flaky:1.0", "Flaky", operations=[
    op("get", [], tc_long),
    op("fail_n", [("n", tc_long)], tc_long),
])


class FlakyServant(Servant):
    _interface = FLAKY

    def __init__(self):
        self.calls = 0
        self.failures_left = 0

    def get(self):
        self.calls += 1
        return self.calls

    def fail_n(self, n):
        self.calls += 1
        if self.failures_left > 0:
            self.failures_left -= 1
            raise TRANSIENT("not yet")
        return self.calls


def make_rig(loss=0.0):
    topo = Topology()
    topo.add_host("a")
    topo.add_host("b")
    topo.add_link("a", "b", LinkClass("flaky", latency=0.001,
                                     bandwidth=1e6, loss=loss))
    env = Environment()
    net = Network(env, topo, rngs=RngRegistry(5))
    server = ORB(env, net, "a")
    client = ORB(env, net, "b")
    servant = FlakyServant()
    ior = server.adapter("root").activate(servant)
    return env, client, servant, ior


class TestRetryPolicy:
    def test_policy_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(attempts=0)

    @pytest.mark.parametrize("kwargs", [
        {"timeout": 0.0}, {"timeout": -1.0},
        {"backoff": 0.0}, {"backoff": -0.5},
        {"backoff_factor": 0.0}, {"backoff_factor": -2.0},
        {"deadline": 0.0}, {"deadline": -10.0},
    ])
    def test_rejects_non_positive_parameters(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_backoff_schedule(self):
        p = RetryPolicy(backoff=0.5, backoff_factor=2.0)
        assert p.delay_before(1) == 0.5
        assert p.delay_before(2) == 1.0
        assert p.delay_before(3) == 2.0

    def test_jittered_backoff_bounded_and_seeded(self):
        from repro.sim.rng import RngRegistry
        p = RetryPolicy(backoff=0.5, backoff_factor=2.0)
        draws = [p.delay_before(i, rng=RngRegistry(9).stream("j"))
                 for i in (1, 2, 3)]
        for i, d in enumerate(draws, start=1):
            assert 0.0 <= d <= p.delay_before(i)
        # same seed, same stream name -> identical jitter
        again = [p.delay_before(i, rng=RngRegistry(9).stream("j"))
                 for i in (1, 2, 3)]
        assert draws == again


class TestRetries:
    def test_no_retry_needed(self):
        env, client, servant, ior = make_rig()
        result = call_with_retry(client, ior, FLAKY.operations["get"], ())
        assert result == 1
        assert client.metrics.get("orb.retries") == 0

    def test_transient_retried_until_success(self):
        env, client, servant, ior = make_rig()
        servant.failures_left = 2
        result = call_with_retry(
            client, ior, FLAKY.operations["fail_n"], (0,),
            policy=RetryPolicy(attempts=4, timeout=1.0, backoff=0.1))
        assert result == 3  # two failures + one success
        assert client.metrics.get("orb.retries") == 2

    def test_exhausted_attempts_raise_last_error(self):
        env, client, servant, ior = make_rig()
        servant.failures_left = 99
        with pytest.raises(TRANSIENT):
            call_with_retry(
                client, ior, FLAKY.operations["fail_n"], (0,),
                policy=RetryPolicy(attempts=3, timeout=1.0, backoff=0.1))
        assert servant.calls == 3

    def test_lossy_link_recovered_by_retry(self):
        env, client, servant, ior = make_rig(loss=0.4)
        policy = RetryPolicy(attempts=8, timeout=0.5, backoff=0.05)
        results = []
        for _ in range(10):
            results.append(call_with_retry(
                client, ior, FLAKY.operations["get"], (), policy=policy))
        assert len(results) == 10
        assert client.metrics.get("orb.retries") > 0

    def test_dead_server_times_out_with_backoff(self):
        env, client, servant, ior = make_rig()
        env  # warm path first
        client.network.topology.set_host_state("a", alive=False)
        t0 = env.now
        with pytest.raises(TIMEOUT):
            call_with_retry(
                client, ior, FLAKY.operations["get"], (),
                policy=RetryPolicy(attempts=3, timeout=1.0, backoff=0.5,
                                   jitter=False))
        # 3 timeouts + backoffs 0.5 + 1.0
        assert env.now - t0 == pytest.approx(3 * 1.0 + 0.5 + 1.0)

    def test_non_retryable_error_propagates_immediately(self):
        env, client, servant, ior = make_rig()
        from repro.orb.exceptions import BAD_OPERATION
        bogus = op("no_such_op", [], tc_long)
        with pytest.raises(BAD_OPERATION):
            call_with_retry(client, ior, bogus, (),
                            policy=RetryPolicy(attempts=5, timeout=1.0))
        # only one attempt was made
        assert client.metrics.get("orb.retries") == 0

    def test_deadline_caps_total_retry_time(self):
        env, client, servant, ior = make_rig()
        client.network.topology.set_host_state("a", alive=False)
        t0 = env.now
        with pytest.raises(TIMEOUT):
            call_with_retry(
                client, ior, FLAKY.operations["get"], (),
                policy=RetryPolicy(attempts=5, timeout=1.0, backoff=0.5,
                                   deadline=2.5, jitter=False))
        # attempt 1 (1.0) + backoff (0.5) + attempt 2 capped to the
        # remaining 1.0 = 2.5; attempts 3..5 never run
        assert env.now - t0 == pytest.approx(2.5)

    def test_deadline_skips_backoff_that_would_overrun(self):
        env, client, servant, ior = make_rig()
        client.network.topology.set_host_state("a", alive=False)
        t0 = env.now
        with pytest.raises(TIMEOUT):
            call_with_retry(
                client, ior, FLAKY.operations["get"], (),
                policy=RetryPolicy(attempts=5, timeout=1.0, backoff=5.0,
                                   deadline=3.0, jitter=False))
        # one 1.0s attempt; the 5.0s backoff would blow the 3.0s budget
        assert env.now - t0 == pytest.approx(1.0)

    def test_jittered_retries_are_deterministic_per_seed(self):
        def elapsed():
            env, client, servant, ior = make_rig()
            servant.failures_left = 2
            t0 = env.now
            call_with_retry(
                client, ior, FLAKY.operations["fail_n"], (0,),
                policy=RetryPolicy(attempts=4, timeout=1.0, backoff=0.4))
            return env.now - t0

        first, second = elapsed(), elapsed()
        assert first == second  # same seed -> same jitter draws
        # jitter is full: total sleep strictly below the fixed schedule
        assert first < 0.4 + 0.8 + 2 * 0.01

    def test_usable_inside_processes(self):
        env, client, servant, ior = make_rig()
        servant.failures_left = 1

        def proc():
            value = yield from invoke_with_retry(
                client, ior, FLAKY.operations["fail_n"], (0,),
                policy=RetryPolicy(attempts=3, timeout=1.0, backoff=0.1))
            return value

        assert env.run(until=env.process(proc())) == 2

"""Unit tests for the component model: executors, ports, model, reflection."""

import pytest

from repro.components.executor import (
    ComponentExecutor,
    LifecycleError,
    StatefulMixin,
)
from repro.components.model import ComponentClass
from repro.components.ports import (
    EventSinkPort,
    EventSourcePort,
    FacetPort,
    PortError,
    PortSet,
    ReceptaclePort,
)
from repro.components.reflection import (
    ComponentInfo,
    InstanceInfo,
    PortInfo,
)
from repro.orb.cdr import decode_one, encode_one
from repro.orb.ior import IOR
from repro.packaging.package import PackageError
from repro.sim.topology import DESKTOP, PDA
from repro.testing import COUNTER_IFACE, CounterExecutor, counter_package
from repro.util.errors import ConfigurationError


class TestExecutorLifecycle:
    def test_activate_passivate_cycle(self):
        ex = ComponentExecutor()
        assert not ex.is_active
        ex.activate()
        assert ex.is_active
        ex.passivate()
        assert not ex.is_active
        ex.activate()  # reactivation allowed (migration)

    def test_double_activate_rejected(self):
        ex = ComponentExecutor()
        ex.activate()
        with pytest.raises(LifecycleError):
            ex.activate()

    def test_passivate_inactive_rejected(self):
        with pytest.raises(LifecycleError):
            ComponentExecutor().passivate()

    def test_remove_passivates_if_active(self):
        log = []

        class Ex(ComponentExecutor):
            def on_passivate(self):
                log.append("passivate")

            def on_remove(self):
                log.append("remove")

        ex = Ex()
        ex.activate()
        ex.remove()
        assert log == ["passivate", "remove"]

    def test_default_state_is_empty(self):
        ex = ComponentExecutor()
        assert ex.get_state() == {}
        ex.set_state({"anything": 1})  # ignored, no raise

    def test_stateful_mixin_roundtrip(self):
        class Ex(StatefulMixin, ComponentExecutor):
            STATE_ATTRS = ("a", "b")

            def __init__(self):
                super().__init__()
                self.a = 1
                self.b = "x"
                self.c = "not-state"

        ex = Ex()
        ex.a = 42
        state = ex.get_state()
        assert state == {"a": 42, "b": "x"}
        ex2 = Ex()
        ex2.set_state(state)
        assert ex2.a == 42 and ex2.c == "not-state"

    def test_aggregation_unsupported_by_default(self):
        with pytest.raises(LifecycleError):
            ComponentExecutor().split(2)
        with pytest.raises(LifecycleError):
            ComponentExecutor().merge([])

    def test_undeclared_facet_rejected(self):
        with pytest.raises(LifecycleError):
            ComponentExecutor().create_facet("nope")


class TestPortSet:
    def make_facet(self, name="f"):
        class FakeServant:
            pass
        ior = IOR("IDL:t/X:1.0", "h", "a", "k")
        return FacetPort(name, "IDL:t/X:1.0", FakeServant(), ior)

    def test_add_get_remove(self):
        ports = PortSet()
        ports.add(self.make_facet())
        assert "f" in ports
        assert len(ports) == 1
        ports.remove("f")
        assert "f" not in ports
        with pytest.raises(PortError):
            ports.get("f")

    def test_duplicate_name_rejected(self):
        ports = PortSet()
        ports.add(self.make_facet())
        with pytest.raises(ConfigurationError):
            ports.add(ReceptaclePort("f", "IDL:t/X:1.0"))

    def test_typed_accessors_check_kind(self):
        ports = PortSet()
        ports.add(self.make_facet())
        assert ports.facet("f") is not None
        with pytest.raises(PortError):
            ports.receptacle("f")
        with pytest.raises(PortError):
            ports.event_source("f")

    def test_listeners_see_mutations(self):
        ports = PortSet()
        seen = []
        ports.listeners.append(lambda action, p: seen.append((action, p.name)))
        ports.add(self.make_facet())
        ports.add(ReceptaclePort("r", "IDL:t/Y:1.0"))
        ports.changed("r")
        ports.remove("f")
        assert seen == [("added", "f"), ("added", "r"),
                        ("changed", "r"), ("removed", "f")]

    def test_by_kind_views(self):
        ports = PortSet()
        ports.add(self.make_facet())
        ports.add(ReceptaclePort("r", "IDL:t/Y:1.0"))
        ports.add(EventSourcePort("src", "kind.a"))
        ports.add(EventSinkPort("snk", "kind.a"))
        assert [p.name for p in ports.facets()] == ["f"]
        assert [p.name for p in ports.receptacles()] == ["r"]
        assert len(ports.by_kind("event-source")) == 1
        assert sorted(ports.names()) == ["f", "r", "snk", "src"]


class TestReceptacle:
    def test_connect_disconnect(self):
        port = ReceptaclePort("r", "IDL:t/X:1.0")
        ior = IOR("IDL:t/X:1.0", "h", "a", "k")
        assert not port.connected
        port.connect(ior)
        assert port.connected
        assert port.disconnect() == ior
        assert not port.connected

    def test_double_connect_rejected(self):
        port = ReceptaclePort("r", "IDL:t/X:1.0")
        ior = IOR("IDL:t/X:1.0", "h", "a", "k")
        port.connect(ior)
        with pytest.raises(PortError):
            port.connect(ior)

    def test_disconnect_unconnected_rejected(self):
        with pytest.raises(PortError):
            ReceptaclePort("r", "IDL:t/X:1.0").disconnect()

    def test_describe_shows_peer(self):
        port = ReceptaclePort("r", "IDL:t/X:1.0", optional=True)
        desc = port.describe()
        assert desc["peer"] == ""
        assert desc["optional"] is True
        port.connect(IOR("IDL:t/X:1.0", "h", "a", "k"))
        assert "h" in port.describe()["peer"]


class TestComponentClass:
    def test_platform_resolution(self):
        cls = ComponentClass(counter_package(), DESKTOP)
        assert cls.name == "Counter"
        assert cls.is_mobile
        assert cls.replicable
        assert not cls.aggregatable
        assert isinstance(cls.new_executor(), CounterExecutor)

    def test_provides_repo_id(self):
        cls = ComponentClass(counter_package(), DESKTOP)
        assert cls.provides_repo_id(COUNTER_IFACE.repo_id)
        assert not cls.provides_repo_id("IDL:other:1.0")

    def test_unsupported_platform_rejected(self):
        from repro.packaging.package import ComponentPackage
        from repro.packaging.binaries import synthetic_payload, GLOBAL_BINARIES
        from repro.packaging.package import PackageBuilder
        from repro.xmlmeta.descriptors import (
            ComponentTypeDescriptor, ImplementationDescriptor,
            SoftwareDescriptor,
        )
        from repro.xmlmeta.versions import Version

        GLOBAL_BINARIES.register("test.linuxonly", ComponentExecutor)
        soft = SoftwareDescriptor(
            name="LinuxOnly", version=Version(1, 0),
            implementations=[ImplementationDescriptor(
                "linux", "x86", "corba-lc", "test.linuxonly",
                "bin/linux/impl")],
        )
        comp = ComponentTypeDescriptor(name="LinuxOnly")
        b = PackageBuilder(soft, comp)
        b.add_binary("bin/linux/impl", synthetic_payload(10))
        pkg = ComponentPackage(b.build())
        with pytest.raises(PackageError):
            ComponentClass(pkg, PDA)  # palmos/arm has no binary


class TestReflectionRecords:
    def test_instance_info_roundtrips_as_struct(self):
        from repro.components.reflection import INSTANCE_INFO_TC
        info = InstanceInfo(
            instance_id="i-1", component="C", version="1.0.0",
            host="h0", active=True,
            ports=(PortInfo("p", "facet", "IDL:t/X:1.0", "IOR:..."),))
        value = info.to_value()
        decoded = decode_one(INSTANCE_INFO_TC,
                             encode_one(INSTANCE_INFO_TC, value))
        assert InstanceInfo.from_value(decoded) == info

    def test_component_info_from_package(self):
        info = ComponentInfo.from_package(counter_package())
        assert info.name == "Counter"
        assert COUNTER_IFACE.repo_id in info.provides
        assert info.qos_cpu == 5.0
        # optional receptacle is not a hard requirement
        assert info.uses == ()

    def test_component_info_roundtrips_as_struct(self):
        from repro.components.reflection import COMPONENT_INFO_TC
        info = ComponentInfo.from_package(counter_package())
        decoded = decode_one(COMPONENT_INFO_TC,
                             encode_one(COMPONENT_INFO_TC, info.to_value()))
        assert ComponentInfo.from_value(decoded) == info

"""Schema validation reports *all* violations, as Finding objects."""

from xml.etree import ElementTree as ET

import pytest

from repro.util.diagnostics import Finding, Severity
from repro.xmlmeta.descriptors import (
    ComponentTypeDescriptor,
    SoftwareDescriptor,
)
from repro.xmlmeta.schema import (
    ElementSpec,
    MANY,
    ONE,
    OPT,
    SchemaError,
    collect_violations,
    validate_element,
)

SPEC = (
    ElementSpec("root", required_attrs=("name",))
    .child(ElementSpec("leaf", required_attrs=("id",)), MANY)
    .child(ElementSpec("unique"), ONE)
)


def violations(xml_text):
    return collect_violations(ET.fromstring(xml_text), SPEC)


class TestCollectViolations:
    def test_clean_document(self):
        assert violations('<root name="x"><unique/></root>') == []

    def test_reports_every_violation_not_just_first(self):
        found = violations(
            '<root extra="1">'            # unexpected + missing name
            '<leaf/>'                     # missing id
            '<mystery/>'                  # unexpected child
            '</root>')                    # and: missing <unique>
        messages = [f.message for f in found]
        assert len(found) == 5
        assert any("unexpected attribute" in m for m in messages)
        assert any("missing attribute 'name'" in m for m in messages)
        assert any("missing attribute 'id'" in m for m in messages)
        assert any("unexpected child" in m for m in messages)
        assert any("exactly one" in m for m in messages)

    def test_locations_are_element_paths(self):
        found = violations('<root name="x"><unique/><leaf/></root>')
        assert [f.location for f in found] == ["/root/leaf"]

    def test_findings_shape(self):
        found = violations("<root><unique/></root>")
        finding = found[0]
        assert isinstance(finding, Finding)
        assert finding.code == "SCH001"
        assert finding.severity == Severity.ERROR

    def test_nested_violations_collected_from_subtrees(self):
        found = violations(
            '<root name="x"><unique/><leaf/><leaf/></root>')
        assert len(found) == 2
        assert all(f.location == "/root/leaf" for f in found)


class TestValidateElement:
    def test_raises_with_all_findings_attached(self):
        with pytest.raises(SchemaError) as err:
            validate_element(ET.fromstring("<root><leaf/></root>"), SPEC)
        assert len(err.value.findings) == 3
        assert "missing attribute 'name'" in str(err.value)
        assert "exactly one" in str(err.value)

    def test_clean_element_passes(self):
        validate_element(ET.fromstring('<root name="x"><unique/></root>'),
                         SPEC)


class TestDescriptorIntegration:
    def test_softpkg_error_reports_all_problems_at_once(self):
        # missing 'vendor' attr AND missing <distribution> in one raise
        with pytest.raises(SchemaError) as err:
            SoftwareDescriptor.from_xml(
                '<softpkg name="X" version="1.0.0">'
                '<license model="free"/></softpkg>')
        assert len(err.value.findings) == 2

    def test_componenttype_paths_point_at_offender(self):
        with pytest.raises(SchemaError) as err:
            ComponentTypeDescriptor.from_xml(
                '<componenttype name="X" lifecycle="session">'
                '<provides name="p"/>'
                '<qos cpu="1" memory="1" bandwidth="0"/>'
                "</componenttype>")
        (finding,) = err.value.findings
        assert finding.location == "/componenttype/provides"
        assert "repoid" in finding.message

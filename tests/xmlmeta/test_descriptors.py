"""Unit tests for XML descriptors, versions and schema validation."""

import pytest

from repro.util.errors import ValidationError
from repro.xmlmeta.descriptors import (
    AssemblyConnection,
    AssemblyDescriptor,
    AssemblyInstance,
    ComponentTypeDescriptor,
    Dependency,
    EventPortDecl,
    ImplementationDescriptor,
    PortDecl,
    QoSSpec,
    SoftwareDescriptor,
)
from repro.xmlmeta.schema import (
    ElementSpec,
    ONE,
    OPT,
    SchemaError,
    parse_and_validate,
)
from repro.xmlmeta.versions import Version, VersionRange


class TestVersion:
    def test_parse_and_str(self):
        v = Version.parse("1.2.3")
        assert (v.major, v.minor, v.patch) == (1, 2, 3)
        assert str(v) == "1.2.3"
        assert str(Version.parse("2.0")) == "2.0.0"

    def test_ordering(self):
        assert Version.parse("1.2.3") < Version.parse("1.10.0")
        assert Version.parse("2.0.0") > Version.parse("1.99.99")
        assert Version.parse("1.0") == Version(1, 0, 0)

    @pytest.mark.parametrize("bad", ["", "1", "a.b", "1.2.3.4", "1.-2"])
    def test_bad_versions_rejected(self, bad):
        with pytest.raises(ValidationError):
            Version.parse(bad)


class TestVersionRange:
    def test_empty_matches_all(self):
        r = VersionRange("")
        assert r.matches(Version(0, 0, 1))
        assert str(r) == "*"

    def test_conjunction(self):
        r = VersionRange(">=1.2, <2.0")
        assert r.matches(Version.parse("1.2.0"))
        assert r.matches(Version.parse("1.9.9"))
        assert not r.matches(Version.parse("1.1.9"))
        assert not r.matches(Version.parse("2.0.0"))

    def test_exact(self):
        r = VersionRange("==1.5")
        assert r.matches(Version.parse("1.5.0"))
        assert not r.matches(Version.parse("1.5.1"))

    def test_bad_constraint_rejected(self):
        with pytest.raises(ValidationError):
            VersionRange("~=1.2")


class TestSchema:
    SPEC = (
        ElementSpec("root", required_attrs=("id",), optional_attrs=("note",))
        .child(ElementSpec("leaf", required_attrs=("v",)), ONE)
        .child(ElementSpec("extra", text=True), OPT)
    )

    def test_valid_document(self):
        parse_and_validate('<root id="1"><leaf v="x"/></root>', self.SPEC)

    def test_missing_required_attr(self):
        with pytest.raises(SchemaError, match="missing attribute"):
            parse_and_validate('<root><leaf v="x"/></root>', self.SPEC)

    def test_unexpected_attr(self):
        with pytest.raises(SchemaError, match="unexpected attribute"):
            parse_and_validate('<root id="1" bogus="y"><leaf v="x"/></root>',
                               self.SPEC)

    def test_unexpected_child(self):
        with pytest.raises(SchemaError, match="unexpected child"):
            parse_and_validate(
                '<root id="1"><leaf v="x"/><weird/></root>', self.SPEC)

    def test_cardinality_one_enforced(self):
        with pytest.raises(SchemaError, match="exactly one"):
            parse_and_validate('<root id="1"/>', self.SPEC)
        with pytest.raises(SchemaError, match="exactly one"):
            parse_and_validate(
                '<root id="1"><leaf v="a"/><leaf v="b"/></root>', self.SPEC)

    def test_text_rules(self):
        with pytest.raises(SchemaError, match="character content"):
            parse_and_validate('<root id="1">hi<leaf v="x"/></root>',
                               self.SPEC)
        parse_and_validate(
            '<root id="1"><leaf v="x"/><extra>ok</extra></root>', self.SPEC)

    def test_malformed_xml(self):
        with pytest.raises(SchemaError, match="malformed"):
            parse_and_validate("<root", self.SPEC)


def sample_software() -> SoftwareDescriptor:
    return SoftwareDescriptor(
        name="VideoDecoder",
        version=Version(1, 4, 2),
        vendor="acme",
        abstract="Decodes synthetic MPEG-like streams.",
        license="pay-per-use",
        cost_per_use=0.01,
        mobility="mobile",
        replication="stateless",
        aggregation="data-parallel",
        dependencies=[
            Dependency("Display", VersionRange(">=1.0")),
            Dependency("StreamSource"),
        ],
        implementations=[
            ImplementationDescriptor("linux", "x86", "corba-lc",
                                     "video.decoder", "bin/linux-x86-corba-lc/decoder"),
            ImplementationDescriptor("palmos", "arm", "corba-lc-micro",
                                     "video.decoder.tiny", "bin/palmos-arm-micro/decoder"),
        ],
    )


def sample_component() -> ComponentTypeDescriptor:
    return ComponentTypeDescriptor(
        name="VideoDecoder",
        description="The paper's motivating bandwidth-heavy component.",
        provides=[PortDecl("frames", "IDL:cscw/FrameSink:1.0")],
        uses=[PortDecl("source", "IDL:cscw/StreamSource:1.0"),
              PortDecl("stats", "IDL:cscw/Stats:1.0", optional=True)],
        emits=[EventPortDecl("decoded", "cscw.frame")],
        consumes=[EventPortDecl("control", "cscw.control")],
        qos=QoSSpec(cpu_units=50.0, memory_mb=32.0, bandwidth_bps=4e6),
        lifecycle="session",
        framework_services=["migration", "events"],
    )


class TestSoftwareDescriptor:
    def test_xml_roundtrip(self):
        sd = sample_software()
        again = SoftwareDescriptor.from_xml(sd.to_xml())
        assert again == sd

    def test_bad_enums_rejected(self):
        with pytest.raises(ValidationError):
            SoftwareDescriptor("X", Version(1, 0), mobility="teleport")
        with pytest.raises(ValidationError):
            SoftwareDescriptor("X", Version(1, 0), replication="psychic")
        with pytest.raises(ValidationError):
            SoftwareDescriptor("X", Version(1, 0), license="stolen")

    def test_empty_name_rejected(self):
        with pytest.raises(ValidationError):
            SoftwareDescriptor("", Version(1, 0))

    def test_implementation_matching(self):
        sd = sample_software()
        impl = sd.implementation_for("linux", "x86", "corba-lc")
        assert impl.entry_point == "video.decoder"
        assert sd.implementation_for("win32", "x86", "corba-lc") is None

    def test_wildcard_implementation(self):
        impl = ImplementationDescriptor("*", "*", "*", "e", "bin/any/x")
        assert impl.matches("beos", "mips", "tao")

    def test_dependency_satisfaction(self):
        dep = Dependency("Display", VersionRange(">=1.0"))
        assert dep.satisfied_by("Display", Version(1, 5))
        assert not dep.satisfied_by("Display", Version(0, 9))
        assert not dep.satisfied_by("Other", Version(1, 5))

    def test_is_mobile(self):
        assert sample_software().is_mobile
        pinned = SoftwareDescriptor("X", Version(1, 0), mobility="pinned")
        assert not pinned.is_mobile


class TestComponentTypeDescriptor:
    def test_xml_roundtrip(self):
        cd = sample_component()
        again = ComponentTypeDescriptor.from_xml(cd.to_xml())
        assert again == cd

    def test_duplicate_port_names_rejected(self):
        with pytest.raises(ValidationError):
            ComponentTypeDescriptor(
                name="X",
                provides=[PortDecl("p", "IDL:a:1.0")],
                uses=[PortDecl("p", "IDL:b:1.0")],
            )

    def test_required_components_excludes_optional(self):
        cd = sample_component()
        assert [p.name for p in cd.required_components()] == ["source"]

    def test_bad_lifecycle_rejected(self):
        with pytest.raises(ValidationError):
            ComponentTypeDescriptor(name="X", lifecycle="eternal")

    def test_qos_fits_within(self):
        need = QoSSpec(cpu_units=10, memory_mb=8, bandwidth_bps=1000)
        have = QoSSpec(cpu_units=100, memory_mb=64, bandwidth_bps=1e6)
        assert need.fits_within(have)
        assert not have.fits_within(need)


class TestAssemblyDescriptor:
    def make(self) -> AssemblyDescriptor:
        return AssemblyDescriptor(
            name="whiteboard-app",
            instances=[
                AssemblyInstance("board", "Whiteboard", VersionRange(">=1.0")),
                AssemblyInstance("gui", "BoardGui"),
            ],
            connections=[
                AssemblyConnection("gui", "model", "board", "surface"),
                AssemblyConnection("gui", "strokes", "board", "stroke-events",
                                   kind="event"),
            ],
        )

    def test_xml_roundtrip(self):
        ad = self.make()
        again = AssemblyDescriptor.from_xml(ad.to_xml())
        assert again == ad

    def test_duplicate_instances_rejected(self):
        with pytest.raises(ValidationError):
            AssemblyDescriptor(
                name="x",
                instances=[AssemblyInstance("a", "C"),
                           AssemblyInstance("a", "D")],
            )

    def test_unknown_connection_endpoint_rejected(self):
        with pytest.raises(ValidationError):
            AssemblyDescriptor(
                name="x",
                instances=[AssemblyInstance("a", "C")],
                connections=[AssemblyConnection("a", "p", "ghost", "q")],
            )

    def test_bad_connection_kind_rejected(self):
        with pytest.raises(ValidationError):
            AssemblyDescriptor(
                name="x",
                instances=[AssemblyInstance("a", "C"),
                           AssemblyInstance("b", "D")],
                connections=[AssemblyConnection("a", "p", "b", "q",
                                                kind="telepathy")],
            )

    def test_bad_endpoint_format_rejected(self):
        xml = ('<assembly name="x">'
               '<instance name="a" component="C" versions=""/>'
               '<connect from="a-noport" to="a.p" kind="interface"/>'
               "</assembly>")
        with pytest.raises(ValidationError):
            AssemblyDescriptor.from_xml(xml)

"""VersionRange edge cases backing the dependency-satisfiability check."""

import pytest

from repro.util.errors import ValidationError
from repro.xmlmeta.versions import Version, VersionRange


def v(text):
    return Version.parse(text)


class TestIsEmpty:
    def test_any_range_is_not_empty(self):
        assert not VersionRange("").is_empty()

    def test_simple_ranges_are_not_empty(self):
        assert not VersionRange(">=1.0").is_empty()
        assert not VersionRange("<2.0").is_empty()
        assert not VersionRange(">=1.0, <2.0").is_empty()

    def test_inverted_range_is_empty(self):
        assert VersionRange(">=2.0, <1.0").is_empty()

    def test_touching_bounds_inclusive_is_not_empty(self):
        r = VersionRange(">=1.5, <=1.5")
        assert not r.is_empty()
        assert r.matches(v("1.5"))

    def test_touching_bounds_exclusive_is_empty(self):
        assert VersionRange(">=1.5, <1.5").is_empty()

    def test_discrete_gap_between_exclusive_bounds(self):
        # no version lies strictly between 1.2.0 and 1.2.1
        assert VersionRange(">1.2.0, <1.2.1").is_empty()
        # ...but 1.2.1 itself fits a half-open range
        assert not VersionRange(">1.2.0, <=1.2.1").is_empty()

    def test_eq_constraint_conflicts(self):
        assert VersionRange("==1.0, ==2.0").is_empty()
        assert VersionRange("==1.0, >=2.0").is_empty()
        assert not VersionRange("==1.5, >=1.0").is_empty()


class TestIntersect:
    def test_any_is_identity(self):
        r = VersionRange(">=1.0")
        assert r.intersect(VersionRange("")) == r
        assert VersionRange("").intersect(r) == r

    def test_intersection_is_conjunction(self):
        merged = VersionRange(">=1.0").intersect(VersionRange("<2.0"))
        assert merged.matches(v("1.5"))
        assert not merged.matches(v("2.0"))
        assert not merged.matches(v("0.9"))

    def test_disjoint_intersection_is_empty(self):
        merged = VersionRange("<1.0").intersect(VersionRange(">=2.0"))
        assert merged.is_empty()

    def test_intersect_narrows_progressively(self):
        merged = (VersionRange(">=1.0")
                  .intersect(VersionRange("<3.0"))
                  .intersect(VersionRange(">=2.0")))
        assert merged.matches(v("2.5"))
        assert not merged.matches(v("1.5"))


class TestParsing:
    def test_bad_constraint_rejected(self):
        with pytest.raises(ValidationError):
            VersionRange("~1.0")

    def test_str_of_any(self):
        assert str(VersionRange("")) == "*"

"""Coverage for registry retargeting and liveness views (PR 8).

Two post-deployment paths that had no direct tests: retargeting a
group onto a replacement MRM while the members run *predictive*
reporters (whose whole point is staying silent — the retarget must
force a fresh report or the new MRM starts blind), and the
``live_hosts()`` soft-state liveness view when a serving MRM's own
host is dead.
"""

from repro.registry.groups import (
    DistributedRegistry,
    RegistryConfig,
    groups_by_cluster,
    groups_by_size,
)
from repro.registry.mrm import MrmAgent
from repro.sim.topology import clustered
from repro.testing import SimRig


class TestRetargetPredictive:
    def deploy(self, seed, **cfg_kw):
        rig = SimRig(clustered(1, 4), seed=seed)
        cfg = RegistryConfig(update_interval=2.0, mode="predictive",
                             prediction_tolerance=1e9, **cfg_kw)
        dr = DistributedRegistry(rig.nodes, cfg)
        dr.deploy(groups_by_cluster(rig.topology.host_ids()))
        return rig, dr

    def test_retarget_forces_fresh_predictive_reports(self):
        """With an enormous tolerance the reporters go silent after the
        first report; retargeting must still repopulate a fresh MRM
        within one update interval (the forced-resend path)."""
        rig, dr = self.deploy(seed=100)
        group = dr.groups["c0"]
        rig.run(until=dr.settle_time())
        # Promote a replacement on a non-serving host, by hand.
        new_host = next(h for h in group.member_hosts
                        if h not in group.mrm_hosts)
        new_agent = MrmAgent(rig.node(new_host), group.group_id,
                             config=dr.mrm_config)
        group.agents = [new_agent]
        group.mrm_hosts = [new_host]
        dr.retarget_group(group)
        assert new_agent.members == {}
        # Less than the keepalive window (2.5 intervals): any report
        # arriving now was forced by the retarget, not by keepalive.
        rig.run(until=rig.env.now + 2 * dr.config.update_interval)
        assert sorted(new_agent.members) == sorted(group.member_hosts)
        for host in group.member_hosts:
            assert dr.reporters[host].mrm_iors == [new_agent.ior]
            assert dr.resolvers[host].mrm_iors == [new_agent.ior]

    def test_supervised_promotion_with_predictive_reporters(self):
        """End-to-end: kill the serving MRM host; the supervisor
        promotes a replacement and the predictive members resync."""
        rig, dr = self.deploy(seed=101, supervise=True,
                              supervise_interval=2.0)
        group = dr.groups["c0"]
        rig.run(until=dr.settle_time())
        victim = group.mrm_hosts[0]
        rig.topology.set_host_state(victim, alive=False)
        rig.run(until=rig.env.now + 20.0)
        assert dr.supervisors[0].promotions
        replacement = group.agents[-1]
        assert replacement.node.host_id != victim
        live_members = [h for h in group.member_hosts if h != victim]
        for host in live_members:
            assert host in replacement.members


class TestLiveHostsWithDeadMrm:
    def test_dead_serving_mrm_drops_from_live_view(self):
        rig = SimRig(clustered(1, 6), seed=102)
        cfg = RegistryConfig(update_interval=2.0)
        dr = DistributedRegistry(rig.nodes, cfg)
        dr.deploy(groups_by_size(rig.topology.host_ids(), 3))
        rig.run(until=dr.settle_time())
        assert dr.live_hosts() == set(rig.topology.host_ids())
        victim = dr.groups["g1"].mrm_hosts[0]
        rig.topology.set_host_state(victim, alive=False)
        # Immediately after the crash — before any sweep — the dead
        # MRM host must already be gone from the live view: a crashed
        # agent's tables are wiped and its "serving host is alive by
        # construction" shortcut no longer applies.
        live = dr.live_hosts()
        assert victim not in live
        # The other group's soft state is untouched.
        for host in dr.groups["g0"].member_hosts:
            assert host in live

"""Tests for the fetch-vs-remote materialization decision (§2.4.3).

"The network can decide either to instantiate the component in its
original node or to fetch the component to be locally installed,
instantiated and run.  For example, a component decoding a MPEG video
stream would work much faster if it is installed locally."
"""

import pytest

from repro.registry.groups import DistributedRegistry, RegistryConfig
from repro.registry.queries import (
    FETCH_BANDWIDTH_THRESHOLD,
    FloodResolver,
)
from repro.testing import COUNTER_IFACE, SimRig, counter_package, star_rig
from repro.util.errors import ConfigurationError
from repro.xmlmeta.descriptors import QoSSpec


def deploy(placement: str, seed=70, component_kwargs=None):
    rig = star_rig(2, seed=seed)
    hub = rig.node("hub")
    hub.install_package(counter_package(**(component_kwargs or {})))
    cfg = RegistryConfig(update_interval=1.0, placement=placement)
    dr = DistributedRegistry(rig.nodes, cfg)
    dr.deploy({"g0": rig.topology.host_ids()})
    rig.run(until=dr.settle_time())
    return rig, hub


class TestPlacementPolicies:
    def test_remote_policy_instantiates_at_origin(self):
        rig, hub = deploy("remote")
        requester = rig.node("h0")
        ior = rig.run(until=requester.request_component(
            COUNTER_IFACE.repo_id))
        assert ior.host_id == "hub"
        assert not requester.repository.is_installed("Counter")
        assert rig.metrics.get("resolver.remote_instances") == 1

    def test_fetch_policy_installs_locally(self):
        rig, hub = deploy("fetch")
        requester = rig.node("h0")
        ior = rig.run(until=requester.request_component(
            COUNTER_IFACE.repo_id))
        assert ior.host_id == "h0"
        assert requester.repository.is_installed("Counter")
        assert rig.metrics.get("resolver.fetched") == 1

    def test_auto_policy_fetches_only_bandwidth_heavy_components(self):
        rig, hub = deploy("auto")
        requester = rig.node("h0")
        # modest bandwidth need -> use remotely
        ior = rig.run(until=requester.request_component(
            COUNTER_IFACE.repo_id, qos=QoSSpec(bandwidth_bps=1000.0)))
        assert ior.host_id == "hub"

        rig2, hub2 = deploy("auto", seed=71)
        requester2 = rig2.node("h0")
        # stream-class bandwidth -> fetch next to the consumer
        ior2 = rig2.run(until=requester2.request_component(
            COUNTER_IFACE.repo_id,
            qos=QoSSpec(bandwidth_bps=FETCH_BANDWIDTH_THRESHOLD * 2)))
        assert ior2.host_id == "h0"
        assert requester2.repository.is_installed("Counter")

    def test_pinned_component_never_fetched(self):
        rig, hub = deploy("fetch", component_kwargs={
            "mobility": "pinned"})
        requester = rig.node("h0")
        ior = rig.run(until=requester.request_component(
            COUNTER_IFACE.repo_id))
        # pinned: must be used remotely from where it is installed
        assert ior.host_id == "hub"
        assert not requester.repository.is_installed("Counter")

    def test_invalid_policy_rejected(self):
        rig = star_rig(1)
        with pytest.raises(ConfigurationError):
            FloodResolver(rig.node("hub"), ["hub"],
                          RegistryConfig().mrm_config(),
                          placement="teleport")


class TestFloodQoS:
    def test_flood_respects_cpu_filter(self):
        rig = star_rig(2, seed=72)
        hub = rig.node("hub")
        hub.install_package(counter_package())
        flood = FloodResolver(rig.node("h0"), rig.topology.host_ids(),
                              RegistryConfig().mrm_config())
        from repro.orb.exceptions import TRANSIENT
        with pytest.raises(TRANSIENT):
            rig.run(until=flood.resolve(COUNTER_IFACE.repo_id,
                                        qos=QoSSpec(cpu_units=1e9)))

    def test_flood_reuses_running_instances(self):
        rig = star_rig(2, seed=73)
        hub = rig.node("hub")
        hub.install_package(counter_package())
        inst = hub.container.create_instance("Counter")
        flood = FloodResolver(rig.node("h0"), rig.topology.host_ids(),
                              RegistryConfig().mrm_config())
        ior = rig.run(until=flood.resolve(COUNTER_IFACE.repo_id))
        assert ior == inst.ports.facet("value").ior

"""Federated registry: ring, records, gossip, churn (PR 8)."""

import pytest

from repro.registry.federation import (
    FederatedRegistry,
    FederationConfig,
    HostBeacon,
    MembershipTable,
    ProviderRecord,
    RecordStore,
    ShardRing,
)
from repro.registry.groups import (
    DistributedRegistry,
    RegistryConfig,
    groups_by_cluster,
)
from repro.sim.topology import clustered
from repro.testing import COUNTER_IFACE, SimRig, counter_package
from repro.util.errors import ConfigurationError


def record(repo_id="IDL:demo/X:1.0", host="h0", epoch=1.0, **kw):
    base = dict(repo_id=repo_id, host=host, component="X", version="1.0",
                running_ior="", mobility="mobile", free_cpu=100.0,
                free_memory=256.0, is_tiny=False, epoch=epoch)
    base.update(kw)
    return ProviderRecord(**base)


class TestShardRing:
    def build(self, n=8, vnodes=32):
        ring = ShardRing(vnodes=vnodes)
        for i in range(n):
            ring.stage_add(f"h{i}")
        ring.rebalance()
        return ring

    def test_lookup_is_deterministic(self):
        a, b = self.build(), self.build()
        for key in ("IDL:demo/A:1.0", "IDL:demo/B:1.0", "host:h3"):
            assert a.owners(key, 3) == b.owners(key, 3)

    def test_owners_are_distinct_hosts(self):
        ring = self.build(n=4)
        owners = ring.owners("IDL:demo/A:1.0", 3)
        assert len(owners) == len(set(owners)) == 3

    def test_replication_capped_by_population(self):
        ring = self.build(n=2)
        assert len(ring.owners("k", 5)) == 2

    def test_membership_is_staged_until_rebalance(self):
        ring = self.build(n=4)
        before = ring.owners("IDL:demo/A:1.0", 2)
        ring.stage_add("h99")
        assert ring.pending
        assert ring.owners("IDL:demo/A:1.0", 2) == before
        assert "h99" not in ring
        ring.rebalance()
        assert not ring.pending
        assert "h99" in ring

    def test_rebalance_moves_a_bounded_fraction(self):
        """Consistent hashing: dropping one of n owners moves ~1/n of
        the keyspace, nowhere near a full reshuffle."""
        ring = self.build(n=8)
        ring.stage_remove("h3")
        report = ring.rebalance()
        assert report.removed == ("h3",)
        assert 0.0 < report.moved_fraction < 0.35
        # Keys not owned by h3 kept their owner.
        assert "h3" not in ring

    def test_load_spreads_over_owners(self):
        ring = self.build(n=8, vnodes=64)
        keys = [f"IDL:demo/C{i}:1.0" for i in range(400)]
        split = ring.load_split(keys)
        assert sum(split.values()) == 400
        assert all(count > 0 for count in split.values())
        assert max(split.values()) < 4 * (400 // 8)

    def test_membership_errors(self):
        ring = self.build(n=2)
        with pytest.raises(ConfigurationError):
            ring.stage_add("h0")            # already present
        with pytest.raises(ConfigurationError):
            ring.stage_remove("h42")        # never added
        with pytest.raises(ConfigurationError):
            ShardRing(vnodes=0)
        empty = ShardRing()
        with pytest.raises(ConfigurationError):
            empty.owners("k")


class TestRecordMerge:
    def test_higher_epoch_wins(self):
        store = RecordStore()
        assert store.apply(record(epoch=1.0), now=1.0)
        assert store.apply(record(epoch=2.0, free_cpu=50.0), now=2.0)
        assert not store.apply(record(epoch=1.5), now=3.0)
        (rec,) = store.lookup("IDL:demo/X:1.0")
        assert rec.free_cpu == 50.0

    def test_merge_is_order_independent(self):
        a, b = RecordStore(), RecordStore()
        recs = [record(epoch=e) for e in (3.0, 1.0, 2.0)]
        for r in recs:
            a.apply(r, now=0.0)
        for r in reversed(recs):
            b.apply(r, now=0.0)
        assert a.lookup("IDL:demo/X:1.0") == b.lookup("IDL:demo/X:1.0")

    def test_epoch_tie_broken_by_host_id(self):
        older = record(host="ha", epoch=5.0)
        newer = record(host="hb", epoch=5.0)
        assert newer.beats(older)
        assert not older.beats(newer)
        tie = HostBeacon("hb", 5.0, alive=False, owner=True)
        assert tie.beats(HostBeacon("ha", 5.0, alive=True, owner=True))

    def test_retired_records_hidden_from_lookup(self):
        store = RecordStore()
        store.apply(record(epoch=1.0), now=1.0)
        store.apply(record(epoch=2.0, retired=True), now=2.0)
        assert store.lookup("IDL:demo/X:1.0") == []

    def test_changed_since_and_sweep(self):
        store = RecordStore()
        store.apply(record(host="h0", epoch=1.0), now=1.0)
        store.apply(record(host="h1", epoch=5.0), now=5.0)
        assert {r.host for r in store.changed_since(5.0)} == {"h1"}
        assert store.sweep(cutoff=2.0) == 1
        assert len(store) == 1
        assert {r.host for r in store.lookup("IDL:demo/X:1.0")} == {"h1"}

    def test_membership_liveness_window(self):
        table = MembershipTable()
        table.apply(HostBeacon("h0", 10.0, alive=True, owner=True))
        table.apply(HostBeacon("h1", 2.0, alive=True, owner=False))
        table.apply(HostBeacon("h2", 10.0, alive=False, owner=True))
        assert table.live(now=12.0, timeout=5.0) == {"h0"}
        assert table.live_owners(now=12.0, timeout=15.0) == ["h0"]
        table.mark_dead("h0", now=13.0)
        assert table.live(now=13.0, timeout=5.0) == set()


def federated_rig(seed=120, hosts=8, provider="c0h1", **cfg_kw):
    cfg_kw.setdefault("owners", 3)
    cfg_kw.setdefault("replication", 2)
    cfg_kw.setdefault("update_interval", 2.0)
    cfg_kw.setdefault("gossip_interval", 1.0)
    rig = SimRig(clustered(1, hosts), seed=seed)
    rig.node(provider).install_package(counter_package())
    fed = FederatedRegistry(rig.nodes, FederationConfig(**cfg_kw))
    fed.deploy()
    return rig, fed


class TestFederationEndToEnd:
    def test_resolve_through_shard_neighborhood(self):
        rig, fed = federated_rig()
        rig.run(until=fed.settle_time())
        ior = rig.run(until=fed.resolvers["c0h7"].resolve(
            COUNTER_IFACE.repo_id))
        assert ior.host_id == "c0h1"

    def test_records_live_only_on_their_owners(self):
        rig, fed = federated_rig()
        rig.run(until=fed.settle_time() + 8.0)
        owners = set(fed.ring.owners(COUNTER_IFACE.repo_id,
                                     fed.config.replication))
        for host, agent in fed.agents.items():
            found = agent.store.lookup(COUNTER_IFACE.repo_id)
            if host in owners:
                assert [r.host for r in found] == ["c0h1"]
            else:
                assert found == []

    def test_running_instance_is_reused(self):
        rig, fed = federated_rig(seed=121)
        instance = rig.node("c0h1").container.create_instance("Counter")
        running_ior = instance.ports.facets()[0].ior
        rig.run(until=fed.settle_time())
        ior = rig.run(until=fed.resolvers["c0h6"].resolve(
            COUNTER_IFACE.repo_id))
        assert ior == running_ior

    def test_peer_discovery_is_epidemic(self):
        """Seeded with one peer each, every owner still learns the
        whole owner population through gossiped beacons."""
        rig, fed = federated_rig(seed=122, owners=4, seed_peer_count=1)
        rig.run(until=fed.settle_time() + 6.0)
        all_owners = sorted(fed.agents)
        for agent in fed.agents.values():
            assert agent.membership.live_owners(
                rig.env.now, fed.config.member_timeout) == all_owners

    def test_live_hosts_tracks_member_death(self):
        rig, fed = federated_rig(seed=123)
        rig.run(until=fed.settle_time())
        assert fed.live_hosts() == set(rig.topology.host_ids())
        victim = "c0h5"
        assert victim not in fed.agents
        rig.topology.set_host_state(victim, alive=False)
        rig.run(until=rig.env.now + 3.5 * fed.config.update_interval)
        assert victim not in fed.live_hosts()


class TestFederationChurn:
    def test_lookup_survives_owner_loss(self):
        rig, fed = federated_rig(seed=124)
        rig.run(until=fed.settle_time())
        victim = fed.ring.owners(COUNTER_IFACE.repo_id, 1)[0]
        rig.topology.set_host_state(victim, alive=False)
        report = fed.remove_owner(victim)
        assert victim in report.removed
        rig.run(until=rig.env.now + 8.0)
        assert fed.records_converged(COUNTER_IFACE.repo_id)
        ior = rig.run(until=fed.resolvers["c0h7"].resolve(
            COUNTER_IFACE.repo_id))
        assert ior.host_id == "c0h1"

    def test_rejoined_owner_recovers_via_anti_entropy(self):
        rig, fed = federated_rig(seed=125)
        rig.run(until=fed.settle_time())
        victim = fed.ring.owners(COUNTER_IFACE.repo_id, 1)[0]
        rig.topology.set_host_state(victim, alive=False)
        fed.remove_owner(victim)
        rig.run(until=rig.env.now + 6.0)
        rig.topology.set_host_state(victim, alive=True)
        fed.add_owner(victim)
        # Bounded convergence: a few full-sync periods repopulate the
        # wiped store and re-merge the membership views.
        rig.run(until=rig.env.now
                + 3 * fed.config.full_sync_every
                * fed.config.gossip_interval)
        agent = fed.agents[victim]
        assert agent.store.lookup(COUNTER_IFACE.repo_id)
        assert fed.owner_views_agree()
        assert fed.records_converged(COUNTER_IFACE.repo_id)

    def test_dead_owner_suspected_by_peers(self):
        rig, fed = federated_rig(seed=126)
        rig.run(until=fed.settle_time())
        victim = sorted(fed.agents)[0]
        rig.topology.set_host_state(victim, alive=False)
        rig.run(until=rig.env.now + 3.5 * fed.config.update_interval)
        for host, agent in fed.agents.items():
            if host == victim:
                continue
            assert victim not in agent.membership.live_owners(
                rig.env.now, fed.config.member_timeout)


class TestFederationFrontDoor:
    def test_registry_config_federation_delegates(self):
        rig = SimRig(clustered(2, 3), seed=127)
        rig.node("c1h1").install_package(counter_package())
        dr = DistributedRegistry(rig.nodes, RegistryConfig(
            update_interval=2.0, federation=True,
            federation_owners=2, replicas=2))
        dr.deploy(groups_by_cluster(rig.topology.host_ids()))
        assert dr.federation is not None
        assert not dr.groups          # no MRM hierarchy stood up
        rig.run(until=dr.settle_time())
        assert dr.live_hosts() == set(rig.topology.host_ids())
        ior = rig.run(until=dr.resolvers["c1h0"].resolve(
            COUNTER_IFACE.repo_id))
        assert ior.host_id == "c1h1"

    def test_federation_config_validation(self):
        with pytest.raises(ConfigurationError):
            FederationConfig(owners=0)
        with pytest.raises(ConfigurationError):
            FederationConfig(replication=0)
        with pytest.raises(ConfigurationError):
            FederationConfig(fanout=0)

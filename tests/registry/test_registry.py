"""Tests for the Distributed Registry: MRMs, reporters, queries, failover."""

import pytest

from repro.orb.exceptions import TRANSIENT
from repro.registry.groups import (
    DistributedRegistry,
    RegistryConfig,
    groups_by_cluster,
    groups_by_size,
)
from repro.registry.mrm import MrmAgent, MrmConfig
from repro.registry.prediction import EwmaSlope, PredictiveReporter
from repro.registry.queries import FloodResolver, select_candidate
from repro.registry.softstate import SoftStateReporter
from repro.registry.strongstate import StrongStateReporter
from repro.registry.view import Aggregate, Candidate, NodeView
from repro.sim.topology import clustered
from repro.testing import COUNTER_IFACE, SimRig, counter_package, star_rig
from repro.util.errors import ConfigurationError
from repro.xmlmeta.descriptors import QoSSpec


class TestNodeView:
    def test_collect_and_roundtrip(self):
        rig = star_rig(1)
        hub = rig.node("hub")
        hub.install_package(counter_package())
        hub.container.create_instance("Counter")
        view = NodeView.collect(hub)
        assert view.snapshot.host == "hub"
        assert view.components[0].name == "Counter"
        assert len(view.running) == 1
        assert NodeView.from_value(view.to_value()) == view
        assert view.provides(COUNTER_IFACE.repo_id)
        assert not view.provides("IDL:none:1.0")

    def test_candidates_from_view(self):
        rig = star_rig(1)
        hub = rig.node("hub")
        hub.install_package(counter_package())
        view = NodeView.collect(hub)
        (cand,) = Candidate.from_view(view, COUNTER_IFACE.repo_id, "g0")
        assert cand.host == "hub"
        assert not cand.is_running
        assert cand.group == "g0"
        hub.container.create_instance("Counter")
        (cand2,) = Candidate.from_view(NodeView.collect(hub),
                                       COUNTER_IFACE.repo_id)
        assert cand2.is_running


class TestSelectCandidate:
    def c(self, **kw):
        base = dict(host="h", component="C", version="1.0.0",
                    running_ior="", mobility="mobile", free_cpu=100.0,
                    free_memory=64.0, is_tiny=False)
        base.update(kw)
        return Candidate(**base)

    def test_running_beats_installed(self):
        a = self.c(host="a", running_ior="IOR:x@a/p/k", free_cpu=1.0)
        b = self.c(host="b", free_cpu=1000.0)
        assert select_candidate([a, b], prefer_host="z") is a

    def test_local_host_preferred(self):
        a = self.c(host="me", free_cpu=10.0)
        b = self.c(host="other", free_cpu=1000.0)
        assert select_candidate([a, b], prefer_host="me") is a

    def test_tiny_avoided(self):
        a = self.c(host="pda", is_tiny=True, free_cpu=1000.0)
        b = self.c(host="desk", free_cpu=5.0)
        assert select_candidate([a, b], prefer_host="z") is b

    def test_free_cpu_tiebreak(self):
        a = self.c(host="a", free_cpu=10.0)
        b = self.c(host="b", free_cpu=20.0)
        assert select_candidate([a, b], prefer_host="z") is b

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            select_candidate([], prefer_host="z")


class TestGroupFormation:
    def test_groups_by_cluster(self):
        hosts = ["c0h0", "c0h1", "c1h0", "c1h1", "lonely"]
        groups = groups_by_cluster(hosts)
        assert groups == {"c0": ["c0h0", "c0h1"],
                          "c1": ["c1h0", "c1h1"],
                          "misc": ["lonely"]}

    def test_groups_by_size(self):
        groups = groups_by_size([f"h{i}" for i in range(5)], 2)
        assert groups == {"g0": ["h0", "h1"], "g1": ["h2", "h3"],
                          "g2": ["h4"]}
        with pytest.raises(ConfigurationError):
            groups_by_size(["a"], 0)

    def test_config_validation(self):
        with pytest.raises(ConfigurationError):
            RegistryConfig(mode="psychic")
        with pytest.raises(ConfigurationError):
            RegistryConfig(replicas=0)


class TestSoftState:
    def deploy(self, mode="soft", **cfg_kw):
        rig = SimRig(clustered(2, 3), seed=3)
        rig.node("c1h2").install_package(counter_package())
        cfg = RegistryConfig(update_interval=2.0, mode=mode, **cfg_kw)
        dr = DistributedRegistry(rig.nodes, cfg)
        dr.deploy(groups_by_cluster(rig.topology.host_ids()))
        return rig, dr

    def test_members_populate(self):
        rig, dr = self.deploy()
        rig.run(until=dr.settle_time())
        mrm = dr.groups["c0"].agents[0]
        assert sorted(mrm.members) == ["c0h0", "c0h1", "c0h2"]

    def test_member_expires_after_crash(self):
        rig, dr = self.deploy()
        rig.run(until=dr.settle_time())
        rig.topology.set_host_state("c0h2", alive=False)
        rig.run(until=rig.env.now + 4 * 2.0)
        mrm = dr.groups["c0"].agents[0]
        assert "c0h2" not in mrm.members
        assert mrm.expired_members >= 1

    def test_member_rejoins_after_restart(self):
        rig, dr = self.deploy()
        rig.run(until=dr.settle_time())
        rig.topology.set_host_state("c0h2", alive=False)
        rig.run(until=rig.env.now + 8.0)
        rig.topology.set_host_state("c0h2", alive=True)
        rig.run(until=rig.env.now + 4.0)
        assert "c0h2" in dr.groups["c0"].agents[0].members

    def test_root_aggregates_all_groups(self):
        rig, dr = self.deploy()
        rig.run(until=dr.settle_time())
        root = dr.root.agents[0]
        assert sorted(root.children) == ["c0", "c1"]
        agg = root.children["c1"].aggregate
        assert COUNTER_IFACE.repo_id in agg.repo_ids
        assert agg.member_count == 3

    def test_mrm_crash_wipes_and_recovers_soft_state(self):
        rig, dr = self.deploy()
        rig.run(until=dr.settle_time())
        mrm = dr.groups["c0"].agents[0]
        host = mrm.node.host_id
        rig.topology.set_host_state(host, alive=False)
        assert mrm.members == {}
        rig.topology.set_host_state(host, alive=True)
        rig.run(until=rig.env.now + 5.0)
        assert len(mrm.members) == 3  # repopulated from reports

    def test_strong_mode_sends_more(self):
        def bytes_for(mode):
            rig, dr = self.deploy(mode=mode)
            rig.run(until=20.0)
            meter = ("registry.strong" if mode == "strong"
                     else "registry.soft")
            return rig.metrics.get(f"{meter}.bytes")
        assert bytes_for("strong") > 2 * bytes_for("soft")


class TestHierarchicalQueries:
    def deploy(self):
        rig = SimRig(clustered(3, 3), seed=5)
        rig.node("c2h2").install_package(counter_package())
        cfg = RegistryConfig(update_interval=2.0, replicas=1)
        dr = DistributedRegistry(rig.nodes, cfg)
        dr.deploy(groups_by_cluster(rig.topology.host_ids()))
        rig.run(until=dr.settle_time())
        return rig, dr

    def test_same_group_hit_stays_local(self):
        rig, dr = self.deploy()
        before = rig.metrics.get("registry.hier.msgs")
        ior = rig.run(until=rig.node("c2h0").request_component(
            COUNTER_IFACE.repo_id))
        assert ior.host_id == "c2h2"

    def test_cross_group_query_escalates(self):
        rig, dr = self.deploy()
        ior = rig.run(until=rig.node("c0h1").request_component(
            COUNTER_IFACE.repo_id))
        assert ior.host_id == "c2h2"
        assert rig.metrics.get("registry.query.msgs") >= 3

    def test_unsatisfiable_query_fails(self):
        rig, dr = self.deploy()
        with pytest.raises(TRANSIENT):
            rig.run(until=rig.node("c0h1").request_component(
                "IDL:none:1.0"))

    def test_qos_filter_respected(self):
        rig, dr = self.deploy()
        with pytest.raises(TRANSIENT):
            rig.run(until=rig.node("c0h1").request_component(
                COUNTER_IFACE.repo_id, qos=QoSSpec(cpu_units=1e9)))

    def test_second_request_reuses_instance(self):
        rig, dr = self.deploy()
        ior1 = rig.run(until=rig.node("c0h1").request_component(
            COUNTER_IFACE.repo_id))
        rig.run(until=rig.env.now + 2 * 2.0 + 1)  # let views refresh
        ior2 = rig.run(until=rig.node("c1h1").request_component(
            COUNTER_IFACE.repo_id))
        assert ior1 == ior2


class TestReplicatedMrms:
    def test_query_fails_over_to_replica(self):
        rig = SimRig(clustered(1, 4), seed=7)
        rig.node("c0h3").install_package(counter_package())
        cfg = RegistryConfig(update_interval=2.0, replicas=2,
                             query_timeout=1.0)
        dr = DistributedRegistry(rig.nodes, cfg)
        dr.deploy(groups_by_cluster(rig.topology.host_ids()))
        rig.run(until=dr.settle_time())
        rig.topology.set_host_state("c0h0", alive=False)  # primary MRM
        ior = rig.run(until=rig.node("c0h2").request_component(
            COUNTER_IFACE.repo_id))
        assert ior is not None
        assert rig.metrics.get("resolver.mrm_failover") >= 1

    def test_supervisor_promotes_replacement(self):
        rig = SimRig(clustered(1, 5), seed=8)
        rig.node("c0h4").install_package(counter_package())
        cfg = RegistryConfig(update_interval=2.0, replicas=1,
                             query_timeout=1.0, supervise=True,
                             supervise_interval=3.0)
        dr = DistributedRegistry(rig.nodes, cfg)
        dr.deploy(groups_by_cluster(rig.topology.host_ids()))
        rig.run(until=dr.settle_time())
        old_mrm = dr.groups["c0"].mrm_hosts[0]
        rig.topology.set_host_state(old_mrm, alive=False)
        rig.run(until=rig.env.now + 30.0)
        sup = dr.supervisors[0]
        assert len(sup.promotions) == 1
        new_host = dr.groups["c0"].mrm_hosts[0]
        assert new_host != old_mrm
        # resolution works against the promoted MRM
        rig.run(until=rig.env.now + 5.0)
        ior = rig.run(until=rig.node("c0h2").request_component(
            COUNTER_IFACE.repo_id))
        assert ior is not None


class TestPrediction:
    def test_ewma_slope_tracks_linear_drift(self):
        model = EwmaSlope(alpha=0.5)
        for t in range(10):
            model.observe(float(t), 100.0 - 3.0 * t)
        assert model.slope == pytest.approx(-3.0, abs=0.5)

    def test_predictive_sends_fewer_reports_when_stable(self):
        def reports(mode):
            rig = star_rig(4, seed=9)
            cfg = RegistryConfig(update_interval=1.0, mode=mode,
                                 prediction_tolerance=20.0)
            dr = DistributedRegistry(rig.nodes, cfg)
            dr.deploy({"g0": rig.topology.host_ids()})
            rig.run(until=60.0)
            meter = "registry.pred" if mode == "predictive" else "registry.soft"
            return rig.metrics.get(f"{meter}.msgs")
        assert reports("predictive") < reports("soft") / 2

    def test_predictive_reacts_to_change(self):
        rig = star_rig(2, seed=10)
        hub = rig.node("hub")
        hub.install_package(counter_package())
        cfg = RegistryConfig(update_interval=1.0, mode="predictive",
                             prediction_tolerance=20.0)
        dr = DistributedRegistry(rig.nodes, cfg)
        dr.deploy({"g0": rig.topology.host_ids()})
        rig.run(until=20.0)
        sent_before = dr.reporters["hub"].reports_sent
        # a generation change (new instance) must force a report
        hub.container.create_instance("Counter")
        rig.run(until=rig.env.now + 2.5)
        assert dr.reporters["hub"].reports_sent > sent_before

    def test_mrm_extrapolates_model(self):
        rig = star_rig(1, seed=11)
        hub = rig.node("hub")
        mrm = MrmAgent(hub, "g0", config=MrmConfig(update_interval=100.0))
        view = NodeView.collect(hub)
        mrm.accept_report("hub", view, cpu_slope=-10.0)
        rig.run(until=5.0)
        rec = mrm.members["hub"]
        extrapolated = mrm._member_free_cpu(rec)
        assert extrapolated == pytest.approx(
            view.snapshot.cpu_available - 50.0)


class TestFloodBaseline:
    def test_flood_resolves_but_costs_more_messages(self):
        rig = SimRig(clustered(3, 3), seed=12)
        rig.node("c2h2").install_package(counter_package())
        cfg = RegistryConfig(update_interval=2.0)
        dr = DistributedRegistry(rig.nodes, cfg)
        dr.deploy(groups_by_cluster(rig.topology.host_ids()))
        rig.run(until=dr.settle_time())

        hier_before = rig.metrics.get("registry.query.msgs")
        rig.run(until=rig.node("c0h1").request_component(
            COUNTER_IFACE.repo_id))
        hier_msgs = rig.metrics.get("registry.query.msgs") - hier_before

        flood = FloodResolver(rig.node("c0h2"), rig.topology.host_ids(),
                              cfg.mrm_config())
        flood_before = rig.metrics.get("registry.flood.msgs")
        rig.run(until=flood.resolve(COUNTER_IFACE.repo_id))
        flood_msgs = rig.metrics.get("registry.flood.msgs") - flood_before
        assert flood_msgs > hier_msgs

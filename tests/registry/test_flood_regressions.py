"""Regression tests for FloodResolver candidate filtering (PR 8).

Three pre-PR bugs: a host whose resource-snapshot call failed was
discarded even when it reported a *running* provider; a running
provider was filtered out for lacking CPU headroom it does not need;
and ``qos.memory_mb`` was silently ignored while ``qos.cpu_units`` was
enforced.  Plus the materialization guard: a candidate with an empty
component name (running-only answer) must fail cleanly if it is ever
selected while not running.
"""

import pytest

from repro.orb.exceptions import TRANSIENT
from repro.registry.mrm import MrmConfig
from repro.registry.queries import FloodResolver
from repro.registry.view import Candidate, qos_admits
from repro.testing import COUNTER_IFACE, counter_package, star_rig
from repro.xmlmeta.descriptors import QoSSpec


def flood_rig(seed=80):
    """hub + 2 leaves; h0 carries the Counter, hub resolves."""
    rig = star_rig(2, seed=seed)
    rig.node("h0").install_package(counter_package())
    resolver = FloodResolver(rig.node("hub"), rig.topology.host_ids(),
                             MrmConfig(query_timeout=1.0))
    return rig, resolver


class TestSnapshotFailureKeepsRunningProvider:
    def test_running_provider_survives_snapshot_failure(self):
        rig, resolver = flood_rig()
        h0 = rig.node("h0")
        instance = h0.container.create_instance("Counter")
        running_ior = instance.ports.facets()[0].ior
        # The resource manager's servant goes away: every snapshot call
        # to h0 now fails with a SystemException.
        h0.orb.adapter("node").deactivate("resources")
        ior = rig.run(until=resolver.resolve(COUNTER_IFACE.repo_id))
        assert ior == running_ior

    def test_installed_only_host_still_needs_snapshot(self):
        rig, resolver = flood_rig()
        # No running instance: with the snapshot unavailable the host
        # cannot prove headroom, so it must NOT be used to instantiate.
        rig.node("h0").orb.adapter("node").deactivate("resources")
        with pytest.raises(TRANSIENT):
            rig.run(until=resolver.resolve(COUNTER_IFACE.repo_id))


class TestRunningProviderNeedsNoHeadroom:
    def test_cpu_filter_exempts_running_instance(self):
        rig, resolver = flood_rig(seed=81)
        h0 = rig.node("h0")
        instance = h0.container.create_instance("Counter")
        running_ior = instance.ports.facets()[0].ior
        # Demand more CPU than any host has free: instantiating anywhere
        # is impossible, but the running instance is reusable as-is.
        ior = rig.run(until=resolver.resolve(
            COUNTER_IFACE.repo_id, qos=QoSSpec(cpu_units=1e9)))
        assert ior == running_ior

    def test_memory_filter_exempts_running_instance(self):
        rig, resolver = flood_rig(seed=82)
        h0 = rig.node("h0")
        instance = h0.container.create_instance("Counter")
        running_ior = instance.ports.facets()[0].ior
        ior = rig.run(until=resolver.resolve(
            COUNTER_IFACE.repo_id, qos=QoSSpec(memory_mb=1e9)))
        assert ior == running_ior


class TestMemoryConstraintEnforced:
    def test_unsatisfiable_memory_demand_fails(self):
        rig, resolver = flood_rig(seed=83)
        # Installed but not running; no host has 1e9 MB free, so the
        # query must fail instead of placing an instance that cannot fit.
        with pytest.raises(TRANSIENT):
            rig.run(until=resolver.resolve(
                COUNTER_IFACE.repo_id, qos=QoSSpec(memory_mb=1e9)))

    def test_satisfiable_memory_demand_resolves(self):
        rig, resolver = flood_rig(seed=84)
        ior = rig.run(until=resolver.resolve(
            COUNTER_IFACE.repo_id, qos=QoSSpec(memory_mb=1.0)))
        assert ior.host_id == "h0"

    def test_qos_admits_is_symmetric(self):
        qos = QoSSpec(cpu_units=10.0, memory_mb=10.0)
        assert qos_admits(10.0, 10.0, qos)
        assert not qos_admits(5.0, 100.0, qos)
        assert not qos_admits(100.0, 5.0, qos)
        assert qos_admits(0.0, 0.0, QoSSpec())


class TestEmptyComponentMaterialization:
    def test_running_only_host_resolved_by_reuse(self):
        """Package removed after instantiation: names=[], running=[ior]."""
        rig, resolver = flood_rig(seed=85)
        h0 = rig.node("h0")
        instance = h0.container.create_instance("Counter")
        running_ior = instance.ports.facets()[0].ior
        cls = h0.repository.providers_of(COUNTER_IFACE.repo_id)[0]
        h0.repository.remove(cls.name, cls.version)
        ior = rig.run(until=resolver.resolve(COUNTER_IFACE.repo_id))
        assert ior == running_ior

    def test_nameless_candidate_fails_cleanly(self, monkeypatch):
        """A non-running candidate with component='' must raise
        TRANSIENT from materialization, not crash the container agent
        with a nonsense create_instance('')."""
        rig, resolver = flood_rig(seed=86)

        def fake_find(repo_id, qos):
            return [Candidate(host="h1", component="", version="",
                              running_ior="", mobility="mobile",
                              free_cpu=1000.0, free_memory=1000.0,
                              is_tiny=False)]
            yield  # pragma: no cover

        monkeypatch.setattr(resolver, "_find", fake_find)
        with pytest.raises(TRANSIENT, match="installable"):
            rig.run(until=resolver.resolve(COUNTER_IFACE.repo_id))

"""Regression tests for the soft-state reporting bugs (ISSUE 2).

Each of these fails on the pre-fix code:

1. a restarted node waited a full phase offset before its first report,
   so it stayed invisible to the MRM long after reconnecting;
2. a lost reply to an untimed invoke stranded its pending-reply entry
   forever (reports themselves are now fire-and-forget oneways, which
   this file also pins down).
"""

import dataclasses

import pytest

from repro.orb.core import InterfaceDef, Servant, op
from repro.orb.exceptions import TIMEOUT
from repro.orb.typecodes import tc_long
from repro.registry.mrm import MrmAgent, MrmConfig
from repro.registry.softstate import SoftStateReporter
from repro.sim.topology import star
from repro.testing import SimRig

SLEEPY = InterfaceDef("IDL:test/Sleepy:1.0", "Sleepy", operations=[
    op("nap", [], tc_long),
])


class SleepyServant(Servant):
    _interface = SLEEPY

    def __init__(self, env):
        self.env = env

    def nap(self):
        yield self.env.timeout(1000.0)
        return 0


class TestRestartReregistration:
    def test_restarted_node_reappears_immediately(self):
        # phase offset 4.5s of a 5s interval: the pre-fix reporter
        # resumed its loop on restart and slept the whole phase before
        # re-registering; the fix reports before re-entering the loop.
        rig = SimRig(star(1), seed=2)
        mrm = MrmAgent(rig.node("hub"), "g0",
                       config=MrmConfig(update_interval=5.0))
        reporter = SoftStateReporter(rig.node("h0"), [mrm.ior],
                                     mrm.config, phase=4.5)
        rig.run(until=5.0)
        assert "h0" in mrm.members  # first report landed at t=4.5

        rig.topology.set_host_state("h0", alive=False)
        # down long enough for the 3x-interval timeout to expire it
        rig.run(until=21.0)
        assert "h0" not in mrm.members

        sent_before = reporter.reports_sent
        rig.topology.set_host_state("h0", alive=True)
        assert reporter.reports_sent == sent_before + 1  # sent *now*
        # back in the view well within one update interval (the report
        # only needs one network hop, not a 4.5s phase sleep)
        rig.run(until=21.5)
        assert "h0" in mrm.members

    def test_periodic_loop_still_runs_after_restart(self):
        rig = SimRig(star(1), seed=2)
        mrm = MrmAgent(rig.node("hub"), "g0",
                       config=MrmConfig(update_interval=2.0))
        reporter = SoftStateReporter(rig.node("h0"), [mrm.ior],
                                     mrm.config, phase=1.0)
        rig.run(until=3.0)
        rig.topology.set_host_state("h0", alive=False)
        rig.run(until=4.0)
        rig.topology.set_host_state("h0", alive=True)
        sent_after_restart = reporter.reports_sent
        rig.run(until=10.0)
        # immediate report + resumed periodic reports
        assert reporter.reports_sent >= sent_after_restart + 2


class TestPendingTableBounded:
    def test_reports_leave_no_pending_entries(self):
        # reports go out fire-and-forget even when a replica is dead:
        # no pending-reply entry may ever be created for them.
        rig = SimRig(star(2), seed=2)
        mrm = MrmAgent(rig.node("hub"), "g0",
                       config=MrmConfig(update_interval=1.0))
        dead_ior = dataclasses.replace(mrm.ior, host_id="h1")
        rig.topology.set_host_state("h1", alive=False)
        reporter = SoftStateReporter(rig.node("h0"),
                                     [mrm.ior, dead_ior],
                                     mrm.config, phase=0.5)
        rig.run(until=20.0)
        assert reporter.reports_sent >= 15
        orb = rig.node("h0").orb
        assert orb._pending == {}
        assert orb.metrics.get("orb.oneways") >= 30  # 2 targets/report

    def test_lost_reply_without_timeout_is_reaped(self):
        # an invoke with no per-call and no default timeout used to
        # leak its pending entry forever when the server died before
        # replying; the ORB-level reply deadline now reaps it.
        rig = SimRig(star(1), seed=2, default_timeout=None)
        client = rig.node("hub").orb
        client.reply_deadline = 5.0
        ior = rig.node("h0").orb.adapter("t").activate(
            SleepyServant(rig.env))
        outcome = {}

        def proc():
            event = client.invoke(ior, SLEEPY.operations["nap"], ())
            assert len(client._pending) == 1
            with pytest.raises(TIMEOUT):
                yield event
            outcome["failed_at"] = rig.env.now

        rig.env.process(proc())

        def chaos():
            yield rig.env.timeout(0.5)
            rig.topology.set_host_state("h0", alive=False)

        rig.env.process(chaos())
        rig.run(until=30.0)
        assert outcome["failed_at"] == pytest.approx(5.0)
        assert client._pending == {}
        assert client.metrics.get("orb.timeouts") == 1

"""Tests for multi-level MRM hierarchies (groups of groups)."""

import pytest

from repro.registry.groups import (
    DistributedRegistry,
    RegistryConfig,
    ROOT_GROUP,
)
from repro.sim.topology import clustered
from repro.testing import COUNTER_IFACE, SimRig, counter_package
from repro.util.errors import ConfigurationError


def three_level_rig(seed=50):
    """4 clusters of 3 hosts, organized west/east -> clusters -> hosts."""
    rig = SimRig(clustered(4, 3), seed=seed)
    cfg = RegistryConfig(update_interval=2.0, query_ttl=6)
    dr = DistributedRegistry(rig.nodes, cfg)
    hosts = rig.topology.host_ids()

    def cluster(i):
        return [h for h in hosts if h.startswith(f"c{i}")]

    dr.deploy_tree({
        "west": {"c0": cluster(0), "c1": cluster(1)},
        "east": {"c2": cluster(2), "c3": cluster(3)},
    })
    return rig, dr


class TestTreeDeployment:
    def test_structure(self):
        rig, dr = three_level_rig()
        assert dr.root is not None
        assert set(dr.groups) == {"west", "east", "c0", "c1", "c2", "c3"}
        # leaf groups have members, intermediate ones do not
        assert dr.groups["c0"].member_hosts
        assert dr.groups["west"].member_hosts == []
        # every node has a resolver pointing at its leaf MRM
        assert set(dr.resolvers) == set(rig.topology.host_ids())

    def test_aggregates_flow_up_both_levels(self):
        rig, dr = three_level_rig()
        rig.node("c3h2").install_package(counter_package())
        rig.run(until=dr.settle_time(rounds=3))
        east = dr.groups["east"].agents[0]
        assert "c3" in east.children
        assert COUNTER_IFACE.repo_id in \
            east.children["c3"].aggregate.repo_ids
        root = dr.root.agents[0]
        assert set(root.children) == {"west", "east"}
        assert COUNTER_IFACE.repo_id in \
            root.children["east"].aggregate.repo_ids

    def test_query_descends_the_far_subtree(self):
        rig, dr = three_level_rig()
        rig.node("c3h2").install_package(counter_package())
        rig.run(until=dr.settle_time(rounds=3))
        # from c0 (west) to a provider in c3 (east): leaf -> west ->
        # root -> east -> c3
        ior = rig.run(until=rig.node("c0h1").request_component(
            COUNTER_IFACE.repo_id))
        assert ior.host_id == "c3h2"

    def test_sibling_cluster_resolved_without_root(self):
        rig, dr = three_level_rig()
        rig.node("c1h2").install_package(counter_package())
        rig.run(until=dr.settle_time(rounds=3))
        before = rig.metrics.get("registry.query.msgs")
        ior = rig.run(until=rig.node("c0h1").request_component(
            COUNTER_IFACE.repo_id))
        assert ior.host_id == "c1h2"
        # c0 -> west -> c1 : two inter-MRM hops, never touching root
        assert rig.metrics.get("registry.query.msgs") - before <= 3

    def test_validation(self):
        rig = SimRig(clustered(1, 2), seed=51)
        dr = DistributedRegistry(rig.nodes, RegistryConfig())
        with pytest.raises(ConfigurationError):
            dr.deploy_tree({})
        with pytest.raises(ConfigurationError):
            dr.deploy_tree({"g": []})
        with pytest.raises(ConfigurationError):
            dr.deploy_tree({ROOT_GROUP: ["c0h0"], "g": ["c0h1"]})

    def test_single_level_tree_equals_flat_deploy(self):
        rig = SimRig(clustered(1, 3), seed=52)
        rig.node("c0h2").install_package(counter_package())
        dr = DistributedRegistry(rig.nodes,
                                 RegistryConfig(update_interval=2.0))
        dr.deploy_tree({"only": rig.topology.host_ids()})
        assert dr.root is None  # one group: no root level
        rig.run(until=dr.settle_time())
        ior = rig.run(until=rig.node("c0h0").request_component(
            COUNTER_IFACE.repo_id))
        assert ior.host_id == "c0h2"

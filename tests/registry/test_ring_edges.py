"""ShardRing rebalance edge cases (chaos PR satellite).

The chaos campaigns drive ring membership through degenerate shapes a
steady-state deployment never sees: the last owner leaving, churn
staging the same host twice, add-then-remove flapping inside one
staging batch.  These pin down the contract at those edges, plus the
correctness of ``moved_fraction`` against a brute-force measurement.
"""

import pytest

from repro.registry.federation.ring import ShardRing, ring_point
from repro.util.errors import ConfigurationError


def ring_with(hosts, vnodes=32):
    ring = ShardRing(vnodes=vnodes)
    for host in hosts:
        ring.stage_add(host)
    ring.rebalance()
    return ring


SAMPLE_KEYS = [f"IDL:demo/K{i}:1.0" for i in range(400)]


class TestEmptyRingEdges:
    def test_remove_last_owner_empties_the_ring(self):
        ring = ring_with(["h0"])
        ring.stage_remove("h0")
        report = ring.rebalance()
        assert report.removed == ("h0",)
        assert report.hosts == ()
        assert len(ring) == 0
        # Everything the ring carried is displaced.
        assert report.moved_fraction == 1.0

    def test_empty_ring_lookup_raises_configuration_error(self):
        ring = ring_with(["h0"])
        ring.stage_remove("h0")
        ring.rebalance()
        with pytest.raises(ConfigurationError):
            ring.owners("IDL:demo/Counter:1.0")
        with pytest.raises(ConfigurationError):
            ring.primary("IDL:demo/Counter:1.0")

    def test_first_rebalance_onto_empty_ring_moves_everything(self):
        ring = ShardRing(vnodes=8)
        ring.stage_add("h0")
        ring.stage_add("h1")
        report = ring.rebalance()
        assert report.added == ("h0", "h1")
        assert report.moved_fraction == 1.0


class TestStagingEdges:
    def test_duplicate_stage_add_raises(self):
        ring = ring_with(["h0", "h1"])
        with pytest.raises(ConfigurationError):
            ring.stage_add("h0")

    def test_stage_add_twice_before_rebalance_is_idempotent(self):
        ring = ring_with(["h0"])
        ring.stage_add("h1")
        ring.stage_add("h1")            # staged, not yet on the ring
        report = ring.rebalance()
        assert report.added == ("h1",)
        assert ring.hosts() == ["h0", "h1"]

    def test_stage_remove_unknown_host_raises(self):
        ring = ring_with(["h0"])
        with pytest.raises(ConfigurationError):
            ring.stage_remove("h9")

    def test_remove_then_add_same_host_cancels_to_noop(self):
        """A host flapping out and back inside one staging batch must
        not displace any keyspace."""
        ring = ring_with(["h0", "h1", "h2"])
        before = {key: ring.primary(key) for key in SAMPLE_KEYS}
        ring.stage_remove("h1")
        ring.stage_add("h1")
        assert not ring.pending
        report = ring.rebalance()
        assert report.added == () and report.removed == ()
        assert report.moved_fraction == 0.0
        assert {key: ring.primary(key) for key in SAMPLE_KEYS} == before

    def test_add_then_remove_same_host_cancels_to_noop(self):
        ring = ring_with(["h0", "h1"])
        ring.stage_add("h9")
        ring.stage_remove("h9")
        assert not ring.pending
        report = ring.rebalance()
        assert report.added == () and report.removed == ()
        assert report.moved_fraction == 0.0

    def test_staged_changes_invisible_to_lookups_until_rebalance(self):
        ring = ring_with(["h0", "h1"])
        before = {key: ring.primary(key) for key in SAMPLE_KEYS}
        ring.stage_add("h2")
        ring.stage_remove("h0")
        assert {key: ring.primary(key) for key in SAMPLE_KEYS} == before
        ring.rebalance()
        assert "h0" not in ring and "h2" in ring


class TestMovedFraction:
    @staticmethod
    def sampled_moved(before, after):
        return (sum(1 for key in SAMPLE_KEYS
                    if before[key] != after[key])
                / len(SAMPLE_KEYS))

    def test_moved_fraction_matches_brute_force_on_add(self):
        ring = ring_with([f"h{i}" for i in range(5)], vnodes=64)
        before = {key: ring.primary(key) for key in SAMPLE_KEYS}
        ring.stage_add("h5")
        report = ring.rebalance()
        after = {key: ring.primary(key) for key in SAMPLE_KEYS}
        sampled = self.sampled_moved(before, after)
        assert abs(report.moved_fraction - sampled) < 0.08
        # Consistent-hashing guarantee: one joiner takes ~1/n.
        assert report.moved_fraction < 0.45

    def test_moved_fraction_matches_brute_force_on_remove(self):
        ring = ring_with([f"h{i}" for i in range(6)], vnodes=64)
        before = {key: ring.primary(key) for key in SAMPLE_KEYS}
        ring.stage_remove("h3")
        report = ring.rebalance()
        after = {key: ring.primary(key) for key in SAMPLE_KEYS}
        sampled = self.sampled_moved(before, after)
        assert abs(report.moved_fraction - sampled) < 0.08
        # Only the leaver's share moves; survivors keep their keys.
        assert report.moved_fraction < 0.45
        unchanged = [key for key in SAMPLE_KEYS if before[key] != "h3"]
        assert all(after[key] == before[key] for key in unchanged)

    def test_owner_at_wraparound_key_is_stable(self):
        """A key hashing past the last vnode wraps to the first."""
        ring = ring_with(["h0", "h1", "h2"], vnodes=16)
        top = max(ring._keys)
        key = next(key for key in (f"wrap{i}" for i in range(100000))
                   if ring_point(key) > top)
        assert ring.primary(key) == ring._points[0][1]

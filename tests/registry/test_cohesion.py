"""Tests for the Network Cohesion protocol."""

import pytest

from repro.registry.cohesion import (
    CohesionAgent,
    cohesion_ior,
    deploy_cohesion,
)
from repro.sim.topology import clustered, star
from repro.testing import SimRig, star_rig


def converge(rig, agents, seconds=15.0):
    rig.run(until=rig.env.now + seconds)
    return agents


class TestJoin:
    def test_view_converges_to_full_membership(self):
        rig = star_rig(4, seed=31)
        agents = deploy_cohesion(rig.nodes, ping_interval=2.0)
        converge(rig, agents)
        everyone = sorted(rig.topology.host_ids())
        for host, agent in agents.items():
            assert agent.known_hosts(include_self=True) == everyone

    def test_late_joiner_is_learned_by_all(self):
        rig = star_rig(4, seed=32)
        hosts = rig.topology.host_ids()
        early = {h: rig.nodes[h] for h in hosts if h != "h3"}
        agents = deploy_cohesion(early, ping_interval=2.0)
        converge(rig, agents)
        # h3 arrives later, seeded the same way
        agents["h3"] = CohesionAgent(rig.nodes["h3"], seeds=["hub"],
                                     ping_interval=2.0)
        converge(rig, agents, 20.0)
        for agent in agents.values():
            assert "h3" in agent.known_hosts(include_self=True)
        assert sorted(agents["h3"].alive_peers()) == sorted(
            h for h in hosts if h != "h3")

    def test_graceful_leave_removes_peer(self):
        rig = star_rig(3, seed=33)
        agents = deploy_cohesion(rig.nodes, ping_interval=2.0)
        converge(rig, agents)
        agents["h1"].shutdown()
        rig.run(until=rig.env.now + 3.0)
        for host, agent in agents.items():
            if host == "h1":
                continue
            assert "h1" not in agent.known_hosts()


class TestLiveness:
    def test_crashed_peer_suspected_after_missed_pings(self):
        rig = star_rig(3, seed=34)
        agents = deploy_cohesion(rig.nodes, ping_interval=2.0,
                                 suspect_after=2)
        converge(rig, agents)
        rig.topology.set_host_state("h1", alive=False)
        # enough time for everyone's rotation to miss h1 twice
        rig.run(until=rig.env.now + 40.0)
        for host, agent in agents.items():
            if host == "h1":
                continue
            assert not agent.is_peer_alive("h1")
            assert "h1" not in agent.alive_peers()

    def test_reconnection_is_graceful(self):
        """§2.4.3: 'must support either node disconnections and
        re-connections gracefully'."""
        rig = star_rig(3, seed=35)
        agents = deploy_cohesion(rig.nodes, ping_interval=2.0,
                                 suspect_after=2)
        converge(rig, agents)
        rig.topology.set_host_state("h1", alive=False)
        rig.run(until=rig.env.now + 40.0)
        assert not agents["hub"].is_peer_alive("h1")
        # back up: the restarted agent re-joins through its seeds
        rig.topology.set_host_state("h1", alive=True)
        rig.run(until=rig.env.now + 30.0)
        assert agents["hub"].is_peer_alive("h1")
        assert sorted(agents["h1"].alive_peers()) == ["h0", "h2", "hub"]

    def test_crash_wipes_local_view(self):
        rig = star_rig(3, seed=36)
        agents = deploy_cohesion(rig.nodes, ping_interval=2.0)
        converge(rig, agents)
        assert agents["h0"].peers
        rig.topology.set_host_state("h0", alive=False)
        assert agents["h0"].peers == {}

    def test_partition_splits_views_then_heals(self):
        from repro.sim.faults import FaultInjector
        rig = SimRig(clustered(2, 3), seed=37)
        agents = deploy_cohesion(rig.nodes, ping_interval=2.0,
                                 suspect_after=2,
                                 seeds=["c0h0", "c1h0"])
        converge(rig, agents, 20.0)
        injector = FaultInjector(rig.env, rig.topology)
        cuts = injector.partition(
            [h for h in rig.topology.host_ids() if h.startswith("c0")],
            [h for h in rig.topology.host_ids() if h.startswith("c1")])
        rig.run(until=rig.env.now + 40.0)
        # each side sees only itself
        assert all(p.startswith("c0")
                   for p in agents["c0h1"].alive_peers())
        assert all(p.startswith("c1")
                   for p in agents["c1h1"].alive_peers())
        injector.heal_partition(cuts)
        rig.run(until=rig.env.now + 40.0)
        # pings resume and the views re-merge
        assert any(p.startswith("c1")
                   for p in agents["c0h1"].alive_peers())


class TestProtocolCost:
    def test_ping_traffic_is_bounded(self):
        rig = star_rig(8, seed=38)
        deploy_cohesion(rig.nodes, ping_interval=2.0, fanout=3)
        rig.run(until=60.0)
        msgs = rig.metrics.get("cohesion.msgs")
        # 9 nodes x fanout 3 x 30 rounds = 810 pings upper bound (+joins)
        assert 0 < msgs <= 9 * 3 * 30 + 9 * 2

    def test_deterministic(self):
        def run(seed):
            rig = star_rig(4, seed=seed)
            agents = deploy_cohesion(rig.nodes, ping_interval=2.0)
            rig.run(until=30.0)
            return {h: a.known_hosts() for h, a in agents.items()}, \
                rig.metrics.get("cohesion.msgs")
        assert run(7) == run(7)

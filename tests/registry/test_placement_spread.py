"""Regression tests for MRM replica placement (PR 8).

Pre-PR, ``_pick_mrm_hosts`` always took ``hosts[:replicas]``, so the
root-level MRMs and the first group's MRMs stacked onto the very same
hosts: killing the first host of the first group took out two hierarchy
levels at once.  Placement now offsets each level's picks so they land
on disjoint hosts whenever the pool allows it.
"""

from repro.registry.groups import (
    DistributedRegistry,
    RegistryConfig,
    groups_by_cluster,
    groups_by_size,
)
from repro.sim.topology import clustered
from repro.testing import SimRig


def deploy(seed=90, replicas=1, cluster_size=3):
    rig = SimRig(clustered(2, cluster_size), seed=seed)
    cfg = RegistryConfig(update_interval=2.0, replicas=replicas)
    dr = DistributedRegistry(rig.nodes, cfg)
    dr.deploy(groups_by_cluster(rig.topology.host_ids()))
    return rig, dr


class TestPlacementSpread:
    def test_root_mrms_disjoint_from_first_group(self):
        _rig, dr = deploy()
        assert set(dr.root.mrm_hosts).isdisjoint(dr.groups["c0"].mrm_hosts)

    def test_root_mrms_disjoint_with_replicas(self):
        _rig, dr = deploy(seed=91, replicas=2, cluster_size=5)
        assert len(dr.root.mrm_hosts) == 2
        assert set(dr.root.mrm_hosts).isdisjoint(dr.groups["c0"].mrm_hosts)

    def test_root_level_survives_first_host_death(self):
        """Killing the first group's serving MRM host must not also
        decapitate the root level."""
        # One full-mesh LAN sliced into two groups: no gateway host, so
        # the only single point of failure is the placement itself.
        rig = SimRig(clustered(1, 6), seed=92)
        cfg = RegistryConfig(update_interval=2.0)
        dr = DistributedRegistry(rig.nodes, cfg)
        dr.deploy(groups_by_size(rig.topology.host_ids(), 3))
        rig.run(until=dr.settle_time())
        assert "g1" in dr.root.agents[0].children  # hierarchy is warm
        victim = dr.groups["g0"].mrm_hosts[0]
        rig.topology.set_host_state(victim, alive=False)
        killed_at = rig.env.now
        rig.run(until=rig.env.now + 3 * cfg.update_interval)
        live_roots = [a for a in dr.root.agents if a.node.host.alive]
        assert live_roots, "root MRM level died with the group MRM host"
        # The surviving root keeps receiving the other group's
        # aggregates — the hierarchy is still functioning above g1.
        child = live_roots[0].children["g1"]
        assert child.last_seen > killed_at

    def test_tree_levels_stack_at_distinct_offsets(self):
        rig = SimRig(clustered(4, 3), seed=93)
        dr = DistributedRegistry(rig.nodes, RegistryConfig())
        hosts = groups_by_cluster(rig.topology.host_ids())
        dr.deploy_tree({
            "west": {"c0": hosts["c0"], "c1": hosts["c1"]},
            "east": {"c2": hosts["c2"], "c3": hosts["c3"]},
        })
        root = set(dr.root.mrm_hosts)
        west = set(dr.groups["west"].mrm_hosts)
        leaf = set(dr.groups["c0"].mrm_hosts)
        # root (offset 2), the intermediate level (offset 1) and the
        # leaf group (offset 0) all sit in c0's host pool yet on
        # pairwise-distinct hosts.
        assert root.isdisjoint(west)
        assert root.isdisjoint(leaf)
        assert west.isdisjoint(leaf)

    def test_pick_wraps_on_small_pools(self):
        dr = DistributedRegistry({}, RegistryConfig(replicas=2))
        hosts = ["a", "b", "c"]
        assert dr._pick_mrm_hosts(hosts) == ["a", "b"]
        # Offset past the end wraps instead of running out of hosts.
        assert dr._pick_mrm_hosts(hosts, offset=2) == ["c", "a"]
        # A pool no bigger than the replica count is used as-is.
        assert dr._pick_mrm_hosts(["a", "b"], offset=4) == ["a", "b"]

"""Future-epoch clamping at the shard trust boundary (chaos PR).

Epochs are soft-state TTL clocks.  Pre-fix, one clock-skewed reporter
(``FederationReporter.clock_skew``, as the chaos ``clock_skew`` fault
injects) could stamp records and beacons with ``now + skew``; a far-
future epoch is never swept and beats every honest refresh, so a dead
host stayed "live" in every owner's membership table forever.  Owners
now trust only their own clock: any accepted epoch is capped at
``now + epoch_tolerance`` (``federation.epoch_clamped``).
"""

from dataclasses import replace

from repro.registry.federation import FederatedRegistry, FederationConfig
from repro.registry.federation.records import HostBeacon
from repro.sim.faults import FaultInjector
from repro.sim.topology import clustered
from repro.testing import COUNTER_IFACE, SimRig, counter_package

REPO_ID = COUNTER_IFACE.repo_id


def federated_rig(seed=230, hosts=6, **cfg_kw):
    cfg_kw.setdefault("owners", 2)
    cfg_kw.setdefault("replication", 2)
    cfg_kw.setdefault("update_interval", 2.0)
    cfg_kw.setdefault("gossip_interval", 1.0)
    rig = SimRig(clustered(1, hosts), seed=seed)
    rig.node("c0h1").install_package(counter_package())
    fed = FederatedRegistry(rig.nodes, FederationConfig(**cfg_kw))
    fed.deploy()
    rig.run(until=fed.settle_time())
    return rig, fed


class TestEpochClamp:
    def test_future_publish_epoch_is_clamped(self):
        rig, fed = federated_rig()
        agent = next(iter(fed.agents.values()))
        now = rig.env.now
        agent.accept_publish("c0h3", now + 1000.0, [])
        assert rig.metrics.get("federation.epoch_clamped") >= 1
        assert (agent.membership._members["c0h3"]
                <= now + fed.config.epoch_tolerance)

    def test_clamped_member_still_times_out(self):
        """The poisoned host must die out of the membership view once
        its (clamped) epoch ages past member_timeout — pre-fix it was
        immortal."""
        rig, fed = federated_rig(seed=231)
        agent = next(iter(fed.agents.values()))
        victim = "c0h5"
        agent.accept_publish(victim, rig.env.now + 1000.0, [])
        injector = FaultInjector(rig.env, rig.topology)
        injector.crash_host(victim)
        rig.run(until=rig.env.now + fed.config.member_timeout
                + 2.0 * fed.config.epoch_tolerance + 1.0)
        assert victim not in agent.membership.live(
            rig.env.now, fed.config.member_timeout)

    def test_future_record_epoch_is_clamped_and_sweepable(self):
        rig, fed = federated_rig(seed=232)
        owner = fed.ring.owners(REPO_ID, 1)[0]
        agent = fed.agents[owner]
        good = agent.store.lookup(REPO_ID)[0]
        poisoned = replace(good, epoch=rig.env.now + 1000.0)
        agent.accept_publish(good.host, rig.env.now, [poisoned.to_value()])
        stored = agent.store.lookup(REPO_ID)[0]
        assert stored.epoch <= rig.env.now + fed.config.epoch_tolerance

    def test_future_gossip_beacon_is_clamped(self):
        rig, fed = federated_rig(seed=233)
        agent = next(iter(fed.agents.values()))
        owner = next(h for h in fed.agents if h != agent.host_id)
        beacon = HostBeacon(owner, rig.env.now + 500.0, alive=True,
                            owner=True)
        before = rig.metrics.get("federation.epoch_clamped")
        agent.accept_gossip([], [beacon.to_value()])
        assert rig.metrics.get("federation.epoch_clamped") > before

    def test_skewed_reporter_cannot_keep_dead_host_live(self):
        """End to end: a +60s clock-skewed reporter publishes, then its
        host dies.  Membership must still converge to drop it."""
        rig, fed = federated_rig(seed=234)
        victim = next(h for h in rig.topology.host_ids()
                      if h not in fed.agents and h != "c0h1")
        fed.reporters[victim].clock_skew = 60.0
        rig.run(until=rig.env.now + 3.0 * fed.config.update_interval)
        assert rig.metrics.get("federation.epoch_clamped") >= 1
        injector = FaultInjector(rig.env, rig.topology)
        injector.crash_host(victim)
        rig.run(until=rig.env.now + fed.settle_time()
                + fed.config.epoch_tolerance)
        assert victim not in fed.live_hosts()

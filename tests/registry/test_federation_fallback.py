"""Federated resolution must degrade, never die (chaos PR).

Regressions found by the chaos harness:

- With the *whole replication set* of a key dead, lookups used to
  raise TRANSIENT even though the provider was alive and reachable:
  the resolver never looked past the dead owners.  It now widens to
  the surviving ring owners and, when no owner of the key answers,
  floods the population directly.
- A corrupted gossip frame (single bit flip in a host-id string — it
  survives CDR decoding unchanged in length) used to inject a phantom
  host into the membership table; the next gossip round then crashed
  the owner's loop trying to route to it.  Owners now validate every
  incoming host id against the topology.
"""

import pytest

from repro.registry.federation import FederatedRegistry, FederationConfig
from repro.registry.federation.records import HostBeacon
from repro.sim.faults import FaultInjector
from repro.sim.topology import clustered
from repro.testing import COUNTER_IFACE, SimRig, counter_package

REPO_ID = COUNTER_IFACE.repo_id


def federated_rig(seed=220, hosts=8, provider="c0h1", **cfg_kw):
    cfg_kw.setdefault("owners", 3)
    cfg_kw.setdefault("replication", 2)
    cfg_kw.setdefault("update_interval", 2.0)
    cfg_kw.setdefault("gossip_interval", 1.0)
    cfg_kw.setdefault("query_timeout", 0.5)
    rig = SimRig(clustered(1, hosts), seed=seed)
    rig.node(provider).install_package(counter_package())
    fed = FederatedRegistry(rig.nodes, FederationConfig(**cfg_kw))
    fed.deploy()
    return rig, fed


class TestDeadOwnerFallback:
    def test_lookup_survives_whole_replication_set_dead(self):
        """Both owners of the key die mid-operation: resolution still
        succeeds through the flood tier (pre-fix: TRANSIENT)."""
        rig, fed = federated_rig()
        rig.run(until=fed.settle_time())
        injector = FaultInjector(rig.env, rig.topology)
        owners = fed.ring.owners(REPO_ID, fed.config.replication)
        assert "c0h1" not in owners, "provider must outlive the owners"
        querier = next(h for h in rig.topology.host_ids()
                       if h not in owners and h != "c0h1")
        for owner in owners:
            injector.crash_host(owner)
        ior = rig.run(until=fed.resolvers[querier].resolve(REPO_ID))
        assert ior.host_id == "c0h1"
        assert rig.metrics.get("federation.lookup.failover") >= 2
        assert rig.metrics.get("federation.lookup.flood_fallback") >= 1

    def test_extra_owner_empty_answer_does_not_mask_flood(self):
        """A surviving non-replication-set owner knows nothing about
        the key; its empty answer must not count as authoritative."""
        rig, fed = federated_rig(seed=221)
        rig.run(until=fed.settle_time())
        injector = FaultInjector(rig.env, rig.topology)
        owners = fed.ring.owners(REPO_ID, fed.config.replication)
        extras = [h for h in fed.agents if h not in owners]
        assert extras, "need a surviving extra ring owner"
        for owner in owners:
            injector.crash_host(owner)
        querier = next(h for h in rig.topology.host_ids()
                       if h not in owners and h != "c0h1")
        ior = rig.run(until=fed.resolvers[querier].resolve(REPO_ID))
        assert ior.host_id == "c0h1"
        # The widened ring owners were consulted before flooding.
        assert rig.metrics.get("federation.lookup.ring_fallback") >= 1

    def test_primary_empty_answer_is_authoritative(self):
        """When a replication-set owner answers (even empty), the
        resolver must NOT widen or flood: the owner's word stands."""
        rig, fed = federated_rig(seed=222)
        rig.run(until=fed.settle_time())
        from repro.orb.exceptions import SystemException
        resolver = fed.resolvers["c0h7"]
        missing = "IDL:demo/Nothing:1.0"
        with pytest.raises(SystemException):
            rig.run(until=resolver.resolve(missing))
        assert rig.metrics.get("federation.lookup.flood_fallback",
                               0.0) == 0.0


class TestUnknownHostRejection:
    def test_corrupt_publish_origin_is_rejected(self):
        rig, fed = federated_rig(seed=223)
        rig.run(until=fed.settle_time())
        agent = next(iter(fed.agents.values()))
        before = fed.live_hosts()
        agent.accept_publish("c0l1", rig.env.now, [])  # bit-flipped id
        assert "c0l1" not in agent.membership.live(
            rig.env.now, fed.config.member_timeout)
        assert fed.live_hosts() == before
        assert rig.metrics.get("federation.rejected.unknown_host") >= 1

    def test_corrupt_gossip_beacon_is_rejected(self):
        """Pre-fix: the phantom owner entered live_owners and the next
        gossip round died routing to it."""
        rig, fed = federated_rig(seed=224)
        rig.run(until=fed.settle_time())
        agent = next(iter(fed.agents.values()))
        phantom = HostBeacon("c9h9", rig.env.now, alive=True, owner=True)
        agent.accept_gossip([], [phantom.to_value()])
        assert "c9h9" not in agent.membership.live_owners(
            rig.env.now, fed.config.member_timeout)
        # The gossip loop survives the (rejected) phantom.
        rig.run(until=rig.env.now + 4.0 * fed.config.gossip_interval)
        assert agent._proc is not None and agent._proc.is_alive

    def test_corrupt_record_host_is_rejected(self):
        rig, fed = federated_rig(seed=225)
        rig.run(until=fed.settle_time())
        owner = fed.ring.owners(REPO_ID, 1)[0]
        agent = fed.agents[owner]
        good = agent.store.lookup(REPO_ID)
        assert good and good[0].host == "c0h1"
        from dataclasses import replace
        corrupt = replace(good[0], host="c0j1", epoch=rig.env.now)
        agent.accept_gossip([corrupt.to_value()], [])
        assert {r.host for r in agent.store.lookup(REPO_ID)} == {"c0h1"}

"""End-to-end wire robustness: hostile links, breakers, healing.

The invariant under test is the paper's §2.4.3 story one level down:
not only may nodes disappear and reconnect, the wire itself may damage
what it carries — and the runtime must degrade to retries and breaker
back-off, never to a crashed handler or a wedged client.
"""

import pytest

from repro.orb.core import InterfaceDef, Servant, op
from repro.orb.exceptions import SystemException
from repro.orb.retry import CircuitBreaker, RetryPolicy, call_with_retry
from repro.orb.typecodes import tc_long
from repro.sim.faults import FaultInjector, WireFaultModel, WireFaultProfile
from repro.testing import star_rig

pytestmark = pytest.mark.faults

IFACE = InterfaceDef("IDL:test/Counter:1.0", "Counter", operations=[
    op("bump", [("x", tc_long)], tc_long),
])
BUMP = IFACE.operations["bump"]


class CounterServant(Servant):
    _interface = IFACE

    def __init__(self):
        self.calls = 0

    def bump(self, x):
        self.calls += 1
        return x + 1


def make_rig(seed):
    rig = star_rig(2, seed=seed)
    servant = CounterServant()
    ior = rig.node("h0").orb.adapter("app").activate(servant)
    client = rig.node("h1").orb
    return rig, servant, ior, client


POLICY = RetryPolicy(attempts=4, timeout=1.0, backoff=0.05,
                     backoff_factor=2.0, jitter=False)


class TestCorruptionSoak:
    def test_node_keeps_serving_under_2pct_corruption(self):
        rig, servant, ior, client = make_rig(seed=5)
        rig.network.wire_faults = WireFaultModel(
            rig.rngs, rig.metrics,
            default=WireFaultProfile(corrupt=0.02))
        correct = answered = 0
        for i in range(200):
            try:
                result = call_with_retry(client, ior, BUMP, (i,),
                                         policy=POLICY)
            except SystemException:
                continue  # all retries ate corrupted frames: acceptable
            answered += 1
            if result == i + 1:
                correct += 1
        # Availability stays high; a few answers are silently garbled
        # (a bit flip inside the args still decodes — the model has no
        # frame checksum, matching GIOP's trust in the transport).
        assert answered >= 195
        assert correct >= 190
        # The wire really was hostile and the handlers really did drop
        # damaged frames — this is survival, not a clean network.
        assert rig.metrics.get("net.corrupted.bitflip") > 0
        assert rig.metrics.get("orb.bad_messages") > 0
        assert servant.calls >= answered

    def test_duplication_and_reordering_are_harmless(self):
        rig, servant, ior, client = make_rig(seed=6)
        rig.network.wire_faults = WireFaultModel(
            rig.rngs, rig.metrics,
            default=WireFaultProfile(duplicate=0.1, reorder=0.1,
                                     reorder_delay=0.01))
        for i in range(100):
            assert call_with_retry(client, ior, BUMP, (i,),
                                   policy=POLICY) == i + 1
        assert rig.metrics.get("net.corrupted.duplicate") > 0
        # At-least-once: duplicated requests re-run the servant; late
        # duplicate replies are dropped by the client's pending table.
        assert servant.calls >= 100


class TestBreakerHealCycle:
    def test_partitioned_then_corrupted_link_heals(self):
        rig, servant, ior, client = make_rig(seed=7)
        hub = rig.observe()
        injector = FaultInjector(rig.env, rig.topology)
        faults = WireFaultModel(rig.rngs, rig.metrics)
        rig.network.wire_faults = faults
        breaker = CircuitBreaker(client, "h0", failure_threshold=3,
                                 reset_timeout=5.0)

        # Phase 1: partition.  Three timeouts open the breaker.
        injector.cut_link("h0", "hub")
        with pytest.raises(SystemException):
            call_with_retry(client, ior, BUMP, (1,), policy=POLICY,
                            breaker=breaker)
        assert breaker.state == CircuitBreaker.OPEN

        # Phase 2: the link comes back — but damaged.  The half-open
        # probe dies to corruption and the breaker re-opens.
        injector.heal_link("h0", "hub")
        faults.set_link("h0", "hub", WireFaultProfile(corrupt=1.0))
        rig.run(until=rig.env.timeout(5.0))
        with pytest.raises(SystemException):
            call_with_retry(client, ior, BUMP, (2,), policy=POLICY,
                            breaker=breaker)
        assert breaker.state == CircuitBreaker.OPEN
        assert rig.metrics.get("orb.bad_messages") > 0

        # Phase 3: the wire is repaired; the next probe closes the loop.
        faults.clear_link("h0", "hub")
        rig.run(until=rig.env.timeout(5.0))
        assert call_with_retry(client, ior, BUMP, (10,), policy=POLICY,
                               breaker=breaker) == 11
        assert breaker.state == CircuitBreaker.CLOSED

        assert [(f, t) for _, f, t in breaker.transitions] == [
            ("closed", "open"),
            ("open", "half_open"),
            ("half_open", "open"),
            ("open", "half_open"),
            ("half_open", "closed"),
        ]
        # Every transition left a span in the trace stream.
        breaker_spans = [s.name for s in hub.tracer.spans
                         if s.name.startswith("breaker:")]
        assert breaker_spans == [
            "breaker:closed->open",
            "breaker:open->half_open",
            "breaker:half_open->open",
            "breaker:open->half_open",
            "breaker:half_open->closed",
        ]
        times = [t for t, _, _ in breaker.transitions]
        assert times == sorted(times)

"""Failure injection across subsystem boundaries.

Crashes, partitions and restarts at the worst moments: mid-migration,
mid-deployment, mid-query.  The invariant is never "nothing fails" but
"failures are contained": exceptions are typed, resources don't leak,
and recovery follows the paper's soft-state story.
"""

import pytest

from repro.container.migration import MigrationEngine, MigrationError
from repro.deployment import Deployer, RuntimePlanner
from repro.deployment.application import DeploymentError
from repro.orb.exceptions import SystemException, TIMEOUT, TRANSIENT
from repro.registry.groups import (
    DistributedRegistry,
    RegistryConfig,
    groups_by_cluster,
)
from repro.sim.faults import FaultInjector
from repro.sim.topology import clustered, star
from repro.testing import (
    COUNTER_IFACE,
    SimRig,
    counter_package,
    star_rig,
)
from repro.xmlmeta.descriptors import (
    AssemblyDescriptor,
    AssemblyInstance,
)


class TestMigrationFaults:
    def test_target_crash_during_migration_times_out_cleanly(self):
        rig = star_rig(2, seed=40)
        hub = rig.node("hub")
        hub.install_package(counter_package())
        inst = hub.container.create_instance("Counter")
        inst.executor.count = 42

        # kill the target while the package is in flight
        engine = MigrationEngine(hub)
        hub.orb.default_timeout = 2.0
        ev = engine.migrate(inst.instance_id, "h0")
        rig.run(until=rig.env.now + 0.0005)
        rig.topology.set_host_state("h0", alive=False)
        with pytest.raises((MigrationError, SystemException)):
            rig.run(until=ev)
        # the source's resource books were never corrupted: either the
        # instance is still here (rollback) or fully evicted
        committed = hub.resources.cpu_committed
        assert committed in (0.0, 5.0)

    def test_source_crash_kills_migration_but_not_simulation(self):
        rig = star_rig(2, seed=41)
        hub = rig.node("hub")
        hub.install_package(counter_package())
        inst = hub.container.create_instance("Counter")
        hub.orb.default_timeout = 2.0
        ev = MigrationEngine(hub).migrate(inst.instance_id, "h0")
        ev.defused()  # driver gave up watching; crash should not blow up
        rig.run(until=rig.env.now + 0.0005)
        rig.topology.set_host_state("hub", alive=False)
        rig.run(until=rig.env.now + 30.0)  # no exception escapes


class TestDeploymentFaults:
    def test_host_crash_during_deploy_surfaces_typed_error(self):
        rig = star_rig(3, seed=42)
        hub = rig.node("hub")
        hub.install_package(counter_package())
        hub.orb.default_timeout = 2.0

        from repro.deployment.planner import PlannerBase

        class PinToH1(PlannerBase):
            def plan(self, assembly, views, qos_of):
                return {i.name: "h1" for i in assembly.instances}

        dep = Deployer(rig.nodes, PinToH1(), coordinator_host="hub")
        assembly = AssemblyDescriptor(
            name="doomed",
            instances=[AssemblyInstance(f"i{k}", "Counter")
                       for k in range(6)])
        ev = dep.deploy(assembly)
        # let view gathering finish, then kill the placement target
        rig.run(until=rig.env.now + 0.02)
        rig.topology.set_host_state("h1", alive=False)
        with pytest.raises((SystemException, DeploymentError)):
            rig.run(until=ev)

    def test_teardown_with_dead_host_skips_it(self):
        rig = star_rig(3, seed=43)
        hub = rig.node("hub")
        hub.install_package(counter_package())
        dep = Deployer(rig.nodes, RuntimePlanner(), coordinator_host="hub")
        assembly = AssemblyDescriptor(
            name="app",
            instances=[AssemblyInstance(f"i{k}", "Counter")
                       for k in range(4)])
        app = rig.run(until=dep.deploy(assembly))
        victims = {h for h in app.placement.values() if h != "hub"}
        victim = sorted(victims)[0]
        rig.topology.set_host_state(victim, alive=False)
        rig.run(until=app.teardown())  # must not raise
        assert app.torn_down
        live_hosts = [h for h in rig.nodes if rig.topology.host(h).alive]
        for host in live_hosts:
            assert len(rig.node(host).container) == 0


class TestRegistryPartitions:
    def deploy(self, seed=44):
        rig = SimRig(clustered(2, 4), seed=seed)
        rig.node("c0h3").install_package(counter_package(name="CompA"))
        rig.node("c1h3").install_package(counter_package(name="CompB"))
        cfg = RegistryConfig(update_interval=2.0, replicas=2,
                             query_timeout=1.0)
        dr = DistributedRegistry(rig.nodes, cfg)
        dr.deploy(groups_by_cluster(rig.topology.host_ids()))
        rig.run(until=dr.settle_time())
        return rig, dr

    def test_partition_isolates_but_local_service_continues(self):
        rig, dr = self.deploy()
        injector = FaultInjector(rig.env, rig.topology)
        cuts = injector.partition(
            [h for h in rig.topology.host_ids() if h.startswith("c0")],
            [h for h in rig.topology.host_ids() if h.startswith("c1")])
        rig.run(until=rig.env.now + 10.0)
        # in-cluster resolution still works on both sides
        ior_a = rig.run(until=rig.node("c0h1").request_component(
            COUNTER_IFACE.repo_id))
        assert ior_a.host_id.startswith("c0")
        ior_b = rig.run(until=rig.node("c1h1").request_component(
            COUNTER_IFACE.repo_id))
        assert ior_b.host_id.startswith("c1")

    def test_partition_heal_restores_cross_cluster_queries(self):
        rig, dr = self.deploy(seed=45)
        # remove c0's provider so c0 queries MUST cross the partition
        node = rig.node("c0h3")
        node.repository.remove(
            "CompA", node.repository.lookup("CompA").version)
        rig.run(until=rig.env.now + 5.0)

        injector = FaultInjector(rig.env, rig.topology)
        cuts = injector.partition(
            [h for h in rig.topology.host_ids() if h.startswith("c0")],
            [h for h in rig.topology.host_ids() if h.startswith("c1")])
        rig.run(until=rig.env.now + 8.0)
        with pytest.raises(SystemException):
            rig.run(until=rig.node("c0h1").request_component(
                COUNTER_IFACE.repo_id))

        injector.heal_partition(cuts)
        # give the hierarchy a few update rounds to re-learn c1's offer
        rig.run(until=rig.env.now + 8.0)
        ior = rig.run(until=rig.node("c0h1").request_component(
            COUNTER_IFACE.repo_id))
        assert ior.host_id.startswith("c1")


class TestEventFaults:
    def test_consumer_host_crash_does_not_break_channel(self):
        rig = star_rig(2, seed=46)
        hub = rig.node("hub")
        hub.install_package(counter_package())
        inst = hub.container.create_instance("Counter")

        from repro.orb.services.events import (
            CallbackPushConsumer, EVENT_CHANNEL_IFACE)
        got = []
        consumer = CallbackPushConsumer(lambda a: got.append(a.value))
        h0 = rig.node("h0")
        cons_ior = h0.orb.adapter("root").activate(consumer)
        chan = hub.events.channel_ior("demo.tick")
        h0.orb.sync(h0.orb.stub(chan, EVENT_CHANNEL_IFACE)
                    .connect_push_consumer(cons_ior))

        stub = hub.orb.stub(inst.ports.facet("value").ior, COUNTER_IFACE)
        hub.orb.sync(stub.increment(1))
        rig.run(until=rig.env.now + 1.0)
        assert got == [1]

        # consumer dies; further pushes are oneway drops, no crash
        rig.topology.set_host_state("h0", alive=False)
        hub.orb.sync(stub.increment(1))
        rig.run(until=rig.env.now + 1.0)
        assert got == [1]
        # and a still-healthy producer keeps serving reads
        assert hub.orb.sync(stub.read()) == 2

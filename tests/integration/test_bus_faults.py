"""Bus-driven soft-state reporting under a flapping network.

Soft-state reports ride the event bus as batched ``report_batch``
oneways.  Batching must never change the registry's consistency
story: whatever the network drops is repaired by later reports, but a
batch that *does* arrive must apply its member reports exactly once
and in publication order.  This test floods the bus with
generation-stamped views while a fault injector flaps the links under
the delivery path, then checks the sequence of state applications at
the MRM: per host strictly increasing generations — gaps are loss
(allowed), a repeat is a duplicate, a decrease is a reorder (both
forbidden).
"""

import pytest

from repro.registry.groups import DistributedRegistry, RegistryConfig
from repro.registry.softstate import TOPIC
from repro.registry.view import NodeView
from repro.sim.faults import FaultInjector
from repro.sim.topology import star
from repro.testing import SimRig

pytestmark = pytest.mark.faults

HOSTS = ["h0", "h1", "h2"]


def deploy():
    rig = SimRig(star(3), seed=13)
    cfg = RegistryConfig(update_interval=1.0, event_bus=True)
    dr = DistributedRegistry(rig.nodes, cfg)
    dr.deploy({"g": list(HOSTS)})
    return rig, dr


class TestBusUnderFaults:
    def test_no_duplicate_or_reordered_application(self):
        rig, dr = deploy()
        agent = dr.groups["g"].agents[0]          # MRM lives on h0

        applied = []
        orig = agent.accept_report

        def recording(host, view, *a, **kw):
            applied.append((host, view.generation))
            return orig(host, view, *a, **kw)

        agent.accept_report = recording

        # Synthetic high-rate publishers: bursts of generation-stamped
        # views into each node's bus, faster than the real reporter and
        # several per flush window so batches carry real coalescence.
        def publisher(node):
            base = NodeView.collect(node).to_value()
            gen = 0
            while True:
                for _ in range(3):
                    gen += 1
                    node.bus.publish(
                        TOPIC,
                        (node.host_id, dict(base, generation=float(gen))))
                yield rig.env.timeout(0.15)

        for host in HOSTS:
            rig.env.process(publisher(rig.node(host)))

        # Flap the delivery path: the leaf links while traffic flows,
        # and twice the MRM's own uplink.
        injector = FaultInjector(rig.env, rig.topology)
        for t in (2.0, 4.1, 6.3, 8.0):
            injector.cut_link_at(t, "h1", "hub")
            injector.heal_link_at(t + 0.4, "h1", "hub")
        for t in (3.0, 7.2):
            injector.cut_link_at(t, "h2", "hub")
            injector.heal_link_at(t + 0.7, "h2", "hub")
        for t in (5.0, 9.1):
            injector.cut_link_at(t, "h0", "hub")
            injector.heal_link_at(t + 0.5, "h0", "hub")

        rig.run(until=12.0)

        # The real reporter interleaves views at generation 0 (nothing
        # installed changes registry.generation); the synthetic stream
        # starts at 1.
        synthetic = [(h, g) for h, g in applied if g > 0]
        per_host = {h: [g for hh, g in synthetic if hh == h]
                    for h in HOSTS}
        for host in HOSTS:
            gens = per_host[host]
            # Traffic got through despite the flapping...
            assert len(gens) >= 30, (host, len(gens))
            # ...and every application is fresh and in order: strictly
            # increasing, so no batch was double-applied (duplicate)
            # and no late flush overtook a newer one (reorder).
            assert all(b > a for a, b in zip(gens, gens[1:])), host
        # Loss happened under the flaps (otherwise this test isn't
        # exercising anything).  h0 hosts the MRM itself — loopback
        # delivery never touches a link — but h1/h2 cross the flapped
        # uplinks, so not every generation of theirs arrived.
        for host in ("h1", "h2"):
            gens = per_host[host]
            assert gens[-1] > len(gens), host

        # Delivery really was batched fan-in, not per-report oneways.
        assert rig.metrics.get("bus.remote.batches") >= 30
        assert (rig.metrics.get("bus.remote.events")
                >= 2 * rig.metrics.get("bus.remote.batches"))

    def test_registry_converges_after_flaps(self):
        rig, dr = deploy()
        injector = FaultInjector(rig.env, rig.topology)
        for t in (1.0, 2.6, 4.4):
            injector.cut_link_at(t, "h1", "hub")
            injector.heal_link_at(t + 0.6, "h1", "hub")
        rig.run(until=dr.settle_time() + 8.0)
        agent = dr.groups["g"].agents[0]
        assert sorted(agent.members) == HOSTS

"""End-to-end integration scenarios spanning every subsystem."""

import math

import pytest

from repro.container.migration import MigrationEngine
from repro.deployment import Deployer, LoadBalancer, RuntimePlanner
from repro.grid import (
    IdleMonitor,
    MonteCarloPiExecutor,
    VolunteerAgent,
    VolunteerMaster,
    montecarlo_package,
)
from repro.orb.exceptions import SystemException
from repro.registry.groups import (
    DistributedRegistry,
    RegistryConfig,
    groups_by_cluster,
)
from repro.sim.faults import ChurnModel, FaultInjector
from repro.sim.topology import clustered
from repro.testing import (
    COUNTER_IFACE,
    SimRig,
    counter_package,
    star_rig,
)
from repro.xmlmeta.descriptors import (
    AssemblyConnection,
    AssemblyDescriptor,
    AssemblyInstance,
)


class TestFullStack:
    """The paper's whole pipeline in one scenario: install at run time,
    resolve network-wide, deploy an assembly, migrate under load."""

    def test_lifecycle_across_clusters(self):
        rig = SimRig(clustered(2, 4), seed=20)
        cfg = RegistryConfig(update_interval=2.0, replicas=2)
        dr = DistributedRegistry(rig.nodes, cfg)
        dr.deploy(groups_by_cluster(rig.topology.host_ids()))

        # run-time install in cluster 1
        publisher = rig.node("c1h3")
        publisher.install_package(counter_package())
        rig.run(until=dr.settle_time())

        # network-wide resolution from cluster 0
        requester = rig.node("c0h2")
        ior = rig.run(until=requester.request_component(
            COUNTER_IFACE.repo_id))
        stub = requester.orb.stub(ior, COUNTER_IFACE)
        assert requester.orb.sync(stub.increment(5)) == 5

        # deploy an assembly using the same component
        deployer = Deployer(rig.nodes, RuntimePlanner(),
                            coordinator_host="c0h0")
        assembly = AssemblyDescriptor(
            name="pair",
            instances=[AssemblyInstance("a", "Counter"),
                       AssemblyInstance("b", "Counter")],
            connections=[AssemblyConnection("a", "peer", "b", "value")])
        app = rig.run(until=deployer.deploy(assembly))

        # migrate 'b' somewhere else and keep using the connection
        current = app.placement["b"]
        target = next(h for h in rig.topology.host_ids()
                      if h != current and h != app.placement["a"])
        rig.run(until=app.migrate("b", target))
        a_inst = rig.node(app.placement["a"]).container.find_instance(
            app.instance_id("b" if False else "a"))
        peer_stub = a_inst.executor.context.connection("peer")
        node_a = rig.node(app.placement["a"])
        assert node_a.orb.sync(peer_stub.increment(1)) >= 1

        rig.run(until=app.teardown())

    def test_registry_survives_churn_while_serving(self):
        rig = SimRig(clustered(2, 5), seed=21)
        cfg = RegistryConfig(update_interval=2.0, replicas=2,
                             query_timeout=1.0)
        dr = DistributedRegistry(rig.nodes, cfg)
        dr.deploy(groups_by_cluster(rig.topology.host_ids()))
        provider_host = "c1h4"
        rig.node(provider_host).install_package(counter_package())
        rig.run(until=dr.settle_time())

        injector = FaultInjector(rig.env, rig.topology)
        # churn everyone except gateways, MRM hosts and the provider
        protected = {"c0h0", "c1h0", provider_host}
        protected.update(h for g in dr.groups.values()
                         for h in g.mrm_hosts)
        if dr.root is not None:
            # Root MRMs no longer share the first group's hosts; they
            # are registry infrastructure and stay out of the churn.
            protected.update(dr.root.mrm_hosts)
        ChurnModel(rig.env, injector, rig.rngs,
                   rig.topology.host_ids(), mean_uptime=20.0,
                   mean_downtime=5.0, protected=protected)

        successes, failures = 0, 0
        for _ in range(20):
            requester = rig.node("c0h1")
            try:
                rig.run(until=requester.request_component(
                    COUNTER_IFACE.repo_id))
                successes += 1
            except SystemException:
                failures += 1
            rig.run(until=rig.env.now + 3.0)
        # the registry keeps answering through the churn
        assert successes >= 18

    def test_volunteer_grid_with_simultaneous_whiteboard(self):
        """Two very different applications share one network."""
        from repro.cscw import (
            SURFACE_IFACE, display_package, whiteboard_package)
        rig = star_rig(6, seed=22)
        hub = rig.node("hub")
        hub.install_package(montecarlo_package())
        hub.install_package(whiteboard_package())
        rig.node("h5").install_package(display_package())

        # grid job in the background
        master = VolunteerMaster(hub, "MonteCarloPi", shard_timeout=30.0)
        for i in range(4):
            node = rig.node(f"h{i}")
            monitor = IdleMonitor(node, rig.rngs.stream(f"idle.{i}"),
                                  mean_busy=1e9, mean_idle=1e9)
            VolunteerAgent(node, monitor, master.ior)
        done = master.submit(
            [{"samples": 500_000, "seed": i} for i in range(8)])

        # interactive whiteboard in the foreground
        board = hub.container.create_instance("Whiteboard")
        surface = rig.node("h5").orb.stub(
            board.ports.facet("surface").ior, SURFACE_IFACE)
        for i in range(5):
            rig.node("h5").orb.sync(surface.add_stroke({
                "author": "u", "x0": 0.0, "y0": 0.0,
                "x1": 1.0, "y1": float(i), "color": "red"}))

        partials = rig.run(until=done)
        pi = MonteCarloPiExecutor.merge_values(partials)
        assert abs(pi - math.pi) < 0.02
        assert rig.node("h5").orb.sync(surface.revision()) == 5

    def test_load_balancer_with_registry_live(self):
        rig = star_rig(3, seed=23)
        hub = rig.node("hub")
        hub.install_package(counter_package(cpu_units=100.0))
        dr = DistributedRegistry(rig.nodes,
                                 RegistryConfig(update_interval=2.0))
        dr.deploy({"g0": rig.topology.host_ids()})

        # pile everything onto one host, then let the balancer fix it
        from repro.deployment.planner import PlannerBase

        class PinToH0(PlannerBase):
            def plan(self, assembly, views, qos_of):
                return {inst.name: "h0" for inst in assembly.instances}

        deployer = Deployer(rig.nodes, PinToH0(),
                            coordinator_host="hub")
        assembly = AssemblyDescriptor(
            name="pile",
            instances=[AssemblyInstance(f"i{k}", "Counter")
                       for k in range(4)])
        rig.run(until=deployer.deploy(assembly))
        balancer = LoadBalancer(deployer, threshold=0.2, interval=3.0)
        balancer.start()
        rig.run(until=rig.env.now + 40.0)
        balancer.stop()
        from repro.deployment.planner import load_imbalance
        views = rig.run(until=deployer.gather_views())
        assert load_imbalance(views) <= 0.35
        assert len(balancer.actions) >= 1


class TestDeterminism:
    """Same seed => identical behaviour, across the whole stack."""

    def scenario(self, seed):
        rig = SimRig(clustered(2, 3), seed=seed)
        dr = DistributedRegistry(rig.nodes,
                                 RegistryConfig(update_interval=2.0))
        dr.deploy(groups_by_cluster(rig.topology.host_ids()))
        rig.node("c1h2").install_package(counter_package())
        rig.run(until=dr.settle_time())
        ior = rig.run(until=rig.node("c0h1").request_component(
            COUNTER_IFACE.repo_id))
        rig.run(until=30.0)
        return (str(ior), rig.env.now, rig.metrics.get("net.bytes"),
                rig.metrics.get("net.messages"),
                rig.metrics.get("registry.soft.msgs"))

    def test_identical_runs(self):
        assert self.scenario(99) == self.scenario(99)

    def test_different_seeds_still_converge(self):
        a = self.scenario(1)
        b = self.scenario(2)
        assert a[0] == b[0]  # same resolution outcome

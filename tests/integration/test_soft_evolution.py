"""Soft application evolution (§1).

"Enhanced versions of existing components can substitute previous
versions seamlessly ...  New components can also add new functionality
... thus allowing applications to evolve easily."

Scenario: Counter 1.0 serves an application; Counter 2.0 is installed
at run time.  New resolutions pick 2.0, running 1.0 instances keep
serving, and version-range pins still select 1.x on demand.
"""

import pytest

from repro.registry.groups import DistributedRegistry, RegistryConfig
from repro.testing import COUNTER_IFACE, SimRig, counter_package, star_rig
from repro.xmlmeta.versions import Version, VersionRange


class TestVersionedSubstitution:
    def test_new_version_becomes_default_old_keeps_running(self):
        rig = star_rig(2, seed=60)
        hub = rig.node("hub")
        hub.install_package(counter_package("1.0.0"))
        old = hub.container.create_instance("Counter")
        old.executor.count = 7

        # run-time upgrade: v2 arrives through the acceptor
        acceptor = rig.node("h0").service_stub("hub", "acceptor")
        rig.node("h0").orb.sync(
            acceptor.install(counter_package("2.0.0").data))
        assert hub.repository.is_installed("Counter",
                                           VersionRange(">=2.0"))

        # the old instance keeps serving, untouched
        stub = rig.node("h0").orb.stub(old.ports.facet("value").ior,
                                       COUNTER_IFACE)
        assert rig.node("h0").orb.sync(stub.read()) == 7

        # fresh instantiation defaults to the best version
        fresh = hub.container.create_instance("Counter")
        assert fresh.component_class.version == Version(2, 0, 0)
        assert old.component_class.version == Version(1, 0, 0)

        # but a pinned range still selects the 1.x line
        pinned = hub.container.create_instance(
            "Counter", versions=VersionRange(">=1.0, <2.0"))
        assert pinned.component_class.version == Version(1, 0, 0)

    def test_factory_and_registry_reflect_both_versions(self):
        rig = star_rig(1, seed=61)
        hub = rig.node("hub")
        hub.install_package(counter_package("1.0.0"))
        hub.install_package(counter_package("1.5.0"))
        infos = hub.registry.installed()
        versions = sorted(i.version for i in infos)
        assert versions == ["1.0.0", "1.5.0"]

    def test_network_resolution_prefers_running_then_best_version(self):
        rig = star_rig(2, seed=62)
        hub = rig.node("hub")
        hub.install_package(counter_package("1.0.0"))
        dr = DistributedRegistry(rig.nodes,
                                 RegistryConfig(update_interval=1.0))
        dr.deploy({"g0": rig.topology.host_ids()})
        rig.run(until=dr.settle_time())

        # first resolution creates a 1.0 instance
        ior1 = rig.run(until=rig.node("h0").request_component(
            COUNTER_IFACE.repo_id))
        rig.run(until=rig.env.now + 3.0)
        # an already-running provider is reused even after an upgrade
        hub.install_package(counter_package("2.0.0"))
        rig.run(until=rig.env.now + 3.0)
        ior2 = rig.run(until=rig.node("h1").request_component(
            COUNTER_IFACE.repo_id))
        assert ior2 == ior1  # substitutability: same interface satisfied

    def test_old_version_can_be_retired(self):
        rig = star_rig(1, seed=63)
        hub = rig.node("hub")
        hub.install_package(counter_package("1.0.0"))
        hub.install_package(counter_package("2.0.0"))
        hub.repository.remove("Counter", Version(1, 0, 0))
        assert not hub.repository.is_installed(
            "Counter", VersionRange("<2.0"))
        inst = hub.container.create_instance("Counter")
        assert inst.component_class.version == Version(2, 0, 0)


class TestInterfaceCompatibleReplacement:
    def test_component_with_superior_offerings_substitutes(self):
        """§2.1: substitution by a component 'with the same (or even
        superior) offerings'."""
        rig = star_rig(1, seed=64)
        hub = rig.node("hub")
        # "SuperCounter" provides the same Counter interface
        hub.install_package(counter_package(name="SuperCounter"))
        ior = rig.run(until=hub.request_component(COUNTER_IFACE.repo_id))
        stub = hub.orb.stub(ior, COUNTER_IFACE)
        assert hub.orb.sync(stub.increment(1)) == 1
        # the client never named "SuperCounter": only the interface
        assert ior.object_key.startswith("SuperCounter")

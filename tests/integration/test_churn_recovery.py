"""End-to-end self-healing under churn (§2.4.3).

A replicated, supervised assembly rides out a scripted storm of host
crashes, restarts and one network partition.  The invariant is the
paper's: "spurious node failures and node disconnections (and
re-connections)" are survived *gracefully* — every instance ends up
incarnated on a live host, connections are re-wired, the replica
primary stays fenced onto a live member, and nothing leaks.
"""

import pytest

from repro.container.replication import ReplicaManager
from repro.deployment import (
    ApplicationSupervisor,
    Deployer,
    LoadBalancer,
    RuntimePlanner,
)
from repro.sim.faults import ChurnModel, FaultInjector
from repro.sim.topology import SERVER, star
from repro.testing import SimRig, counter_package
from repro.xmlmeta.descriptors import (
    AssemblyConnection,
    AssemblyDescriptor,
    AssemblyInstance,
)

pytestmark = pytest.mark.faults


def assembly():
    return AssemblyDescriptor(
        name="app",
        instances=[AssemblyInstance(f"i{k}", "Counter") for k in range(4)],
        connections=[AssemblyConnection("i0", "peer", "i1", "value"),
                     AssemblyConnection("i2", "peer", "i3", "value")])


class TestChurnRecovery:
    def test_every_instance_survives_scripted_churn(self):
        rig = SimRig(star(4, leaf_profile=SERVER), seed=7)
        hub = rig.node("hub")
        hub.install_package(counter_package(cpu_units=50.0))
        dep = Deployer(rig.nodes, RuntimePlanner(), coordinator_host="hub")
        app = rig.run(until=dep.deploy(assembly()))
        manager = ReplicaManager(hub)
        group = rig.run(until=manager.create_group(
            "Counter", ["h0", "h1", "h2"]))
        sup = ApplicationSupervisor(dep, interval=2.0)
        sup.watch_group(group, manager)

        injector = FaultInjector(rig.env, rig.topology)
        # staggered crash/restart cycles, never the coordinator hub
        injector.outages([("h0", 10.0, 18.0),
                          ("h1", 30.0, 18.0),
                          ("h2", 50.0, 12.0)])
        # plus one transient partition that isolates h3 and heals
        injector.partition_at(
            70.0, ["h3"],
            [h for h in rig.topology.host_ids() if h != "h3"],
            duration=6.0)
        rig.run(until=100.0)
        sup.stop()

        # every instance ended up incarnated on a live host
        for name, host in app.placement.items():
            assert rig.topology.host(host).alive
            inst = rig.node(host).container.find_instance(
                app.instance_id(name))
            assert inst is not None
        # connections were re-wired: calls flow end to end again
        for user, provider in (("i0", "i1"), ("i2", "i3")):
            uhost = app.placement[user]
            uinst = rig.node(uhost).container.find_instance(
                app.instance_id(user))
            receptacle = uinst.ports.receptacle("peer")
            assert receptacle.connected
            assert receptacle.peer.host_id == app.placement[provider]
            stub = uinst.executor.context.connection("peer")
            assert isinstance(rig.node(uhost).orb.sync(stub.increment(1)),
                              int)
        # the watched group's primary was fenced onto a live member
        assert rig.topology.host(group.primary.host).alive
        # recoveries actually happened and every stale orphan got swept
        assert rig.metrics.get("supervisor.recoveries") >= 1
        assert rig.metrics.get("supervisor.promotions") >= 1
        assert dep.orphans == []

    def test_balancer_and_supervisor_survive_random_churn(self):
        rig = SimRig(star(3, leaf_profile=SERVER), seed=11)
        hub = rig.node("hub")
        hub.install_package(counter_package(cpu_units=100.0))
        dep = Deployer(rig.nodes, RuntimePlanner(), coordinator_host="hub")
        rig.run(until=dep.deploy(assembly()))
        sup = ApplicationSupervisor(dep, interval=2.0, checkpoint=False)
        balancer = LoadBalancer(dep, threshold=0.2, interval=3.0)
        balancer.start()
        injector = FaultInjector(rig.env, rig.topology)
        ChurnModel(rig.env, injector, rig.rngs,
                   hosts=["h0", "h1", "h2"],
                   mean_uptime=20.0, mean_downtime=6.0,
                   protected=["hub"])
        # random crashes land mid-migration, mid-recovery, mid-rewire;
        # neither background loop may die of an unhandled exception
        rig.run(until=80.0)
        assert balancer._proc.is_alive
        assert sup._proc.is_alive
        balancer.stop()
        sup.stop()

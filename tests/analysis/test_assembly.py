"""Layer 3: whole-assembly wiring checks."""

from repro.analysis.assembly import check_assembly
from repro.analysis.descriptors import PackageSet
from repro.analysis.findings import Diagnostics
from repro.analysis.idlcheck import check_specification
from repro.idl import parse
from repro.xmlmeta.descriptors import (
    AssemblyConnection,
    AssemblyDescriptor,
    AssemblyInstance,
    ComponentTypeDescriptor,
    EventPortDecl,
    PortDecl,
    SoftwareDescriptor,
)
from repro.xmlmeta.versions import Version, VersionRange

IDL = '#pragma prefix "corbalc"\n' \
      "module Demo { interface Counter { long read(); }; " \
      "interface Audited : Counter { long audits(); }; " \
      "interface Other { void o(); }; };"
COUNTER_ID = "IDL:corbalc/Demo/Counter:1.0"
AUDITED_ID = "IDL:corbalc/Demo/Audited:1.0"
OTHER_ID = "IDL:corbalc/Demo/Other:1.0"

GRAPH = check_specification(parse(IDL), Diagnostics()).graph


def packages() -> PackageSet:
    out = PackageSet()
    out.add(
        SoftwareDescriptor(name="Counter", version=Version.parse("1.2.0")),
        ComponentTypeDescriptor(
            name="Counter",
            provides=[PortDecl("value", AUDITED_ID)],
            uses=[PortDecl("peer", COUNTER_ID, optional=True)],
            emits=[EventPortDecl("ticks", "demo.tick")]))
    out.add(
        SoftwareDescriptor(name="Audit", version=Version.parse("1.0.0")),
        ComponentTypeDescriptor(
            name="Audit",
            uses=[PortDecl("backend", COUNTER_ID),
                  PortDecl("tap", OTHER_ID, optional=True)],
            consumes=[EventPortDecl("watch", "demo.tick"),
                      EventPortDecl("other", "demo.other")]))
    return out


def run(instances, connections):
    diag = Diagnostics()
    assembly = AssemblyDescriptor(name="app", instances=instances,
                                  connections=list(connections))
    check_assembly(assembly, packages(), GRAPH, diag)
    return diag


GOOD_INSTANCES = [AssemblyInstance("c", "Counter"),
                  AssemblyInstance("a", "Audit")]


class TestInstances:
    def test_clean_assembly(self):
        diag = run(GOOD_INSTANCES, [
            AssemblyConnection("a", "backend", "c", "value"),
            AssemblyConnection("a", "watch", "c", "ticks", kind="event"),
        ])
        assert len(diag) == 0

    def test_unknown_component(self):
        diag = run([AssemblyInstance("x", "Nonexistent")], [])
        assert diag.codes() == {"ASM001"}

    def test_unsatisfiable_instance_version(self):
        diag = run([AssemblyInstance("c", "Counter",
                                     VersionRange(">=9.0"))], [])
        assert diag.codes() == {"ASM002"}

    def test_empty_instance_version_range(self):
        diag = run([AssemblyInstance("c", "Counter",
                                     VersionRange(">=2.0, <1.0"))], [])
        assert diag.codes() == {"ASM002"}

    def test_duplicate_instance_names(self):
        # descriptors reject duplicates at construction, but lists can
        # be mutated afterwards — the analyzer re-checks
        assembly = AssemblyDescriptor(
            name="app", instances=[AssemblyInstance("c", "Counter")])
        assembly.instances.append(AssemblyInstance("c", "Audit"))
        diag = Diagnostics()
        check_assembly(assembly, packages(), GRAPH, diag)
        assert "ASM003" in diag.codes()


class TestConnections:
    def test_dangling_instance(self):
        assembly = AssemblyDescriptor(name="app",
                                      instances=list(GOOD_INSTANCES))
        assembly.connections.append(
            AssemblyConnection("ghost", "p", "c", "value"))
        diag = Diagnostics()
        check_assembly(assembly, packages(), GRAPH, diag)
        assert "ASM004" in diag.codes()

    def test_unknown_port(self):
        diag = run(GOOD_INSTANCES, [
            AssemblyConnection("a", "backend", "c", "nothere")])
        assert "ASM005" in diag.codes()

    def test_wrong_direction(self):
        diag = run(GOOD_INSTANCES, [
            AssemblyConnection("c", "value", "c", "value")])
        assert "ASM006" in diag.codes()

    def test_subtype_provider_accepted(self):
        # Audit.backend expects Counter; Counter.value provides Audited,
        # a subtype — legal.
        diag = run(GOOD_INSTANCES, [
            AssemblyConnection("a", "backend", "c", "value")])
        assert "ASM007" not in diag.codes()

    def test_incompatible_interfaces(self):
        diag = run(GOOD_INSTANCES, [
            AssemblyConnection("a", "tap", "c", "value")])
        assert "ASM007" in diag.codes()

    def test_event_kind_mismatch(self):
        diag = run(GOOD_INSTANCES, [
            AssemblyConnection("a", "other", "c", "ticks", kind="event")])
        assert "ASM008" in diag.codes()

    def test_event_direction(self):
        diag = run(GOOD_INSTANCES, [
            AssemblyConnection("a", "backend", "c", "ticks",
                               kind="event")])
        assert "ASM006" in diag.codes()


class TestWholeGraph:
    def test_dependency_cycle_warns(self):
        diag = run([AssemblyInstance("c1", "Counter"),
                    AssemblyInstance("c2", "Counter")], [
            AssemblyConnection("c1", "peer", "c2", "value"),
            AssemblyConnection("c2", "peer", "c1", "value"),
        ])
        assert "ASM009" in diag.codes()
        assert not diag.has_errors()

    def test_unconnected_required_receptacle_warns(self):
        diag = run(GOOD_INSTANCES, [])
        asm010 = diag.by_code("ASM010")
        assert len(asm010) == 1           # a.backend; c.peer is optional
        assert "backend" in asm010[0].message
        assert not diag.has_errors()

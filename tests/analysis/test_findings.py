"""The diagnostics engine and the Finding value type."""

import json

from repro.analysis.findings import Diagnostics, Finding, Severity


class TestSeverity:
    def test_ordering_matches_exit_codes(self):
        assert int(Severity.INFO) == 0
        assert int(Severity.WARNING) == 1
        assert int(Severity.ERROR) == 2

    def test_renders_lowercase(self):
        assert str(Severity.ERROR) == "error"


class TestFinding:
    def test_as_dict_is_json_ready(self):
        finding = Finding(code="IDL001", severity=Severity.ERROR,
                          location="a.idl:3", message="undefined name 'X'")
        blob = json.dumps(finding.as_dict())
        assert json.loads(blob)["severity"] == "error"
        assert json.loads(blob)["location"] == "a.idl:3"

    def test_render_includes_code_and_location(self):
        finding = Finding(code="ASM004", severity=Severity.WARNING,
                          location="app", message="boom")
        text = finding.render()
        assert "ASM004" in text and "app" in text and "warning" in text


class TestDiagnostics:
    def test_severity_buckets(self):
        diag = Diagnostics()
        diag.info("A001", "x", "note")
        diag.warning("A002", "x", "hmm")
        diag.error("A003", "x", "bad")
        assert len(diag) == 3
        assert [f.code for f in diag.errors] == ["A003"]
        assert [f.code for f in diag.warnings] == ["A002"]
        assert diag.has_errors()
        assert diag.max_severity() == 2

    def test_empty_engine_is_clean(self):
        diag = Diagnostics()
        assert not diag.has_errors()
        assert diag.max_severity() == 0
        assert diag.render_text() == "no findings\n"

    def test_sorted_puts_errors_first(self):
        diag = Diagnostics()
        diag.info("Z001", "a", "info")
        diag.error("A001", "b", "error")
        assert diag.sorted()[0].code == "A001"

    def test_render_text_counts_line(self):
        diag = Diagnostics()
        diag.error("A001", "f", "x")
        diag.warning("B001", "f", "y")
        text = diag.render_text()
        assert "2 finding(s): 1 error(s), 1 warning(s)" in text

    def test_as_dict_counts(self):
        diag = Diagnostics()
        diag.error("A001", "f", "x")
        data = diag.as_dict()
        assert data["counts"] == {"total": 1, "errors": 1, "warnings": 0}
        assert data["max_severity"] == 2

    def test_by_code_and_codes(self):
        diag = Diagnostics()
        diag.error("A001", "f", "x")
        diag.error("A001", "g", "y")
        diag.warning("B001", "f", "z")
        assert diag.codes() == {"A001", "B001"}
        assert len(diag.by_code("A001")) == 2

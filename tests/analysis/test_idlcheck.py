"""Layer 1: IDL semantic checks and the subtype oracle."""

import pytest

from repro.analysis.findings import Diagnostics
from repro.analysis.idlcheck import InterfaceGraph, check_specification
from repro.idl import parse

PREFIX = '#pragma prefix "corbalc"\n'


def check(source: str):
    diag = Diagnostics()
    checked = check_specification(parse(source), diag, source="t.idl")
    return diag, checked


def codes(diag) -> set[str]:
    return diag.codes()


class TestCleanSpecs:
    def test_counter_demo_is_clean(self):
        diag, _ = check(PREFIX + """
        module Demo {
          interface Counter { long increment(in long by); long read(); };
        };
        """)
        assert len(diag) == 0

    def test_sequence_recursion_is_legal(self):
        diag, _ = check("""
        struct Tree { long value; sequence<Tree> children; };
        """)
        assert len(diag) == 0

    def test_forward_use_after_declaration_order(self):
        diag, _ = check("""
        struct A { long x; };
        struct B { A a; };
        """)
        assert len(diag) == 0


class TestNameChecks:
    def test_undefined_name(self):
        diag, _ = check("typedef Missing T;")
        assert codes(diag) == {"IDL001"}

    def test_use_before_declaration_is_undefined(self):
        diag, _ = check("""
        struct B { A a; };
        struct A { long x; };
        """)
        assert codes(diag) == {"IDL001"}

    def test_duplicate_declaration(self):
        diag, _ = check("""
        struct S { long x; };
        struct S { long y; };
        """)
        assert codes(diag) == {"IDL002"}

    def test_duplicate_member(self):
        diag, _ = check("struct S { long x; short x; };")
        assert codes(diag) == {"IDL002"}

    def test_case_insensitive_collision(self):
        diag, _ = check("""
        interface Counter { void a(); };
        interface counter { void b(); };
        """)
        assert codes(diag) == {"IDL003"}

    def test_scoped_resolution_through_modules(self):
        diag, _ = check("""
        module M { struct Inner { long x; }; };
        struct Outer { M::Inner i; };
        """)
        assert len(diag) == 0

    def test_wrong_role_exception_as_member_type(self):
        diag, _ = check("""
        exception Bad { string why; };
        struct S { Bad b; };
        """)
        assert codes(diag) == {"IDL014"}


class TestOnewayLegality:
    def test_nonvoid_result(self):
        diag, _ = check("interface I { oneway long f(); };")
        assert codes(diag) == {"IDL004"}

    def test_out_param(self):
        diag, _ = check("interface I { oneway void f(out long x); };")
        assert codes(diag) == {"IDL005"}

    def test_raises(self):
        diag, _ = check("""
        exception E { string why; };
        interface I { oneway void f() raises (E); };
        """)
        assert codes(diag) == {"IDL006"}

    def test_legal_oneway_is_clean(self):
        diag, _ = check("interface I { oneway void f(in long x); };")
        assert len(diag) == 0


class TestUnions:
    def test_bad_discriminator(self):
        diag, _ = check("union U switch (float) { case 1: long a; };")
        assert "IDL007" in codes(diag)

    def test_struct_discriminator(self):
        diag, _ = check("""
        struct S { long x; };
        union U switch (S) { case 1: long a; };
        """)
        assert "IDL007" in codes(diag)

    def test_enum_discriminator_with_good_labels(self):
        diag, _ = check("""
        enum Color { red, green };
        union U switch (Color) { case red: long a; default: short b; };
        """)
        assert len(diag) == 0

    def test_enum_discriminator_with_unknown_label(self):
        diag, _ = check("""
        enum Color { red, green };
        union U switch (Color) { case blue: long a; };
        """)
        assert codes(diag) == {"IDL008"}

    def test_int_label_on_bool_union(self):
        diag, _ = check(
            "union U switch (boolean) { case TRUE: long a; "
            "case 3: short b; };")
        assert codes(diag) == {"IDL008"}

    def test_duplicate_labels(self):
        diag, _ = check(
            "union U switch (long) { case 1: long a; case 1: short b; };")
        assert codes(diag) == {"IDL009"}

    def test_multiple_defaults(self):
        diag, _ = check(
            "union U switch (long) { default: long a; default: short b; };")
        assert codes(diag) == {"IDL010"}

    def test_typedefed_discriminator_resolves(self):
        diag, _ = check("""
        typedef long Tag;
        union U switch (Tag) { case 1: long a; };
        """)
        assert len(diag) == 0


class TestRecursion:
    def test_direct_recursion(self):
        diag, _ = check("struct Node { Node next; };")
        assert codes(diag) == {"IDL011"}

    def test_mutual_recursion(self):
        # the forward reference is itself IDL001 under declaration-order
        # rules, but the containment cycle is still diagnosed
        diag, _ = check("""
        struct A { B b; };
        struct B { A a; };
        """)
        assert {"IDL001", "IDL011"} <= codes(diag)

    def test_recursion_through_typedef_and_array(self):
        diag, _ = check("""
        struct Cell { long v; };
        struct Grid { Cell cells[4]; };
        """)
        assert len(diag) == 0

    def test_self_array_recursion(self):
        diag, _ = check("struct S { S next[2]; };")
        assert codes(diag) == {"IDL011"}


class TestInterfaceGraph:
    def test_inheritance_and_subtype_oracle(self):
        _, checked = check(PREFIX + """
        module Demo {
          interface A { void a(); };
          interface B : A { void b(); };
          interface C : B { void c(); };
          interface Other { void o(); };
        };
        """)
        g = checked.graph
        a = "IDL:corbalc/Demo/A:1.0"
        c = "IDL:corbalc/Demo/C:1.0"
        other = "IDL:corbalc/Demo/Other:1.0"
        assert g.is_subtype(c, a)
        assert g.is_subtype(a, a)
        assert not g.is_subtype(a, c)
        assert not g.is_subtype(other, a)

    def test_base_not_interface(self):
        diag, _ = check("""
        struct S { long x; };
        interface I : S { void f(); };
        """)
        assert codes(diag) == {"IDL013"}

    def test_undefined_base(self):
        diag, _ = check("interface I : Ghost { void f(); };")
        assert codes(diag) == {"IDL001"}

    def test_cycle_detection_in_seeded_graph(self):
        g = InterfaceGraph()
        g.add_interface("IDL:a:1.0", "a", ["IDL:b:1.0"])
        g.add_interface("IDL:b:1.0", "b", ["IDL:a:1.0"])
        assert g.cycles()
        # queries stay terminating on a cyclic graph
        assert g.is_subtype("IDL:a:1.0", "IDL:b:1.0")

    def test_merge_and_from_ifr(self):
        from repro.orb.dii import InterfaceRepository
        from repro.orb.core import InterfaceDef
        ifr = InterfaceRepository()
        base = InterfaceDef("IDL:x/Base:1.0", "Base")
        ifr.register(base)
        ifr.register(InterfaceDef("IDL:x/Sub:1.0", "Sub", bases=(base,)))
        g = InterfaceGraph.from_ifr(ifr)
        assert g.is_subtype("IDL:x/Sub:1.0", "IDL:x/Base:1.0")

    def test_findings_carry_source_and_line(self):
        diag, _ = check("typedef Missing T;")
        finding = diag.findings[0]
        assert finding.location.startswith("t.idl:")

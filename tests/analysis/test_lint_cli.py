"""The lint CLI over the shipped fixtures: text, JSON, exit codes."""

import json
from pathlib import Path

import pytest

from repro.tools.lint import gather_paths, main

BROKEN = Path(__file__).parent / "fixtures" / "broken"
EXAMPLES = Path(__file__).parents[2] / "examples" / "descriptors"

#: Every defect deliberately seeded in the broken fixture set.
SEEDED_ERROR_CODES = {
    "IDL001", "IDL003", "IDL004", "IDL008", "IDL009", "IDL011",
    "CMP001", "CMP002", "CMP003",
    "ASM001", "ASM005", "ASM006", "ASM007", "ASM008",
    "SCH001",
}
SEEDED_WARNING_CODES = {"CMP004", "ASM010"}


class TestBrokenFixture:
    def test_text_report_contains_every_seeded_code(self, capsys):
        exit_code = main([str(BROKEN)])
        out = capsys.readouterr().out
        for code in SEEDED_ERROR_CODES | SEEDED_WARNING_CODES:
            assert code in out, f"{code} missing from report"
        assert exit_code == 2

    def test_json_report_is_parseable_and_complete(self, capsys):
        exit_code = main([str(BROKEN), "--format", "json"])
        data = json.loads(capsys.readouterr().out)
        reported = {f["code"] for f in data["findings"]}
        assert SEEDED_ERROR_CODES <= reported
        assert SEEDED_WARNING_CODES <= reported
        assert data["max_severity"] == 2
        assert data["counts"]["errors"] >= len(SEEDED_ERROR_CODES)
        assert exit_code == 2

    def test_findings_carry_locations(self, capsys):
        main([str(BROKEN), "--format", "json"])
        data = json.loads(capsys.readouterr().out)
        by_code = {f["code"]: f for f in data["findings"]}
        assert "broken.idl" in by_code["IDL011"]["location"]
        assert "app.assembly.xml" in by_code["ASM007"]["location"]


class TestCleanFixture:
    def test_examples_have_zero_findings(self, capsys):
        exit_code = main([str(EXAMPLES)])
        out = capsys.readouterr().out
        assert exit_code == 0
        assert "no findings" in out

    def test_examples_json_is_empty(self, capsys):
        exit_code = main([str(EXAMPLES), "--format", "json"])
        data = json.loads(capsys.readouterr().out)
        assert exit_code == 0
        assert data["findings"] == []
        assert data["counts"]["total"] == 0


class TestCliMechanics:
    def test_gather_paths_expands_directories(self):
        files = gather_paths([str(BROKEN)])
        suffixes = {f.suffix for f in files}
        assert suffixes == {".idl", ".xml"}

    def test_single_file_lint(self, capsys):
        exit_code = main([str(BROKEN / "broken.idl")])
        out = capsys.readouterr().out
        assert exit_code == 2
        assert "IDL011" in out

    def test_nothing_to_lint_fails(self, tmp_path, capsys):
        assert main([str(tmp_path)]) == 2

    def test_warning_only_input_exits_one(self, tmp_path, capsys):
        # a lone componenttype (no softpkg, no ports) only warns
        (tmp_path / "solo.componenttype.xml").write_text(
            '<componenttype name="Solo" lifecycle="session">'
            '<qos cpu="1.0" memory="1.0" bandwidth="0.0" />'
            "</componenttype>")
        exit_code = main([str(tmp_path)])
        out = capsys.readouterr().out
        assert exit_code == 1
        assert "LNT004" in out

    def test_unknown_root_tag(self, tmp_path, capsys):
        (tmp_path / "odd.xml").write_text("<wibble/>")
        exit_code = main([str(tmp_path)])
        assert exit_code == 2
        assert "LNT002" in capsys.readouterr().out

    def test_malformed_xml(self, tmp_path, capsys):
        (tmp_path / "bad.xml").write_text("<assembly name='x'")
        exit_code = main([str(tmp_path)])
        assert exit_code == 2
        assert "SCH001" in capsys.readouterr().out

"""Layer 2: descriptor cross-checks against IDL and the package set."""

from repro.analysis.descriptors import (
    PackageSet,
    check_component_type,
    check_software,
)
from repro.analysis.findings import Diagnostics
from repro.analysis.idlcheck import check_specification
from repro.idl import parse
from repro.xmlmeta.descriptors import (
    ComponentTypeDescriptor,
    Dependency,
    EventPortDecl,
    PortDecl,
    QoSSpec,
    SoftwareDescriptor,
)
from repro.xmlmeta.versions import Version, VersionRange

IDL = '#pragma prefix "corbalc"\n' \
      "module Demo { interface Counter { long read(); }; " \
      "interface Audited : Counter { long audits(); }; };"
COUNTER_ID = "IDL:corbalc/Demo/Counter:1.0"
AUDITED_ID = "IDL:corbalc/Demo/Audited:1.0"


def graph():
    return check_specification(parse(IDL), Diagnostics()).graph


def soft(name="C", version="1.0.0", deps=()):
    return SoftwareDescriptor(name=name, version=Version.parse(version),
                              dependencies=list(deps))


def comp(name="C", **kwargs):
    return ComponentTypeDescriptor(name=name, **kwargs)


class TestComponentTypeChecks:
    def test_resolved_ports_are_clean(self):
        diag = Diagnostics()
        check_component_type(
            comp(provides=[PortDecl("value", AUDITED_ID)],
                 uses=[PortDecl("peer", COUNTER_ID, optional=True)]),
            graph(), diag)
        assert len(diag) == 0

    def test_unresolved_port_repo_id(self):
        diag = Diagnostics()
        check_component_type(
            comp(provides=[PortDecl("value", "IDL:corbalc/No/Such:1.0")]),
            graph(), diag)
        assert diag.codes() == {"CMP001"}
        assert diag.has_errors()

    def test_unresolved_port_is_info_when_lenient(self):
        diag = Diagnostics()
        check_component_type(
            comp(provides=[PortDecl("value", "IDL:corbalc/No/Such:1.0")]),
            graph(), diag, strict_interfaces=False)
        assert diag.codes() == {"CMP001"}
        assert not diag.has_errors()

    def test_duplicate_event_port_name(self):
        diag = Diagnostics()
        check_component_type(
            comp(emits=[EventPortDecl("tick", "a")],
                 consumes=[EventPortDecl("tick", "b")]),
            graph(), diag)
        assert "CMP006" in diag.codes()

    def test_event_port_shadowing_interface_port(self):
        diag = Diagnostics()
        check_component_type(
            comp(provides=[PortDecl("p", COUNTER_ID)],
                 emits=[EventPortDecl("p", "a")]),
            graph(), diag)
        assert "CMP006" in diag.codes()

    def test_negative_qos(self):
        diag = Diagnostics()
        check_component_type(
            comp(qos=QoSSpec(cpu_units=-1.0)), graph(), diag)
        assert diag.codes() == {"CMP005"}

    def test_unknown_framework_service_warns(self):
        diag = Diagnostics()
        check_component_type(
            comp(framework_services=["teleport"]), graph(), diag)
        assert diag.codes() == {"CMP004"}
        assert not diag.has_errors()

    def test_known_framework_service_is_clean(self):
        diag = Diagnostics()
        check_component_type(
            comp(framework_services=["migration", "events"]),
            graph(), diag)
        assert len(diag) == 0


class TestSoftwareChecks:
    def test_satisfied_dependency_is_clean(self):
        packages = PackageSet()
        packages.add(soft("Counter", "1.2.0"), comp("Counter"))
        diag = Diagnostics()
        check_software(
            soft(deps=[Dependency("Counter", VersionRange(">=1.0, <2.0"))]),
            packages, diag)
        assert len(diag) == 0

    def test_missing_dependency(self):
        diag = Diagnostics()
        check_software(soft(deps=[Dependency("Ghost")]),
                       PackageSet(), diag)
        assert diag.codes() == {"CMP002"}

    def test_version_mismatch(self):
        packages = PackageSet()
        packages.add(soft("Counter", "1.0.0"), comp("Counter"))
        diag = Diagnostics()
        check_software(
            soft(deps=[Dependency("Counter", VersionRange(">=2.0"))]),
            packages, diag)
        assert diag.codes() == {"CMP002"}
        assert "1.0.0" in diag.findings[0].message

    def test_empty_range_reported_as_such(self):
        packages = PackageSet()
        packages.add(soft("Counter", "1.0.0"), comp("Counter"))
        diag = Diagnostics()
        check_software(
            soft(deps=[Dependency("Counter",
                                  VersionRange(">=2.0, <1.0"))]),
            packages, diag)
        assert diag.codes() == {"CMP003"}


class TestPackageSet:
    def test_resolve_prefers_newest_in_range(self):
        packages = PackageSet()
        packages.add(soft("C", "1.0.0"), comp("C"))
        packages.add(soft("C", "1.5.0"), comp("C"))
        packages.add(soft("C", "2.0.0"), comp("C"))
        info = packages.resolve("C", VersionRange("<2.0"))
        assert str(info.version) == "1.5.0"

    def test_resolve_unknown_is_none(self):
        assert PackageSet().resolve("C") is None

    def test_membership_and_versions(self):
        packages = PackageSet()
        packages.add(soft("C", "1.0.0"), comp("C"))
        assert "C" in packages
        assert "D" not in packages
        assert [str(v) for v in packages.versions_of("C")] == ["1.0.0"]

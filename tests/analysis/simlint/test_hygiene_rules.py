"""SIM030/SIM031: metric and span name hygiene."""

from repro.obs import names


class TestDeclaredRegistry:
    def test_exact_and_pattern_matching(self):
        assert names.metric_declared("orb.requests")
        assert names.metric_declared("chaos.action.kill_host")
        assert names.metric_declared("chaos.action.*")
        assert not names.metric_declared("orb.requets")
        assert names.span_declared("supervisor.promote")
        assert names.span_declared("serve:ping")
        assert not names.span_declared("totally.unknown")


class TestMetricLiterals:
    def test_undeclared_literal_flagged(self, lint, codes):
        findings = lint("""
            def tick(metrics):
                metrics.counter("supervisor.recoverys").inc()
        """)
        assert codes(findings) == ["SIM030"]

    def test_declared_literal_clean(self, lint):
        findings = lint("""
            def tick(metrics):
                metrics.counter("supervisor.recoveries").inc()
        """)
        assert findings == []

    def test_declared_fstring_family_clean(self, lint):
        findings = lint("""
            def tick(metrics, kind):
                metrics.counter(f"chaos.action.{kind}").inc()
        """)
        assert findings == []

    def test_undeclared_fstring_family_flagged(self, lint, codes):
        findings = lint("""
            def tick(metrics, kind):
                metrics.counter(f"mystery.{kind}").inc()
        """)
        assert codes(findings) == ["SIM030"]

    def test_constant_reference_accepted(self, lint):
        findings = lint("""
            from repro.obs import names
            def tick(metrics):
                metrics.counter(names.SUPERVISOR_RECOVERIES).inc()
        """)
        assert findings == []

    def test_fully_dynamic_name_out_of_scope(self, lint):
        findings = lint("""
            def tick(metrics, name):
                metrics.counter(f"{name}").inc()
        """)
        assert findings == []

    def test_exempt_module_skipped(self, lint):
        findings = lint("""
            def counter(self, name):
                return self._counters.setdefault(name, Counter(name))
        """, path="src/repro/sim/stats.py")
        assert findings == []


class TestSpanLabels:
    def test_undeclared_span_flagged(self, lint, codes):
        findings = lint("""
            def tick(obs):
                with obs.span("supervisor.promot"):
                    pass
        """)
        assert codes(findings) == ["SIM031"]

    def test_declared_span_family_clean(self, lint):
        findings = lint("""
            def tick(obs, op):
                with obs.span(f"serve:{op}"):
                    pass
        """)
        assert findings == []

"""SIM001-SIM004: determinism rule family."""

from repro.util.diagnostics import Severity


class TestStdlibRandom:
    def test_import_random_flagged(self, lint, codes):
        assert codes(lint("import random\n")) == ["SIM001"]

    def test_from_random_import_flagged(self, lint, codes):
        assert codes(lint("from random import choice\n")) == ["SIM001"]

    def test_other_imports_clean(self, lint):
        assert lint("import json\nfrom math import pi\n") == []


class TestWallClock:
    def test_time_time_flagged(self, lint, codes):
        findings = lint("""
            import time
            def stamp():
                return time.time()
        """)
        assert codes(findings) == ["SIM002"]

    def test_alias_resolution(self, lint, codes):
        findings = lint("""
            from time import monotonic as clock
            def stamp():
                return clock()
        """)
        assert codes(findings) == ["SIM002"]

    def test_uuid4_and_urandom_flagged(self, lint, codes):
        findings = lint("""
            import os, uuid
            def ident():
                return uuid.uuid4(), os.urandom(8)
        """)
        assert codes(findings) == ["SIM002", "SIM002"]

    def test_env_now_clean(self, lint):
        findings = lint("""
            def stamp(env):
                return env.now
        """)
        assert findings == []


class TestRngConstruction:
    def test_default_rng_flagged(self, lint, codes):
        findings = lint("""
            import numpy as np
            def draw():
                return np.random.default_rng(3).random()
        """)
        assert codes(findings) == ["SIM003"]

    def test_global_numpy_draw_flagged(self, lint, codes):
        findings = lint("""
            import numpy as np
            def draw():
                return np.random.uniform()
        """)
        assert codes(findings) == ["SIM003"]

    def test_rng_module_is_exempt(self, lint):
        findings = lint("""
            import numpy as np
            def make(seed):
                return np.random.default_rng(seed)
        """, path="src/repro/sim/rng.py")
        assert findings == []

    def test_stream_use_clean(self, lint):
        findings = lint("""
            def draw(rngs):
                return rngs.stream("pkg.draws").random()
        """)
        assert findings == []


class TestSetIteration:
    def test_for_over_set_literal_flagged(self, lint, codes):
        findings = lint("""
            def walk():
                for x in {1, 2, 3}:
                    print(x)
        """)
        assert codes(findings) == ["SIM004"]

    def test_for_over_tracked_set_name_flagged(self, lint, codes):
        findings = lint("""
            def walk(items):
                pending = set(items)
                for x in pending:
                    print(x)
        """)
        assert codes(findings) == ["SIM004"]

    def test_sorted_set_is_clean(self, lint):
        findings = lint("""
            def walk(items):
                pending = set(items)
                for x in sorted(pending):
                    print(x)
        """)
        assert findings == []

    def test_list_materialization_flagged(self, lint, codes):
        findings = lint("""
            def snap(items):
                pending = set(items)
                return list(pending)
        """)
        assert codes(findings) == ["SIM004"]

    def test_order_insensitive_reduction_clean(self, lint):
        findings = lint("""
            def total(items):
                pending = set(items)
                return sum(pending), len(pending), max(pending)
        """)
        assert findings == []

    def test_comprehension_feeding_sorted_is_blessed(self, lint):
        findings = lint("""
            def snap(items):
                pending = set(items)
                return sorted(x + 1 for x in pending)
        """)
        assert findings == []

    def test_self_attribute_set_flagged(self, lint, codes):
        findings = lint("""
            class Ring:
                def __init__(self):
                    self.hosts = set()
                def dump(self):
                    return [h for h in self.hosts]
        """)
        assert codes(findings) == ["SIM004"]

    def test_set_algebra_stays_a_set(self, lint, codes):
        findings = lint("""
            def diff(items, gone):
                a = set(items)
                b = set(gone)
                for x in a - b:
                    print(x)
        """)
        assert codes(findings) == ["SIM004"]

    def test_severity_is_warning(self, lint):
        findings = lint("""
            def walk():
                for x in {1, 2}:
                    print(x)
        """)
        assert findings[0].severity == Severity.WARNING

"""SIM010-SIM013: control-loop safety rule family."""

from repro.analysis.simlint import SimlintConfig
from repro.util.diagnostics import Severity

#: treat the snippet's path as a designated control-loop module.
LOOP_CONFIG = SimlintConfig(control_loop_modules=("pkg/mod.py",))


class TestBareExcept:
    def test_bare_except_flagged_anywhere(self, lint, codes):
        findings = lint("""
            def once():
                try:
                    risky()
                except:
                    pass
        """)
        assert codes(findings) == ["SIM010"]

    def test_named_except_clean(self, lint):
        findings = lint("""
            def once():
                try:
                    risky()
                except ValueError:
                    pass
        """)
        assert findings == []


class TestBroadExceptInGeneratorLoop:
    def test_swallowing_handler_flagged(self, lint, codes):
        findings = lint("""
            def loop(env):
                while True:
                    try:
                        step()
                    except Exception:
                        pass
                    yield env.timeout(1.0)
        """)
        assert "SIM011" in codes(findings)

    def test_interrupt_clause_before_broad_is_clean(self, lint, codes):
        findings = lint("""
            def loop(env):
                while True:
                    try:
                        step()
                    except Interrupt:
                        raise
                    except Exception:
                        pass
                    yield env.timeout(1.0)
        """)
        assert "SIM011" not in codes(findings)

    def test_interrupt_clause_after_broad_still_flagged(self, lint,
                                                        codes):
        # except Exception first catches Interrupt too: order matters.
        findings = lint("""
            def loop(env):
                while True:
                    try:
                        step()
                    except Exception:
                        pass
                    except Interrupt:
                        raise
                    yield env.timeout(1.0)
        """)
        assert "SIM011" in codes(findings)

    def test_reraising_handler_is_clean(self, lint, codes):
        findings = lint("""
            def loop(env):
                while True:
                    try:
                        step()
                    except Exception as exc:
                        if fatal(exc):
                            raise
                    yield env.timeout(1.0)
        """)
        assert "SIM011" not in codes(findings)

    def test_non_generator_function_ignored(self, lint, codes):
        findings = lint("""
            def once():
                for item in [1, 2]:
                    try:
                        step(item)
                    except Exception:
                        pass
        """)
        assert "SIM011" not in codes(findings)


class TestUnguardedDecode:
    def test_unguarded_decode_in_control_loop_flagged(self, lint, codes):
        findings = lint("""
            def loop(env, peer):
                while True:
                    reply = peer.call()
                    state = loads_state(reply)
                    apply(state)
                    yield env.timeout(1.0)
        """, config=LOOP_CONFIG)
        assert "SIM012" in codes(findings)

    def test_try_wrapped_decode_is_clean(self, lint, codes):
        findings = lint("""
            def loop(env, peer):
                while True:
                    reply = peer.call()
                    try:
                        state = loads_state(reply)
                    except StateDecodeError:
                        continue
                    apply(state)
                    yield env.timeout(1.0)
        """, config=LOOP_CONFIG)
        assert "SIM012" not in codes(findings)

    def test_decode_in_handler_body_not_guarded(self, lint, codes):
        # only the try *body* is protected; decoding inside the
        # handler itself can still escape the iteration.
        findings = lint("""
            def loop(env, peer):
                while True:
                    try:
                        fast_path()
                    except CacheMiss:
                        state = loads_state(peer.call())
                    yield env.timeout(1.0)
        """, config=LOOP_CONFIG)
        assert "SIM012" in codes(findings)

    def test_non_control_module_ignored(self, lint, codes):
        findings = lint("""
            def loop(env, peer):
                while True:
                    state = loads_state(peer.call())
                    yield env.timeout(1.0)
        """)
        assert "SIM012" not in codes(findings)


class TestInterruptHandling:
    def test_perpetual_loop_without_interrupt_warned(self, lint):
        findings = lint("""
            def loop(env):
                while True:
                    step()
                    yield env.timeout(1.0)
        """, config=LOOP_CONFIG)
        sim013 = [f for f in findings if f.code == "SIM013"]
        assert len(sim013) == 1
        assert sim013[0].severity == Severity.WARNING

    def test_handled_interrupt_is_clean(self, lint, codes):
        findings = lint("""
            def loop(env):
                try:
                    while True:
                        step()
                        yield env.timeout(1.0)
                except Interrupt:
                    pass
        """, config=LOOP_CONFIG)
        assert "SIM013" not in codes(findings)

"""SIM020/SIM021: paired-effect rule family."""

from repro.analysis.simlint import SimlintConfig

#: treat the snippet's path as the chaos action module.
ACTION_CONFIG = SimlintConfig(action_modules=("pkg/mod.py",))


class TestFaultInstallers:
    def test_installer_without_revert_flagged(self, lint, codes):
        findings = lint("""
            def act_kill(world, rng):
                host = pick(world, rng)
                host.crash()
                return host, None, "killed"
        """, config=ACTION_CONFIG)
        assert codes(findings) == ["SIM020"]

    def test_installer_with_revert_clean(self, lint):
        findings = lint("""
            def act_kill(world, rng):
                host = pick(world, rng)
                host.crash()
                def revert():
                    host.recover()
                return host, revert, "killed"
        """, config=ACTION_CONFIG)
        assert findings == []

    def test_return_dropping_revert_flagged(self, lint, codes):
        findings = lint("""
            def act_kill(world, rng):
                host = pick(world, rng)
                def revert():
                    host.recover()
                if host is None:
                    return None
                host.crash()
                return host, noop, "killed"
        """, config=ACTION_CONFIG)
        assert codes(findings) == ["SIM020"]

    def test_skip_return_none_is_allowed(self, lint):
        findings = lint("""
            def act_kill(world, rng):
                host = pick(world, rng)
                if host is None:
                    return None
                host.crash()
                def revert():
                    host.recover()
                return host, revert, "killed"
        """, config=ACTION_CONFIG)
        assert findings == []

    def test_non_action_function_ignored(self, lint):
        findings = lint("""
            def helper(world):
                return world.hosts[0], None, "peek"
        """, config=ACTION_CONFIG)
        assert findings == []

    def test_non_action_module_ignored(self, lint):
        findings = lint("""
            def act_kill(world, rng):
                return world, None, "no revert, but not an action module"
        """)
        assert findings == []


class TestStagedMembership:
    def test_stage_without_rebalance_flagged(self, lint, codes):
        findings = lint("""
            def grow(ring, host):
                ring.stage_add(host)
                return ring
        """)
        assert codes(findings) == ["SIM021"]

    def test_stage_then_rebalance_clean(self, lint):
        findings = lint("""
            def grow(ring, host):
                ring.stage_add(host)
                return ring.rebalance()
        """)
        assert findings == []

    def test_one_branch_missing_settle_flagged(self, lint, codes):
        findings = lint("""
            def churn(ring, host, apply_now):
                ring.stage_remove(host)
                if apply_now:
                    ring.rebalance()
                return ring
        """)
        assert codes(findings) == ["SIM021"]

    def test_both_branches_settled_clean(self, lint):
        findings = lint("""
            def churn(ring, host, apply_now):
                ring.stage_remove(host)
                if apply_now:
                    ring.rebalance()
                else:
                    ring.cancel_staged()
                return ring
        """)
        assert findings == []

    def test_raising_path_is_exempt(self, lint):
        findings = lint("""
            def grow(ring, host):
                ring.stage_add(host)
                if not valid(host):
                    raise ValueError(host)
                return ring.rebalance()
        """)
        assert findings == []

    def test_settle_after_loop_clears_staging_inside_it(self, lint):
        findings = lint("""
            def grow_all(ring, hosts):
                for host in hosts:
                    ring.stage_add(host)
                return ring.rebalance()
        """)
        assert findings == []

"""Inline suppressions, baseline round-trip, stale-entry reporting."""

from repro.analysis.simlint import Baseline, SourceFile, lint_sources
from repro.analysis.simlint.baseline import (
    STALE_CODE,
    BaselineEntry,
    strip_line,
)


def _diag(text, path="pkg/legacy.py"):
    return lint_sources([SourceFile.parse(path, text)])


class TestInlineSuppression:
    def test_disable_silences_the_line(self, lint):
        findings = lint(
            "import random  # simlint: disable=SIM001\n")
        assert findings == []

    def test_disable_all_silences_the_line(self, lint):
        findings = lint(
            "import random  # simlint: disable=all\n")
        assert findings == []

    def test_other_code_does_not_silence(self, lint, codes):
        findings = lint(
            "import random  # simlint: disable=SIM003\n")
        assert codes(findings) == ["SIM001"]

    def test_other_lines_unaffected(self, lint, codes):
        findings = lint(
            "import random  # simlint: disable=SIM001\n"
            "import random\n")
        assert codes(findings) == ["SIM001"]


class TestBaselineRoundTrip:
    def test_strip_line(self):
        assert strip_line("pkg/legacy.py:12") == "pkg/legacy.py"
        assert strip_line("pkg/legacy.py") == "pkg/legacy.py"

    def test_round_trip_absorbs_findings(self, tmp_path):
        diag = _diag("import random\nimport random\n")
        baseline = Baseline.from_diagnostics(diag, reason="legacy")
        path = tmp_path / "baseline.json"
        baseline.save(path)
        reloaded = Baseline.load(path)
        assert len(reloaded) == 1          # same key, count=2
        assert reloaded.entries[0].count == 2
        assert reloaded.entries[0].reason == "legacy"
        remaining = reloaded.apply(
            _diag("import random\nimport random\n"))
        assert list(remaining) == []

    def test_line_moves_do_not_invalidate(self):
        baseline = Baseline.from_diagnostics(_diag("import random\n"))
        # the same violation, shifted two lines down
        diag_after = _diag("import json\nimport os\nimport random\n")
        assert list(baseline.apply(diag_after)) == []

    def test_stale_entry_reported(self):
        baseline = Baseline([BaselineEntry(
            path="pkg/legacy.py", code="SIM001",
            message="whatever was grandfathered", reason="legacy")])
        leftover = list(baseline.apply(_diag("import json\n")))
        assert [f.code for f in leftover] == [STALE_CODE]
        assert "stale" in leftover[0].message

    def test_unbaselined_finding_passes_through(self):
        baseline = Baseline.from_diagnostics(_diag("import random\n"))
        mixed = _diag("import random\nfrom random import choice\n")
        assert [f.code for f in baseline.apply(mixed)] == ["SIM001"]

"""Shared helpers for the simlint rule-family tests."""

import textwrap

import pytest

from repro.analysis.simlint import SourceFile, lint_sources


def _lint_snippet(code, path="pkg/mod.py", config=None):
    """Lint one dedented source string; returns the findings list."""
    source = SourceFile.parse(path, textwrap.dedent(code))
    return list(lint_sources([source], config=config))


def _codes(findings):
    return sorted(f.code for f in findings)


@pytest.fixture
def lint():
    """``lint(code, path=..., config=...) -> [Finding, ...]``."""
    return _lint_snippet


@pytest.fixture
def codes():
    """``codes(findings) -> sorted list of finding codes``."""
    return _codes

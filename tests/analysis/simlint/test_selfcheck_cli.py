"""The tree is clean, and the CLI front end holds the gate."""

import json
from pathlib import Path

from repro.analysis.simlint import Baseline, lint_paths
from repro.tools import simlint as cli
from repro.util.diagnostics import Severity

REPO_ROOT = Path(__file__).resolve().parents[3]
SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "simlint-baseline.json"


class TestTreeSelfCheck:
    def test_src_repro_is_clean_at_default_severity(self):
        diag = lint_paths([str(SRC)], root=str(REPO_ROOT))
        remaining = Baseline.load(BASELINE).apply(diag)
        gated = [f for f in remaining if f.severity >= Severity.WARNING]
        assert gated == [], "\n" + remaining.render_text()

    def test_baseline_entries_all_still_match(self):
        """Every checked-in grandfathered entry still matches a real
        finding — otherwise it is stale and must be deleted."""
        diag = lint_paths([str(SRC)], root=str(REPO_ROOT))
        remaining = Baseline.load(BASELINE).apply(diag)
        stale = [f for f in remaining if f.code == "SIM090"]
        assert stale == [], "\n" + remaining.render_text()

    def test_baseline_reasons_are_documented(self):
        for entry in Baseline.load(BASELINE).entries:
            assert entry.reason.strip(), \
                f"baseline entry for {entry.path} has no reason"


class TestCli:
    def test_rules_catalog(self, capsys):
        assert cli.main(["--rules"]) == 0
        out = capsys.readouterr().out
        for code in ("SIM001", "SIM004", "SIM011", "SIM012", "SIM020",
                     "SIM021", "SIM030", "SIM031"):
            assert code in out

    def test_error_exit_code_and_json(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        status = cli.main([str(bad), "--no-baseline",
                           "--format", "json"])
        assert status == int(Severity.ERROR)
        payload = json.loads(capsys.readouterr().out)
        assert [f["code"] for f in payload["findings"]] == ["SIM001"]

    def test_clean_file_exits_zero(self, tmp_path, capsys):
        good = tmp_path / "good.py"
        good.write_text("import json\n")
        assert cli.main([str(good), "--no-baseline"]) == 0

    def test_fail_on_error_ignores_warnings(self, tmp_path, capsys):
        warny = tmp_path / "warny.py"
        warny.write_text(
            "def walk():\n"
            "    for x in {1, 2}:\n"
            "        print(x)\n")
        assert cli.main([str(warny), "--no-baseline"]) == \
            int(Severity.WARNING)
        capsys.readouterr()
        assert cli.main([str(warny), "--no-baseline",
                         "--fail-on", "error"]) == 0

    def test_write_then_apply_baseline(self, tmp_path, capsys,
                                       monkeypatch):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n")
        baseline = tmp_path / "baseline.json"
        assert cli.main([str(bad), "--baseline", str(baseline),
                         "--write-baseline"]) == 0
        capsys.readouterr()
        assert cli.main([str(bad), "--baseline", str(baseline)]) == 0

    def test_unparsable_file_reported(self, tmp_path, capsys):
        mangled = tmp_path / "mangled.py"
        mangled.write_text("def broken(:\n")
        status = cli.main([str(mangled), "--no-baseline"])
        assert status == int(Severity.ERROR)
        assert "SIM000" in capsys.readouterr().out

"""Tests for message-level wire-fault injection (WireFaultModel)."""

import pytest

from repro.sim.faults import WireFaultModel, WireFaultProfile
from repro.sim.kernel import Environment
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.stats import MetricRegistry
from repro.sim.topology import star


def make_net(seed=0, wire_faults=None):
    env = Environment()
    net = Network(env, star(3), rngs=RngRegistry(seed),
                  metrics=MetricRegistry(), wire_faults=wire_faults)
    return env, net


def deliver(env, net, payload=b"hello wire", src="h0", dst="h1"):
    """Send one message and collect everything the dst port receives."""
    got = []
    iface = net.interface(dst)
    iface.unbind("sink")
    iface.bind("sink", lambda m: got.append(m))
    net.send(src, dst, "sink", payload, len(payload))
    env.run(until=env.timeout(1.0))
    return got


class TestProfileValidation:
    def test_rates_must_be_probabilities(self):
        with pytest.raises(ValueError):
            WireFaultProfile(corrupt=1.5)
        with pytest.raises(ValueError):
            WireFaultProfile(truncate=-0.1)

    def test_max_flips_positive(self):
        with pytest.raises(ValueError):
            WireFaultProfile(corrupt=0.5, max_flips=0)

    def test_active(self):
        assert not WireFaultProfile().active
        assert WireFaultProfile(duplicate=0.1).active


class TestWireFaultModel:
    def test_clean_link_payload_untouched(self):
        env, net = make_net()
        net.wire_faults = WireFaultModel(net.rngs, net.metrics)
        got = deliver(env, net)
        assert len(got) == 1
        assert got[0].payload == b"hello wire"

    def test_corruption_mutates_payload(self):
        env, net = make_net()
        model = WireFaultModel(
            net.rngs, net.metrics,
            default=WireFaultProfile(corrupt=1.0))
        net.wire_faults = model
        got = deliver(env, net)
        assert len(got) == 1
        assert got[0].payload != b"hello wire"
        assert len(got[0].payload) == len(b"hello wire")
        assert net.metrics.get("net.corrupted.bitflip") >= 1

    def test_truncation_shortens_payload(self):
        env, net = make_net()
        net.wire_faults = WireFaultModel(
            net.rngs, net.metrics,
            default=WireFaultProfile(truncate=1.0))
        got = deliver(env, net)
        assert len(got) == 1
        assert len(got[0].payload) < len(b"hello wire")
        assert net.metrics.get("net.corrupted.truncate") >= 1

    def test_duplication_delivers_twice(self):
        env, net = make_net()
        net.wire_faults = WireFaultModel(
            net.rngs, net.metrics,
            default=WireFaultProfile(duplicate=1.0))
        got = deliver(env, net)
        assert len(got) == 2
        assert got[0].payload == got[1].payload == b"hello wire"
        assert net.metrics.get("net.corrupted.duplicate") >= 1

    def test_reorder_delays_delivery(self):
        arrivals = {}
        for reorder in (0.0, 1.0):
            env, net = make_net()
            net.wire_faults = WireFaultModel(
                net.rngs, net.metrics,
                default=WireFaultProfile(reorder=reorder,
                                         reorder_delay=0.2))
            got = []
            net.interface("h1").bind("t", lambda m: got.append(env.now))
            net.send("h0", "h1", "t", b"x", 1)
            env.run(until=env.timeout(1.0))
            arrivals[reorder] = got[0]
        assert arrivals[1.0] == pytest.approx(arrivals[0.0] + 0.4)
        # 0.2 s per crossed link (h0-hub, hub-h1)

    def test_opaque_payload_never_corrupted(self):
        env, net = make_net()
        net.wire_faults = WireFaultModel(
            net.rngs, net.metrics,
            default=WireFaultProfile(corrupt=1.0, truncate=1.0))
        payload = {"not": "bytes"}
        got = deliver(env, net, payload=payload)
        assert len(got) == 1
        assert got[0].payload is payload

    def test_per_link_override_beats_default(self):
        env, net = make_net()
        model = WireFaultModel(
            net.rngs, net.metrics,
            default=WireFaultProfile(corrupt=1.0))
        model.set_link("h0", "hub", WireFaultProfile())
        model.set_link("hub", "h1", WireFaultProfile())
        net.wire_faults = model
        got = deliver(env, net)
        assert got[0].payload == b"hello wire"
        model.clear_link("h0", "hub")
        got2 = deliver(env, net)
        assert got2[-1].payload != b"hello wire"

    def test_seeded_determinism(self):
        outcomes = []
        for _ in range(2):
            env, net = make_net(seed=42)
            net.wire_faults = WireFaultModel(
                net.rngs, net.metrics,
                default=WireFaultProfile(corrupt=0.5, truncate=0.3,
                                         duplicate=0.2))
            run = []
            net.interface("h1").bind("d", lambda m: run.append(m.payload))
            for i in range(40):
                net.send("h0", "h1", "d", bytes([i]) * 8, 8)
            env.run(until=env.timeout(5.0))
            outcomes.append(run)
        assert outcomes[0] == outcomes[1]

"""Unit tests for RNG streams, metrics, and fault injection."""

import numpy as np
import pytest

from repro.sim.faults import ChurnModel, FaultInjector
from repro.sim.kernel import Environment
from repro.sim.rng import RngRegistry, derived_stream
from repro.sim.stats import Counter, MetricRegistry, TimeSeries
from repro.sim.topology import line, star


class TestRng:
    def test_same_seed_same_stream(self):
        a = RngRegistry(42).stream("x").random(10)
        b = RngRegistry(42).stream("x").random(10)
        assert np.allclose(a, b)

    def test_different_names_independent(self):
        reg = RngRegistry(42)
        a = reg.stream("x").random(10)
        b = reg.stream("y").random(10)
        assert not np.allclose(a, b)

    def test_creation_order_irrelevant(self):
        r1 = RngRegistry(7)
        r1.stream("a")
        x1 = r1.stream("b").random(5)
        r2 = RngRegistry(7)
        x2 = r2.stream("b").random(5)  # "a" never created
        assert np.allclose(x1, x2)

    def test_stream_is_cached(self):
        reg = RngRegistry(0)
        assert reg.stream("s") is reg.stream("s")

    def test_derived_stream_matches_registry(self):
        a = derived_stream("x", 42).random(10)
        b = RngRegistry(42).stream("x").random(10)
        assert np.allclose(a, b)

    def test_derived_stream_reproducible(self):
        assert np.allclose(derived_stream("grid.count_hits", 3).random(8),
                           derived_stream("grid.count_hits", 3).random(8))

    def test_derived_stream_names_independent(self):
        assert not np.allclose(derived_stream("x", 3).random(8),
                               derived_stream("y", 3).random(8))

    def test_fork_differs_from_parent(self):
        reg = RngRegistry(5)
        forked = reg.fork(1)
        assert not np.allclose(
            reg.stream("x").random(5), forked.stream("x").random(5)
        )


class TestStats:
    def test_counter_accumulates(self):
        c = Counter("n")
        c.inc()
        c.inc(2.5)
        assert c.value == 3.5

    def test_series_summaries(self):
        s = TimeSeries("lat")
        for t, v in [(0, 1.0), (1, 3.0), (2, 2.0)]:
            s.record(t, v)
        assert s.mean() == 2.0
        assert s.max() == 3.0
        assert s.min() == 1.0
        assert s.percentile(50) == 2.0
        assert len(s) == 3

    def test_empty_series_is_nan(self):
        s = TimeSeries("lat")
        assert np.isnan(s.mean())
        assert np.isnan(s.rate())

    def test_series_rate(self):
        s = TimeSeries("bytes")
        for t in range(11):
            s.record(float(t), 100.0)
        assert s.rate() == pytest.approx(1100 / 10)

    def test_registry_reuses_instances(self):
        m = MetricRegistry()
        assert m.counter("a") is m.counter("a")
        assert m.series("s") is m.series("s")

    def test_labelled_counters(self):
        m = MetricRegistry()
        m.add_labelled("bytes", "l1", 10)
        m.add_labelled("bytes", "l1", 5)
        m.add_labelled("bytes", "l2", 1)
        assert m.labelled("bytes") == {"l1": 15.0, "l2": 1.0}
        assert m.labelled("missing") == {}

    def test_snapshot_includes_series_means(self):
        m = MetricRegistry()
        m.counter("c").inc(4)
        m.series("s").record(0, 2.0)
        snap = m.snapshot()
        assert snap["c"] == 4.0
        assert snap["s.mean"] == 2.0


class TestFaultInjector:
    def test_scheduled_crash_and_restart(self):
        env = Environment()
        topo = star(2)
        inj = FaultInjector(env, topo)
        inj.crash_at(5.0, "h0")
        inj.restart_at(10.0, "h0")
        env.run(until=6.0)
        assert not topo.host("h0").alive
        env.run(until=11.0)
        assert topo.host("h0").alive
        assert [e[1] for e in inj.log] == ["crash", "restart"]

    def test_past_fault_time_rejected(self):
        env = Environment()
        env.run(until=5.0)
        inj = FaultInjector(env, star(1))
        with pytest.raises(ValueError):
            inj.crash_at(1.0, "h0")

    def test_partition_cuts_crossing_links_only(self):
        env = Environment()
        topo = line(4)  # h0-h1-h2-h3
        inj = FaultInjector(env, topo)
        cuts = inj.partition(["h0", "h1"], ["h2", "h3"])
        assert cuts == [("h1", "h2")]
        assert topo.route("h0", "h3") is None
        assert topo.route("h0", "h1") is not None
        inj.heal_partition(cuts)
        assert topo.route("h0", "h3") is not None

    def test_partition_skips_already_cut(self):
        env = Environment()
        topo = line(2)
        inj = FaultInjector(env, topo)
        inj.cut_link("h0", "h1")
        cuts = inj.partition(["h0"], ["h1"])
        assert cuts == []


class TestChurn:
    def test_churn_crashes_and_restarts(self):
        env = Environment()
        topo = star(4)
        inj = FaultInjector(env, topo)
        churn = ChurnModel(env, inj, RngRegistry(1), topo.host_ids(),
                           mean_uptime=10.0, mean_downtime=2.0,
                           protected=["hub"])
        env.run(until=200.0)
        assert churn.crashes > 0
        assert churn.restarts > 0
        # protected host never crashed
        assert all(target != "hub" for _, kind, target in inj.log)

    def test_churn_deterministic(self):
        def run(seed):
            env = Environment()
            topo = star(3)
            inj = FaultInjector(env, topo)
            ChurnModel(env, inj, RngRegistry(seed), topo.host_ids(),
                       mean_uptime=5.0, mean_downtime=1.0)
            env.run(until=100.0)
            return inj.log
        assert run(9) == run(9)

"""Log-scale-bucket histogram: edges, percentiles, registry plumbing."""

import pytest

from repro.sim.stats import Histogram, MetricRegistry


class TestBuckets:
    def test_geometric_edges(self):
        h = Histogram("h", lo=1.0, growth=2.0, buckets=4)
        assert h.edges == [1.0, 2.0, 4.0, 8.0]
        assert len(h.counts) == 5  # + overflow

    def test_shape_validation(self):
        with pytest.raises(ValueError):
            Histogram("h", lo=0.0)
        with pytest.raises(ValueError):
            Histogram("h", growth=1.0)
        with pytest.raises(ValueError):
            Histogram("h", buckets=0)

    def test_values_land_in_half_open_buckets(self):
        # bucket i covers (edge[i-1], edge[i]]
        h = Histogram("h", lo=1.0, growth=2.0, buckets=4)
        h.record(1.0)   # at lo -> bucket 0
        h.record(2.0)   # at an edge -> that edge's bucket
        h.record(2.001)  # just above -> next bucket
        h.record(8.0)   # top edge -> last real bucket
        h.record(9.0)   # above top edge -> overflow
        h.record(0.1)   # below lo -> bucket 0
        assert h.counts == [2, 1, 1, 1, 1]
        assert h.count == 6

    def test_min_max_mean_track_raw_values(self):
        h = Histogram("h", lo=1.0, buckets=8)
        for v in (0.5, 3.0, 100.0):
            h.record(v)
        assert h.min() == 0.5
        assert h.max() == 100.0
        assert h.mean() == pytest.approx((0.5 + 3.0 + 100.0) / 3)


class TestPercentiles:
    def test_empty_is_nan(self):
        h = Histogram("h")
        assert h.percentile(50) != h.percentile(50)  # NaN

    def test_range_checked(self):
        h = Histogram("h")
        h.record(1.0)
        with pytest.raises(ValueError):
            h.percentile(101)

    def test_single_value_all_percentiles_equal(self):
        h = Histogram("h", lo=1e-3)
        h.record(0.25)
        for q in (0, 50, 95, 99, 100):
            assert h.percentile(q) == pytest.approx(0.25)

    def test_monotone_and_clamped(self):
        h = Histogram("h", lo=1e-3, buckets=24)
        for i in range(1, 200):
            h.record(i * 0.01)
        last = 0.0
        for q in (1, 10, 25, 50, 75, 90, 95, 99, 100):
            p = h.percentile(q)
            assert p >= last
            assert h.min() <= p <= h.max()
            last = p

    def test_accuracy_within_one_bucket(self):
        h = Histogram("h", lo=1e-3, growth=2.0, buckets=24)
        values = [0.001 * (1.1 ** i) for i in range(100)]
        for v in values:
            h.record(v)
        exact = sorted(values)[49]
        estimate = h.percentile(50)
        # estimate must be within one growth factor of the true median
        assert exact / 2.0 <= estimate <= exact * 2.0


class TestRegistry:
    def test_created_once_and_found(self):
        m = MetricRegistry()
        h1 = m.histogram("lat", lo=0.5)
        h2 = m.histogram("lat", lo=99.0)  # shape ignored on reuse
        assert h1 is h2
        assert h1.edges[0] == 0.5
        assert m.find_histogram("lat") is h1
        assert m.find_histogram("nope") is None
        assert "lat" in set(m.names())

    def test_snapshot_includes_percentiles(self):
        m = MetricRegistry()
        h = m.histogram("lat")
        for v in (0.1, 0.2, 0.3):
            h.record(v)
        snap = m.snapshot()
        assert snap["lat.count"] == 3.0
        assert snap["lat.p50"] <= snap["lat.p95"] <= snap["lat.p99"]

"""Unit tests for store-and-forward message delivery."""

import pytest

from repro.sim.kernel import Environment
from repro.sim.network import HEADER_BYTES, Network
from repro.sim.rng import RngRegistry
from repro.sim.topology import (
    LAN,
    MODEM,
    LinkClass,
    Topology,
    line,
    star,
)
from repro.util.errors import ConfigurationError


def make_net(topo, seed=0):
    env = Environment()
    return env, Network(env, topo, rngs=RngRegistry(seed))


class TestDelivery:
    def test_one_hop_latency_and_serialization(self):
        env, net = make_net(line(2))
        arrivals = []
        net.interface("h1").bind("p", lambda m: arrivals.append(env.now))
        net.interface("h0").send("h1", "p", "x", size=1000)
        env.run()
        expected = (1000 + HEADER_BYTES) / LAN.bandwidth + LAN.latency
        assert arrivals == [pytest.approx(expected)]

    def test_multi_hop_adds_per_link_cost(self):
        env, net = make_net(line(3))
        arrivals = []
        net.interface("h2").bind("p", lambda m: arrivals.append(env.now))
        net.interface("h0").send("h2", "p", "x", size=1000)
        env.run()
        per_link = (1000 + HEADER_BYTES) / LAN.bandwidth + LAN.latency
        assert arrivals == [pytest.approx(2 * per_link)]

    def test_local_delivery_is_free_and_instant(self):
        env, net = make_net(line(2))
        got = []
        net.interface("h0").bind("p", lambda m: got.append(env.now))
        net.interface("h0").send("h0", "p", "x", size=10_000)
        env.run()
        assert got == [0.0]
        assert net.bytes_sent() == 0.0
        assert net.metrics.get("net.local") == 1.0

    def test_fifo_link_queueing(self):
        """Two large messages on one link serialize back-to-back."""
        env, net = make_net(line(2))
        arrivals = []
        net.interface("h1").bind("p", lambda m: arrivals.append(env.now))
        size = 125_000  # 10 ms at LAN bandwidth
        net.interface("h0").send("h1", "p", "a", size=size)
        net.interface("h0").send("h1", "p", "b", size=size)
        env.run()
        tx = (size + HEADER_BYTES) / LAN.bandwidth
        assert arrivals[0] == pytest.approx(tx + LAN.latency)
        assert arrivals[1] == pytest.approx(2 * tx + LAN.latency)

    def test_payload_and_metadata_preserved(self):
        env, net = make_net(line(2))
        got = []
        net.interface("h1").bind("p", lambda m: got.append(m))
        net.interface("h0").send("h1", "p", {"k": [1, 2]}, size=64)
        env.run()
        (msg,) = got
        assert msg.payload == {"k": [1, 2]}
        assert msg.src == "h0"
        assert msg.dst == "h1"
        assert msg.port == "p"

    def test_negative_size_rejected(self):
        env, net = make_net(line(2))
        with pytest.raises(ConfigurationError):
            net.interface("h0").send("h1", "p", "x", size=-1)


class TestPortBinding:
    def test_rebinding_port_rejected(self):
        env, net = make_net(line(2))
        net.interface("h0").bind("p", lambda m: None)
        with pytest.raises(ConfigurationError):
            net.interface("h0").bind("p", lambda m: None)

    def test_unbind_then_rebind(self):
        env, net = make_net(line(2))
        iface = net.interface("h0")
        iface.bind("p", lambda m: None)
        iface.unbind("p")
        iface.bind("p", lambda m: None)  # no raise

    def test_unbound_port_counts_unrouted(self):
        env, net = make_net(line(2))
        net.interface("h1")  # exists but no handler
        net.interface("h0").send("h1", "nowhere", "x", size=10)
        env.run()
        assert net.metrics.get("net.unrouted") == 1.0

    def test_interface_for_unknown_host_rejected(self):
        env, net = make_net(line(2))
        with pytest.raises(ConfigurationError):
            net.interface("ghost")


class TestFailures:
    def test_unreachable_drops(self):
        topo = line(3)
        env = Environment()
        net = Network(env, topo)
        got = []
        net.interface("h2").bind("p", lambda m: got.append(m))
        topo.set_link_state("h1", "h2", up=False)
        net.interface("h0").send("h2", "p", "x", size=10)
        env.run()
        assert got == []
        assert net.metrics.get("net.dropped.unreachable") == 1.0

    def test_dead_destination_drops_at_delivery(self):
        topo = line(2)
        env = Environment()
        net = Network(env, topo)
        got = []
        net.interface("h1").bind("p", lambda m: got.append(m))
        net.interface("h0").send("h1", "p", "x", size=10)
        # Host dies while the message is in flight.
        topo.host("h1").alive = False
        env.run()
        assert got == []
        assert net.metrics.get("net.dropped.dst_dead") == 1.0

    def test_dead_source_cannot_send(self):
        topo = line(2)
        env = Environment()
        net = Network(env, topo)
        topo.set_host_state("h0", alive=False)
        net.interface("h0").send("h1", "p", "x", size=10)
        env.run()
        assert net.metrics.get("net.dropped.src_dead") == 1.0

    def test_lossy_link_drops_deterministically(self):
        lossy = LinkClass("lossy", latency=0.001, bandwidth=1e6, loss=0.5)
        topo = Topology()
        topo.add_host("a")
        topo.add_host("b")
        topo.add_link("a", "b", lossy)

        def run(seed):
            env = Environment()
            net = Network(env, topo, rngs=RngRegistry(seed))
            got = []
            net.interface("b").bind("p", lambda m: got.append(m.payload))
            for i in range(100):
                net.interface("a").send("b", "p", i, size=10)
            env.run()
            return got

        got1 = run(3)
        got2 = run(3)
        assert got1 == got2            # deterministic
        assert 20 < len(got1) < 80     # ~50% loss

    def test_loss_still_charges_bytes(self):
        lossy = LinkClass("lossy", latency=0.001, bandwidth=1e6, loss=1.0)
        topo = Topology()
        topo.add_host("a")
        topo.add_host("b")
        topo.add_link("a", "b", lossy)
        env = Environment()
        net = Network(env, topo)
        net.interface("a").send("b", "p", "x", size=100)
        env.run()
        assert net.metrics.get("net.dropped.loss") == 1.0
        link_bytes = net.metrics.labelled("net.link_bytes")
        assert sum(link_bytes.values()) == 100 + HEADER_BYTES


class TestAccounting:
    def test_bytes_counted_per_link(self):
        env, net = make_net(line(3))
        net.interface("h2").bind("p", lambda m: None)
        net.interface("h0").send("h2", "p", "x", size=500)
        env.run()
        per_link = net.metrics.labelled("net.link_bytes")
        assert len(per_link) == 2
        assert all(v == 500 + HEADER_BYTES for v in per_link.values())
        assert net.bytes_sent() == 500 + HEADER_BYTES

    def test_backbone_bytes_tracked_separately(self):
        from repro.sim.topology import clustered
        env = Environment()
        topo = clustered(2, 2)
        net = Network(env, topo)
        net.interface("c1h1").bind("p", lambda m: None)
        net.interface("c0h1").send("c1h1", "p", "x", size=100)
        env.run()
        # one WAN link crossed
        assert net.metrics.get("net.bytes.backbone") == 100 + HEADER_BYTES

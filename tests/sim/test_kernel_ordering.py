"""Event-ordering guarantees the protocols rely on."""

import pytest

from repro.sim.kernel import Environment, Timeout


class TestSameTimeOrdering:
    def test_succeed_processes_before_later_scheduled_timeout(self):
        """URGENT (succeed) events beat NORMAL (timeout) events queued
        for the same instant."""
        env = Environment()
        order = []
        ev = env.event()
        ev.callbacks.append(lambda _e: order.append("event"))
        env.timeout(0).callbacks.append(lambda _e: order.append("timeout"))
        ev.succeed()  # scheduled after the timeout, but URGENT
        env.run()
        assert order == ["event", "timeout"]

    def test_process_resume_order_is_creation_order(self):
        env = Environment()
        order = []

        def proc(pid):
            yield env.timeout(1.0)
            order.append(pid)
        for pid in range(5):
            env.process(proc(pid))
        env.run()
        assert order == [0, 1, 2, 3, 4]

    def test_nested_immediate_events_run_same_timestep(self):
        env = Environment()
        hits = []

        def chain(n):
            if n:
                ev = env.event()
                ev.callbacks.append(lambda _e: chain(n - 1))
                ev.succeed()
            hits.append(env.now)
        env.timeout(2.0).callbacks.append(lambda _e: chain(3))
        env.run()
        assert hits == [2.0] * 4

    def test_timeout_value_carried(self):
        env = Environment()
        t = env.timeout(1.0, value={"k": 1})
        assert env.run(until=t) == {"k": 1}

    def test_peek_reports_next_event_time(self):
        env = Environment()
        env.timeout(5.0)
        env.timeout(2.0)
        assert env.peek() == 2.0
        env.run()
        assert env.peek() == float("inf")


class TestProcessReturnShapes:
    def test_return_none_by_default(self):
        env = Environment()

        def proc():
            yield env.timeout(1)
        assert env.run(until=env.process(proc())) is None

    def test_yield_from_subgenerator(self):
        env = Environment()

        def inner():
            yield env.timeout(1)
            return 10

        def outer():
            a = yield from inner()
            b = yield from inner()
            return a + b
        assert env.run(until=env.process(outer())) == 20
        assert env.now == 2.0

    def test_interrupt_during_yield_from(self):
        from repro.sim.kernel import Interrupt
        env = Environment()

        def inner():
            yield env.timeout(100)

        def outer():
            try:
                yield from inner()
            except Interrupt as i:
                return f"stopped: {i.cause}"
        p = env.process(outer())

        def killer():
            yield env.timeout(1)
            p.interrupt("now")
        env.process(killer())
        assert env.run(until=p) == "stopped: now"

"""Unit tests for the discrete-event kernel."""

import pytest

from repro.sim.kernel import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    Timeout,
)


class TestEvent:
    def test_pending_until_triggered(self, env):
        ev = env.event()
        assert not ev.triggered
        assert not ev.processed
        ev.succeed(7)
        assert ev.triggered
        assert ev.ok
        assert ev.value == 7

    def test_double_trigger_rejected(self, env):
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(RuntimeError):
            ev.succeed(2)
        with pytest.raises(RuntimeError):
            ev.fail(ValueError("x"))

    def test_fail_requires_exception(self, env):
        ev = env.event()
        with pytest.raises(TypeError):
            ev.fail("not an exception")

    def test_value_before_trigger_raises(self, env):
        ev = env.event()
        with pytest.raises(RuntimeError):
            _ = ev.value
        with pytest.raises(RuntimeError):
            _ = ev.ok

    def test_callbacks_run_on_processing(self, env):
        ev = env.event()
        seen = []
        ev.callbacks.append(lambda e: seen.append(e.value))
        ev.succeed("hello")
        env.run()
        assert seen == ["hello"]
        assert ev.processed

    def test_undefused_failure_crashes_run(self, env):
        ev = env.event()
        ev.fail(ValueError("boom"))
        with pytest.raises(ValueError, match="boom"):
            env.run()

    def test_defused_failure_is_silent(self, env):
        ev = env.event()
        ev.fail(ValueError("boom")).defused()
        env.run()  # no raise


class TestTimeout:
    def test_fires_at_delay(self, env):
        t = env.timeout(5.0, value="done")
        result = env.run(until=t)
        assert result == "done"
        assert env.now == 5.0

    def test_negative_delay_rejected(self, env):
        with pytest.raises(ValueError):
            env.timeout(-1)

    def test_zero_delay_fires_immediately(self, env):
        t = env.timeout(0)
        env.run(until=t)
        assert env.now == 0.0

    def test_ordering_same_time_is_fifo(self, env):
        order = []
        for i in range(5):
            env.timeout(1.0).callbacks.append(
                lambda _e, i=i: order.append(i)
            )
        env.run()
        assert order == [0, 1, 2, 3, 4]


class TestProcess:
    def test_return_value(self, env):
        def proc():
            yield env.timeout(1)
            return 99
        assert env.run(until=env.process(proc())) == 99

    def test_yield_value_passthrough(self, env):
        def proc():
            got = yield env.timeout(2, value="abc")
            return got
        assert env.run(until=env.process(proc())) == "abc"

    def test_sequential_timeouts_accumulate(self, env):
        def proc():
            yield env.timeout(1)
            yield env.timeout(2)
            yield env.timeout(3)
            return env.now
        assert env.run(until=env.process(proc())) == 6.0

    def test_yield_already_processed_event_continues(self, env):
        ev = env.event()
        ev.succeed("early")

        def proc():
            yield env.timeout(1)  # let ev be processed first
            got = yield ev
            return got
        assert env.run(until=env.process(proc())) == "early"

    def test_exception_in_process_propagates(self, env):
        def proc():
            yield env.timeout(1)
            raise RuntimeError("inside")
        with pytest.raises(RuntimeError, match="inside"):
            env.run(until=env.process(proc()))

    def test_failed_event_raises_inside_process(self, env):
        ev = env.event()

        def failer():
            yield env.timeout(1)
            ev.fail(ValueError("nope"))

        def waiter():
            try:
                yield ev
            except ValueError as exc:
                return f"caught {exc}"
        env.process(failer())
        assert env.run(until=env.process(waiter())) == "caught nope"

    def test_yield_non_event_fails_process(self, env):
        def proc():
            yield 42
        with pytest.raises(RuntimeError, match="non-event"):
            env.run(until=env.process(proc()))

    def test_process_is_alive(self, env):
        def proc():
            yield env.timeout(5)
        p = env.process(proc())
        assert p.is_alive
        env.run()
        assert not p.is_alive

    def test_nested_process(self, env):
        def inner():
            yield env.timeout(2)
            return "inner-done"

        def outer():
            result = yield env.process(inner())
            return result + "!"
        assert env.run(until=env.process(outer())) == "inner-done!"

    def test_non_generator_rejected(self, env):
        with pytest.raises(TypeError):
            env.process(lambda: None)


class TestInterrupt:
    def test_interrupt_delivers_cause(self, env):
        def victim():
            try:
                yield env.timeout(100)
            except Interrupt as i:
                return ("interrupted", i.cause, env.now)

        p = env.process(victim())

        def attacker():
            yield env.timeout(3)
            p.interrupt("reason")
        env.process(attacker())
        assert env.run(until=p) == ("interrupted", "reason", 3.0)

    def test_interrupt_finished_process_rejected(self, env):
        def quick():
            yield env.timeout(1)
        p = env.process(quick())
        env.run()
        with pytest.raises(RuntimeError):
            p.interrupt()

    def test_self_interrupt_rejected(self, env):
        def proc():
            me = env.active_process
            with pytest.raises(RuntimeError):
                me.interrupt()
            yield env.timeout(0)
        env.run(until=env.process(proc()))

    def test_interrupted_process_can_continue(self, env):
        def victim():
            total = 0
            try:
                yield env.timeout(100)
            except Interrupt:
                total += 1
            yield env.timeout(1)  # keeps running after interruption
            return total

        p = env.process(victim())

        def attacker():
            yield env.timeout(2)
            p.interrupt()
        env.process(attacker())
        assert env.run(until=p) == 1
        assert env.now == 3.0


class TestConditions:
    def test_anyof_first_wins(self, env):
        def proc():
            fast = env.timeout(1, "fast")
            slow = env.timeout(9, "slow")
            result = yield env.any_of([fast, slow])
            return (list(result.values()), env.now)
        values, now = env.run(until=env.process(proc()))
        assert values == ["fast"]
        assert now == 1.0

    def test_allof_waits_for_all(self, env):
        def proc():
            evts = [env.timeout(i, f"t{i}") for i in (1, 3, 2)]
            result = yield env.all_of(evts)
            return (sorted(result.values()), env.now)
        values, now = env.run(until=env.process(proc()))
        assert values == ["t1", "t2", "t3"]
        assert now == 3.0

    def test_empty_condition_triggers_immediately(self, env):
        def proc():
            result = yield env.all_of([])
            return result
        assert env.run(until=env.process(proc())) == {}

    def test_condition_failure_propagates(self, env):
        ev = env.event()

        def failer():
            yield env.timeout(1)
            ev.fail(ValueError("cond"))

        def waiter():
            try:
                yield env.all_of([ev, env.timeout(10)])
            except ValueError:
                return "failed"
        env.process(failer())
        assert env.run(until=env.process(waiter())) == "failed"

    def test_cross_environment_events_rejected(self, env):
        other = Environment()
        with pytest.raises(ValueError):
            env.all_of([other.event()])


class TestEnvironmentRun:
    def test_run_until_time(self, env):
        fired = []
        env.timeout(1).callbacks.append(lambda e: fired.append(1))
        env.timeout(10).callbacks.append(lambda e: fired.append(10))
        env.run(until=5.0)
        assert fired == [1]
        assert env.now == 5.0

    def test_run_until_past_time_rejected(self, env):
        env.run(until=5.0)
        with pytest.raises(ValueError):
            env.run(until=1.0)

    def test_run_exhausts_queue(self, env):
        env.timeout(3)
        env.run()
        assert env.now == 3.0
        assert env.peek() == float("inf")

    def test_run_until_never_triggered_event_raises(self, env):
        ev = env.event()
        env.timeout(1)
        with pytest.raises(RuntimeError, match="ran out of events"):
            env.run(until=ev)

    def test_run_until_already_processed_event(self, env):
        ev = env.event()
        ev.succeed("v")
        env.run()
        assert env.run(until=ev) == "v"

    def test_step_without_events_raises(self, env):
        with pytest.raises(RuntimeError):
            env.step()

    def test_determinism_identical_traces(self):
        def build_and_run():
            env = Environment()
            trace = []

            def worker(name, delay):
                for _ in range(3):
                    yield env.timeout(delay)
                    trace.append((env.now, name))
            env.process(worker("a", 1.0))
            env.process(worker("b", 1.5))
            env.run()
            return trace
        assert build_and_run() == build_and_run()

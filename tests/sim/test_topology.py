"""Unit tests for topology construction and routing."""

import pytest

from repro.sim.rng import RngRegistry
from repro.sim.topology import (
    DESKTOP,
    LAN,
    MODEM,
    PDA,
    SERVER,
    WAN,
    HostProfile,
    Topology,
    clustered,
    line,
    random_mesh,
    star,
)
from repro.util.errors import ConfigurationError


class TestConstruction:
    def test_add_host_and_lookup(self):
        topo = Topology()
        host = topo.add_host("a", SERVER)
        assert topo.host("a") is host
        assert host.profile.cpu_power == 1000.0

    def test_duplicate_host_rejected(self):
        topo = Topology()
        topo.add_host("a")
        with pytest.raises(ConfigurationError):
            topo.add_host("a")

    def test_unknown_host_rejected(self):
        topo = Topology()
        with pytest.raises(ConfigurationError):
            topo.host("ghost")

    def test_link_requires_existing_endpoints(self):
        topo = Topology()
        topo.add_host("a")
        with pytest.raises(ConfigurationError):
            topo.add_link("a", "b")

    def test_self_link_rejected(self):
        topo = Topology()
        topo.add_host("a")
        with pytest.raises(ConfigurationError):
            topo.add_link("a", "a")

    def test_duplicate_link_rejected(self):
        topo = Topology()
        topo.add_host("a")
        topo.add_host("b")
        topo.add_link("a", "b")
        with pytest.raises(ConfigurationError):
            topo.add_link("b", "a")

    def test_link_lookup_symmetric(self):
        topo = Topology()
        topo.add_host("a")
        topo.add_host("b")
        link = topo.add_link("a", "b", WAN)
        assert topo.link("a", "b") is link
        assert topo.link("b", "a") is link
        assert link.latency == WAN.latency


class TestRouting:
    def test_route_to_self(self):
        topo = star(2)
        assert topo.route("h0", "h0") == ["h0"]

    def test_star_routes_via_hub(self):
        topo = star(3)
        assert topo.route("h0", "h2") == ["h0", "hub", "h2"]

    def test_line_route_full_length(self):
        topo = line(5)
        assert topo.route("h0", "h4") == ["h0", "h1", "h2", "h3", "h4"]

    def test_unreachable_after_link_cut(self):
        topo = line(3)
        topo.set_link_state("h0", "h1", up=False)
        assert topo.route("h0", "h2") is None
        assert not topo.reachable("h0", "h2")

    def test_route_heals_when_link_restored(self):
        topo = line(3)
        topo.set_link_state("h0", "h1", up=False)
        assert topo.route("h0", "h2") is None
        topo.set_link_state("h0", "h1", up=True)
        assert topo.route("h0", "h2") == ["h0", "h1", "h2"]

    def test_dead_host_not_routed_through(self):
        topo = line(3)
        topo.set_host_state("h1", alive=False)
        assert topo.route("h0", "h2") is None

    def test_route_prefers_low_latency(self):
        topo = Topology()
        for h in "abcd":
            topo.add_host(h)
        topo.add_link("a", "d", MODEM)       # direct but 100 ms
        topo.add_link("a", "b", LAN)
        topo.add_link("b", "c", LAN)
        topo.add_link("c", "d", LAN)         # 3 hops but 1.5 ms total
        assert topo.route("a", "d") == ["a", "b", "c", "d"]

    def test_path_links(self):
        topo = line(4)
        path = topo.route("h0", "h3")
        links = topo.path_links(path)
        assert len(links) == 3
        assert links[0].key == ("h0", "h1")


class TestLiveness:
    def test_crash_fires_callbacks(self):
        topo = star(1)
        seen = []
        topo.host("h0").on_crash.append(lambda h: seen.append(h.host_id))
        topo.set_host_state("h0", alive=False)
        assert seen == ["h0"]
        # Crashing an already-dead host is a no-op.
        topo.set_host_state("h0", alive=False)
        assert seen == ["h0"]

    def test_restart_fires_callbacks(self):
        topo = star(1)
        seen = []
        topo.host("h0").on_restart.append(lambda h: seen.append(h.host_id))
        topo.set_host_state("h0", alive=False)
        topo.set_host_state("h0", alive=True)
        assert seen == ["h0"]


class TestProfiles:
    def test_pda_is_tiny(self):
        assert PDA.is_tiny
        assert not SERVER.is_tiny

    def test_scaled_profile(self):
        fast = DESKTOP.scaled(2.0)
        assert fast.cpu_power == DESKTOP.cpu_power * 2
        assert fast.os == DESKTOP.os


class TestBuilders:
    def test_clustered_shape(self):
        topo = clustered(3, 4)
        assert len(topo.host_ids()) == 12
        # intra-cluster routes are direct (full mesh: a LAN switch)
        assert topo.route("c0h1", "c0h2") == ["c0h1", "c0h2"]
        # inter-cluster routes pass through cluster heads
        route = topo.route("c0h1", "c2h3")
        assert route[0] == "c0h1" and route[-1] == "c2h3"
        assert "c1h0" in route

    def test_clustered_survives_head_loss_within_cluster(self):
        topo = clustered(2, 4)
        topo.set_host_state("c0h0", alive=False)
        # intra-cluster connectivity survives losing the gateway
        assert topo.reachable("c0h1", "c0h3")
        # but inter-cluster traffic from c0 is cut (it was the gateway)
        assert not topo.reachable("c0h1", "c1h1")

    def test_clustered_inter_links_are_wan(self):
        topo = clustered(2, 2)
        assert topo.link("c0h0", "c1h0").link_class.name == "wan"
        assert topo.link("c0h0", "c0h1").link_class.name == "lan"

    def test_clustered_chords_backbone_shortens_wan_diameter(self):
        chain = clustered(16, 2)
        chords = clustered(16, 2, backbone="chords")
        # chain: c0 -> c15 crosses every intermediate gateway
        assert len(chain.route("c0h0", "c15h0")) == 16
        # ring + power-of-two chords: logarithmic gateway hops
        assert len(chords.route("c0h0", "c15h0")) <= 5
        # every pair still reachable, links still WAN class
        for c in range(16):
            assert chords.reachable("c0h1", f"c{c}h1")
        assert chords.link("c0h0", "c1h0").link_class.name == "wan"
        assert chords.link("c0h0", "c8h0").link_class.name == "wan"

    def test_clustered_chords_small_counts_degenerate_to_chain(self):
        # with <= 2 clusters there is nothing to chord
        duo = clustered(2, 2, backbone="chords")
        assert len(list(duo.links())) == len(
            list(clustered(2, 2).links()))

    def test_clustered_rejects_unknown_backbone(self):
        with pytest.raises(ConfigurationError):
            clustered(2, 2, backbone="mesh")

    def test_random_mesh_connected_and_deterministic(self):
        rng1 = RngRegistry(7).stream("topo")
        rng2 = RngRegistry(7).stream("topo")
        t1 = random_mesh(20, degree=3.0, rng=rng1)
        t2 = random_mesh(20, degree=3.0, rng=rng2)
        assert sorted(l.key for l in t1.links()) == sorted(
            l.key for l in t2.links()
        )
        for i in range(1, 20):
            assert t1.reachable("h0", f"h{i}")

    def test_star_profiles(self):
        topo = star(2, hub_profile=SERVER, leaf_profile=PDA)
        assert topo.host("hub").profile is SERVER
        assert topo.host("h0").profile is PDA

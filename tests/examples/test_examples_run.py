"""Every example script must run to completion.

Examples are part of the public contract (they are the README's
tutorial); this suite executes each one's ``main()`` in-process.
"""

import importlib.util
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"

EXAMPLES = sorted(p.stem for p in EXAMPLES_DIR.glob("*.py"))


def load_example(name: str):
    path = EXAMPLES_DIR / f"{name}.py"
    spec = importlib.util.spec_from_file_location(f"example_{name}", path)
    module = importlib.util.module_from_spec(spec)
    sys.modules[spec.name] = module
    spec.loader.exec_module(module)
    return module


def test_examples_present():
    assert len(EXAMPLES) >= 5
    assert "quickstart" in EXAMPLES


@pytest.mark.parametrize("name", EXAMPLES)
def test_example_runs(name, capsys):
    module = load_example(name)
    if hasattr(module, "one_shot_aggregation"):
        # the grid example has two entry points; run both
        module.one_shot_aggregation()
        module.volunteer_pool()
    else:
        module.main()
    out = capsys.readouterr().out
    assert out.strip()          # every example narrates what it did
    assert "Traceback" not in out

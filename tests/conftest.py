"""Shared fixtures and helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.sim.kernel import Environment
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.stats import MetricRegistry
from repro.sim.topology import Topology, star


@pytest.fixture
def env() -> Environment:
    return Environment()


@pytest.fixture
def rngs() -> RngRegistry:
    return RngRegistry(seed=1234)


@pytest.fixture
def metrics() -> MetricRegistry:
    return MetricRegistry()


@pytest.fixture
def star_net(env, rngs, metrics):
    """A 5-leaf star network: hosts hub, h0..h4."""
    topo = star(5)
    return Network(env, topo, rngs=rngs, metrics=metrics)


def run_proc(env: Environment, gen):
    """Run *gen* as a process to completion; return its value."""
    return env.run(until=env.process(gen))

"""Tests for CCM descriptor interchange."""

import pytest
from xml.etree import ElementTree as ET

from repro.tools.ccm_compat import (
    from_ccm_softpkg,
    to_ccm_corbacomponent,
    to_ccm_softpkg,
)
from repro.cscw import video_decoder_package, whiteboard_package
from repro.util.errors import ValidationError


class TestExport:
    def test_softpkg_structure(self):
        soft = video_decoder_package().software
        text = to_ccm_softpkg(soft)
        root = ET.fromstring(text)
        assert root.tag == "softpkg"
        assert root.get("name") == "VideoDecoder"
        assert root.findtext("pkgtype") == "CORBA Component"
        assert root.findtext("author/company") == "cscw"
        impl = root.find("implementation")
        assert impl.find("code/fileinarchive").get("name").startswith(
            "bin/")
        ext = root.find("corbalc-extension")
        assert ext.get("mobility") == "mobile"

    def test_corbacomponent_ports(self):
        comp = whiteboard_package().component
        root = ET.fromstring(to_ccm_corbacomponent(comp))
        provides = root.findall(".//provides")
        assert [p.get("providesname") for p in provides] == ["surface"]
        emits = root.findall(".//emits")
        assert [e.get("eventtype") for e in emits] == ["cscw.stroke"]

    def test_corbacomponent_uses_and_consumes(self):
        comp = video_decoder_package().component
        root = ET.fromstring(to_ccm_corbacomponent(comp))
        uses = {u.get("usesname"): u.get("repid")
                for u in root.findall(".//uses")}
        assert set(uses) == {"source", "display"}


class TestRoundTrip:
    @pytest.mark.parametrize("package_factory", [
        video_decoder_package, whiteboard_package])
    def test_export_import_preserves_descriptor(self, package_factory):
        soft = package_factory().software
        # signatures don't survive interchange; compare the rest
        import dataclasses
        again = from_ccm_softpkg(to_ccm_softpkg(soft))
        assert dataclasses.replace(again, signature=soft.signature) == soft

    def test_extension_carries_corbalc_semantics(self):
        soft = video_decoder_package().software
        again = from_ccm_softpkg(to_ccm_softpkg(soft))
        assert again.mobility == soft.mobility
        assert again.replication == soft.replication
        assert again.aggregation == soft.aggregation


class TestImportRobustness:
    def test_plain_ccm_without_extension(self):
        """A descriptor from real CCM tooling (no extension element)."""
        text = """
        <softpkg name="Philosopher" version="1.0.0">
          <pkgtype>CORBA Component</pkgtype>
          <title>Philosopher</title>
          <author><company>OMG demo</company></author>
          <implementation id="p1">
            <os name="linux"/>
            <processor name="x86"/>
            <code type="DLL">
              <fileinarchive name="philosopher.so"/>
            </code>
          </implementation>
        </softpkg>
        """
        soft = from_ccm_softpkg(text)
        assert soft.name == "Philosopher"
        assert soft.mobility == "mobile"          # defaults applied
        assert soft.implementations[0].os == "linux"
        assert soft.implementations[0].binary_path == "philosopher.so"

    def test_malformed_rejected(self):
        with pytest.raises(ValidationError):
            from_ccm_softpkg("<softpkg")
        with pytest.raises(ValidationError):
            from_ccm_softpkg("<notasoftpkg/>")
        with pytest.raises(ValidationError):
            from_ccm_softpkg('<softpkg name="X"/>')  # no version

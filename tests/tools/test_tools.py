"""Tests for the builder palette, assembly builder, and usage metering."""

import pytest

from repro.tools.builder import AssemblyBuilder, NetworkPalette
from repro.tools.licensing import UsageMeter
from repro.cscw import (
    display_package,
    gui_part_package,
    whiteboard_package,
)
from repro.testing import COUNTER_IFACE, counter_package, star_rig
from repro.util.errors import ValidationError
from repro.xmlmeta.descriptors import QoSSpec


class TestNetworkPalette:
    @pytest.fixture
    def rig(self):
        r = star_rig(2)
        r.node("hub").install_package(whiteboard_package())
        r.node("hub").install_package(counter_package())
        r.node("h0").install_package(counter_package())
        r.node("hub").container.create_instance("Counter")
        return r

    def test_gather_components_and_instances(self, rig):
        palette = rig.run(until=NetworkPalette.gather(
            rig.node("h1"), rig.topology.host_ids()))
        assert sorted(palette.components) == ["Counter", "Whiteboard"]
        assert sorted(palette.components["Counter"].hosts) == ["h0", "hub"]
        assert len(palette.instances) == 1
        assert palette.providers_of(COUNTER_IFACE.repo_id) == ["Counter"]

    def test_dead_hosts_skipped(self, rig):
        rig.topology.set_host_state("h0", alive=False)
        palette = rig.run(until=NetworkPalette.gather(
            rig.node("h1"), rig.topology.host_ids()))
        assert palette.components["Counter"].hosts == ["hub"]

    def test_render_mentions_everything(self, rig):
        a = rig.node("hub").container.create_instance("Counter")
        b = rig.node("hub").container.create_instance("Counter")
        rig.node("hub").container.connect(
            a.instance_id, "peer", b.ports.facet("value").ior)
        palette = rig.run(until=NetworkPalette.gather(
            rig.node("h1"), rig.topology.host_ids()))
        text = palette.render()
        assert "Counter" in text and "Whiteboard" in text
        assert a.instance_id in text
        assert "-> IOR:" in text   # live connection rendered
        assert len(palette.connections()) == 1


class TestAssemblyBuilder:
    def builder(self):
        b = AssemblyBuilder("wb")
        b.register_package(whiteboard_package())
        b.register_package(gui_part_package())
        b.register_package(display_package())
        return b

    def test_valid_assembly_builds(self):
        asm = (self.builder()
               .add("board", "Whiteboard")
               .add("gui", "BoardGui")
               .add("screen", "Display")
               .connect("gui", "display", "screen", "graphics")
               .subscribe("gui", "board", "board", "changes")
               .build())
        assert asm.name == "wb"
        assert len(asm.instances) == 3
        assert len(asm.connections) == 2

    def test_unknown_component_rejected(self):
        with pytest.raises(ValidationError, match="unknown component"):
            self.builder().add("x", "Ghost")

    def test_duplicate_instance_rejected(self):
        b = self.builder().add("a", "Display")
        with pytest.raises(ValidationError, match="duplicate"):
            b.add("a", "Display")

    def test_interface_type_mismatch_rejected(self):
        b = (self.builder()
             .add("gui", "BoardGui")
             .add("board", "Whiteboard"))
        # gui.display needs Display, board.surface offers Surface
        with pytest.raises(ValidationError, match="type mismatch"):
            b.connect("gui", "display", "board", "surface")

    def test_unknown_ports_rejected(self):
        b = (self.builder()
             .add("gui", "BoardGui")
             .add("screen", "Display"))
        with pytest.raises(ValidationError, match="no receptacle"):
            b.connect("gui", "nonexistent", "screen", "graphics")
        with pytest.raises(ValidationError, match="no facet"):
            b.connect("gui", "display", "screen", "nonexistent")

    def test_event_kind_mismatch_rejected(self):
        b = AssemblyBuilder("x")
        b.register_package(counter_package())
        b.register_package(whiteboard_package())
        b.add("c", "Counter").add("board", "Whiteboard")
        # counter's 'pokes' sink consumes demo.poke; board emits cscw.stroke
        with pytest.raises(ValidationError, match="kind mismatch"):
            b.subscribe("c", "pokes", "board", "changes")

    def test_unsatisfied_mandatory_receptacle_blocks_build(self):
        b = self.builder().add("gui", "BoardGui")
        # gui.display is mandatory and unwired
        assert b.unsatisfied_receptacles() == [("gui", "display")]
        with pytest.raises(ValidationError, match="unsatisfied"):
            b.build()
        asm = b.build(allow_unsatisfied=True)
        assert len(asm.instances) == 1

    def test_empty_assembly_rejected(self):
        with pytest.raises(ValidationError, match="no instances"):
            AssemblyBuilder("empty").build()

    def test_built_assembly_deploys(self):
        """The builder's output is directly consumable by the Deployer."""
        from repro.deployment import Deployer, RuntimePlanner
        rig = star_rig(2)
        hub = rig.node("hub")
        hub.install_package(whiteboard_package())
        hub.install_package(gui_part_package())
        hub.install_package(display_package())
        asm = (self.builder()
               .add("board", "Whiteboard")
               .add("gui", "BoardGui")
               .add("screen", "Display")
               .connect("gui", "display", "screen", "graphics")
               .subscribe("gui", "board", "board", "changes")
               .build())
        dep = Deployer(rig.nodes, RuntimePlanner(), coordinator_host="hub")
        app = rig.run(until=dep.deploy(asm))
        assert set(app.placement) == {"board", "gui", "screen"}


class TestUsageMeter:
    def make_rig(self):
        r = star_rig(1)
        hub = r.node("hub")
        hub.install_package(counter_package(name="FreeComp"))
        # a pay-per-use component
        from repro.testing import counter_package as cp
        pkg = cp(name="PaidComp")
        import dataclasses
        # rebuild with pay-per-use licensing
        from repro.packaging.package import ComponentPackage, PackageBuilder
        soft = dataclasses.replace(pkg.software, license="pay-per-use",
                                   cost_per_use=0.25)
        builder = PackageBuilder(soft, pkg.component)
        for path in pkg.members():
            if path.startswith("bin/"):
                builder.add_binary(path, pkg.member(path))
        hub.install_package(ComponentPackage(builder.build()))
        # and a subscription component
        soft2 = dataclasses.replace(pkg.software, name="SubComp",
                                    license="subscription")
        comp2 = dataclasses.replace(pkg.component, name="SubComp")
        builder2 = PackageBuilder(soft2, comp2)
        for path in pkg.members():
            if path.startswith("bin/"):
                builder2.add_binary(path, pkg.member(path))
        hub.install_package(ComponentPackage(builder2.build()))
        return r, hub, UsageMeter(hub)

    def test_pay_per_use_charges_per_creation(self):
        rig, hub, meter = self.make_rig()
        for _ in range(3):
            inst = hub.container.create_instance("PaidComp")
            hub.container.destroy_instance(inst.instance_id)
        (record,) = [r for r in meter.records()
                     if r.component == "PaidComp"]
        assert record.uses == 3
        assert record.charge == pytest.approx(0.75)

    def test_free_components_unmetered(self):
        rig, hub, meter = self.make_rig()
        hub.container.create_instance("FreeComp")
        assert all(r.component != "FreeComp" for r in meter.records())
        assert meter.total_due() == 0.0

    def test_subscription_charges_usage_time(self):
        rig, hub, meter = self.make_rig()
        inst = hub.container.create_instance("SubComp")
        rig.run(until=100.0)
        hub.container.destroy_instance(inst.instance_id)
        (record,) = [r for r in meter.records()
                     if r.component == "SubComp"]
        assert record.usage_seconds == pytest.approx(100.0)
        assert record.charge == pytest.approx(
            100.0 * UsageMeter.SUBSCRIPTION_RATE)

    def test_invoice_formats(self):
        rig, hub, meter = self.make_rig()
        inst = hub.container.create_instance("PaidComp")
        hub.container.destroy_instance(inst.instance_id)
        text = meter.invoice()
        assert "PaidComp" in text
        assert "total due: 0.25" in text

"""Runtime containment: everything a live run emits is declared.

The static SIM030/SIM031 rules pin emit-site *literals* to
``repro.obs.names``; this test closes the loop on the dynamic side by
running a full chaos campaign (ORB traffic, federation gossip,
supervision, events, faults) and asserting every metric and span name
that actually materialized is declared — exactly or via a pattern.
"""

from repro.chaos import CampaignConfig, ChaosCampaign
from repro.chaos.scenario import build_world
from repro.obs import names


def _run_world(seed=3, horizon=20.0):
    world = build_world(seed)
    campaign = ChaosCampaign(world, CampaignConfig(horizon=horizon))
    campaign.run()
    return world


class TestRuntimeContainment:
    def test_emitted_metric_names_are_declared(self):
        world = _run_world()
        undeclared = names.undeclared_metrics(world.rig.metrics)
        assert undeclared == set(), (
            f"undeclared metric names emitted at runtime: "
            f"{sorted(undeclared)}; declare them in repro.obs.names")

    def test_emitted_span_names_are_declared(self):
        world = _run_world(seed=4)
        undeclared = names.undeclared_spans(world.rig.obs.tracer)
        assert undeclared == set(), (
            f"undeclared span labels emitted at runtime: "
            f"{sorted(undeclared)}; declare them in repro.obs.names")


class TestRegistryShape:
    def test_patterns_contain_a_wildcard(self):
        for pattern in names.METRIC_PATTERNS | names.SPAN_PATTERNS:
            assert "*" in pattern, pattern

    def test_exact_names_do_not(self):
        for name in names.METRIC_NAMES | names.SPAN_NAMES:
            assert "*" not in name, name

    def test_no_exact_name_shadows_itself_via_pattern(self):
        # exact declarations should be exact; a name that only matches
        # through a pattern belongs in the pattern family instead.
        assert names.metric_declared("supervisor.recoveries")
        assert not names.metric_declared("supervisor.recoverys")

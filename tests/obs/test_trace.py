"""Tracer and per-process context store units."""

from repro.obs.trace import ContextStore, TraceContext, Tracer
from repro.sim.kernel import Environment


class TestTracer:
    def test_root_span_starts_new_trace(self):
        env = Environment()
        tracer = Tracer(env)
        a = tracer.start_span("a")
        b = tracer.start_span("b")
        assert a.trace_id != b.trace_id
        assert a.parent_id is None
        assert a.span_id != b.span_id

    def test_child_span_joins_parent_trace(self):
        tracer = Tracer(Environment())
        a = tracer.start_span("a")
        b = tracer.start_span("b", parent=a.context)
        assert b.trace_id == a.trace_id
        assert b.parent_id == a.span_id

    def test_ids_are_deterministic(self):
        t1, t2 = Tracer(Environment()), Tracer(Environment())
        for t in (t1, t2):
            t.start_span("x")
            t.start_span("y")
        assert [s.span_id for s in t1.spans] == \
            [s.span_id for s in t2.spans]
        assert [s.trace_id for s in t1.spans] == \
            [s.trace_id for s in t2.spans]

    def test_span_timing_uses_sim_clock(self):
        env = Environment()
        tracer = Tracer(env)
        span = tracer.start_span("op")

        def proc():
            yield env.timeout(2.5)
            tracer.end_span(span)

        env.run(until=env.process(proc()))
        assert span.start == 0.0
        assert span.end == 2.5
        assert span.duration == 2.5
        assert span.status == "ok"

    def test_end_span_is_idempotent(self):
        env = Environment()
        tracer = Tracer(env)
        span = tracer.start_span("op")
        tracer.end_span(span, status="error", error="TRANSIENT")
        tracer.end_span(span, status="ok")  # ignored
        assert span.status == "error"
        assert span.error == "TRANSIENT"

    def test_traces_grouping_and_connectivity(self):
        tracer = Tracer(Environment())
        a = tracer.start_span("a")
        tracer.start_span("b", parent=a.context)
        orphan = tracer.start_span("c", parent=TraceContext(
            a.trace_id, "s999999"))  # parent id not in the trace
        traces = tracer.traces()
        assert len(traces[a.trace_id]) == 3
        assert not tracer.trace_is_connected(a.trace_id)
        assert orphan.trace_id == a.trace_id
        assert not tracer.trace_is_connected("no-such-trace")


class TestContextStore:
    def test_current_follows_active_process(self):
        env = Environment()
        store = ContextStore()
        seen = {}

        def proc_a():
            store.bind(env.active_process, TraceContext("t1", "s1"))
            yield env.timeout(1.0)
            seen["a"] = store.current(env)

        def proc_b():
            yield env.timeout(0.5)
            seen["b"] = store.current(env)  # must not see a's binding

        env.process(proc_a())
        env.process(proc_b())
        env.run(until=2.0)
        assert seen["a"] == TraceContext("t1", "s1")
        assert seen["b"] is None

    def test_bind_returns_previous_and_none_unbinds(self):
        env = Environment()
        store = ContextStore()
        result = {}

        def proc():
            me = env.active_process
            first = TraceContext("t1", "s1")
            assert store.bind(me, first) is None
            prev = store.bind(me, TraceContext("t1", "s2"))
            result["prev"] = prev
            result["current"] = store.current(env)
            store.bind(me, prev)      # restore
            result["restored"] = store.current(env)
            store.bind(me, None)      # unbind entirely
            result["after_unbind"] = store.current(env)
            yield env.timeout(0)

        env.run(until=env.process(proc()))
        assert result["prev"] == TraceContext("t1", "s1")
        assert result["current"] == TraceContext("t1", "s2")
        assert result["restored"] == TraceContext("t1", "s1")
        assert result["after_unbind"] is None

    def test_outside_any_process(self):
        env = Environment()
        store = ContextStore()
        assert store.current(env) is None
        assert store.bind(None, TraceContext("t", "s")) is None

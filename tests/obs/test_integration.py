"""End-to-end: fault-injected call graph as one connected trace.

The ISSUE acceptance scenario: one simulated client -> node -> MRM call
with one injected failure+retry must produce a single trace with at
least three causally-linked spans, the crashed attempt marked failed.
"""

import pytest

from repro.orb.retry import RetryPolicy, invoke_with_retry
from repro.registry.mrm import MRM_IFACE, MrmAgent, MrmConfig
from repro.registry.softstate import SoftStateReporter
from repro.sim.topology import star
from repro.testing import SimRig


def test_crash_retry_call_yields_one_connected_trace():
    rig = SimRig(star(2), seed=4)
    hub = rig.observe()
    mrm = MrmAgent(rig.node("hub"), "g0",
                   config=MrmConfig(update_interval=2.0))
    SoftStateReporter(rig.node("h1"), [mrm.ior], mrm.config, phase=0.3)

    query_op = MRM_IFACE.operations["member_hosts"]
    outcome = {}

    def client():
        # crash the MRM host mid-flight: the first attempt times out,
        # the host comes back, the retry succeeds.
        yield rig.env.timeout(1.0)
        value = yield from invoke_with_retry(
            rig.node("h0").orb, mrm.ior, query_op, (),
            policy=RetryPolicy(attempts=3, timeout=1.0, backoff=0.5,
                               jitter=False))
        outcome["members"] = value

    def chaos():
        # the MRM host is dark across the client's first attempt
        # (t=1.0..2.0); it is back up in time for h1's t=2.3 report,
        # which repopulates the member table before the t=2.5 retry.
        yield rig.env.timeout(0.8)
        rig.topology.set_host_state("hub", alive=False)
        yield rig.env.timeout(1.2)
        rig.topology.set_host_state("hub", alive=True)

    rig.env.process(client())
    rig.env.process(chaos())
    rig.run(until=10.0)

    assert outcome["members"] == ["h1"]  # reporter registered h1

    # exactly one trace contains the retry envelope ...
    traces = hub.traces()
    retry_traces = {tid: spans for tid, spans in traces.items()
                    if any(s.name == "retry:member_hosts" for s in spans)}
    assert len(retry_traces) == 1
    (tid, spans), = retry_traces.items()

    # ... with >= 3 causally-linked spans (retry + failed attempt +
    # successful attempt + its server dispatch) ...
    assert len(spans) >= 4
    assert hub.tracer.trace_is_connected(tid)
    root = next(s for s in spans if s.parent_id is None)
    assert root.name == "retry:member_hosts"
    assert root.status == "ok"
    assert root.attrs["attempts"] == 2

    # ... where the crashed attempt is marked failed ...
    failed = [s for s in spans if s.kind == "client"
              and s.status == "error"]
    assert len(failed) == 1
    assert "TIMEOUT" in failed[0].error
    assert failed[0].parent_id == root.span_id

    # ... and the retried attempt reached the restarted server.
    served = [s for s in spans if s.kind == "server"]
    assert len(served) == 1
    assert served[0].status == "ok"
    assert served[0].host == "hub"

    # every other trace (reports etc.) is also internally consistent
    assert all(hub.tracer.trace_is_connected(t) for t in traces)
    # nothing left stranded in any pending table
    assert all(not orb._pending for orb in hub.orbs)


def test_obs_report_selftest_passes():
    import io

    from repro.tools.obs_report import main, run_selftest

    buf = io.StringIO()
    assert run_selftest(out=buf) == 0
    text = buf.getvalue()
    assert "selftest OK" in text
    assert "per-operation" in text
    assert main(["--selftest", "--json"]) == 0


def test_build_report_shape():
    from repro.tools.obs_report import build_report, render_text

    rig = SimRig(star(1), seed=1)
    hub = rig.observe()
    mrm = MrmAgent(rig.node("hub"), "g0",
                   config=MrmConfig(update_interval=2.0))
    SoftStateReporter(rig.node("h0"), [mrm.ior], mrm.config, phase=0.1)
    rig.run(until=5.0)

    rep = build_report(hub)
    entry = rep["operations"]["report"]
    assert entry["request_bytes"]["count"] >= 2
    assert rep["meters"]["registry.soft"]["msgs"] >= 2
    assert rep["counters"]["oneways"] >= 2
    assert rep["traces"]["count"] >= 2
    assert rep["traces"]["connected"] == rep["traces"]["count"]
    text = render_text(rep)
    assert "registry.soft" in text
    assert "traces:" in text
    # JSON-safe
    import json
    json.dumps(rep)

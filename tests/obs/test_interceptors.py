"""Interceptor hook ordering, trace propagation, metrics recording."""

import pytest

from repro.obs import Observability
from repro.orb.core import InterfaceDef, Servant, op
from repro.orb.exceptions import TRANSIENT
from repro.orb.retry import RetryPolicy, invoke_with_retry
from repro.orb.typecodes import tc_long, tc_string
from repro.sim.topology import star
from repro.testing import SimRig

ECHO = InterfaceDef("IDL:test/Echo:1.0", "Echo", operations=[
    op("echo", [("s", tc_string)], tc_string),
    op("note", [("s", tc_string)], oneway=True),
])

RELAY = InterfaceDef("IDL:test/Relay:1.0", "Relay", operations=[
    op("relay", [("s", tc_string)], tc_string),
])

FLAKY = InterfaceDef("IDL:test/Flaky:1.0", "Flaky", operations=[
    op("poke", [], tc_long),
])


class EchoServant(Servant):
    _interface = ECHO

    def echo(self, s):
        return s

    def note(self, s):
        pass


class RelayServant(Servant):
    """Forwards to an Echo on another host (nested remote call)."""

    _interface = RELAY

    def __init__(self, orb, target_ior):
        self.orb = orb
        self.target = target_ior

    def relay(self, s):
        reply = yield self.orb.invoke(self.target,
                                      ECHO.operations["echo"], (s,))
        return reply + "!"


class FlakyServant(Servant):
    _interface = FLAKY

    def __init__(self):
        self.failures_left = 0
        self.calls = 0

    def poke(self):
        self.calls += 1
        if self.failures_left > 0:
            self.failures_left -= 1
            raise TRANSIENT("injected")
        return self.calls


class Recorder:
    """Order-recording interceptor (client and server capable)."""

    def __init__(self, label, log):
        self.label = label
        self.log = log

    def send_request(self, info):
        self.log.append(("send", self.label))

    def receive_reply(self, info):
        self.log.append(("reply", self.label))

    def receive_exception(self, info, exc):
        self.log.append(("exc", self.label))

    def receive_request(self, info):
        self.log.append(("recv", self.label))

    def finish_request(self, info):
        self.log.append(("finish", self.label))


def observed_rig(n=2):
    rig = SimRig(star(n), seed=3)
    hub = rig.observe()
    return rig, hub


class TestOrdering:
    def test_client_hooks_forward_then_reversed(self):
        rig = SimRig(star(1), seed=0)
        log = []
        client = rig.node("h0").orb
        client.add_client_interceptor(Recorder("a", log))
        client.add_client_interceptor(Recorder("b", log))
        ior = rig.node("hub").orb.adapter("t").activate(EchoServant())
        assert rig.run(until=client.invoke(
            ior, ECHO.operations["echo"], ("x",))) == "x"
        assert log == [("send", "a"), ("send", "b"),
                       ("reply", "b"), ("reply", "a")]

    def test_server_hooks_forward_then_reversed(self):
        rig = SimRig(star(1), seed=0)
        log = []
        server = rig.node("hub").orb
        server.add_server_interceptor(Recorder("a", log))
        server.add_server_interceptor(Recorder("b", log))
        ior = server.adapter("t").activate(EchoServant())
        rig.run(until=rig.node("h0").orb.invoke(
            ior, ECHO.operations["echo"], ("x",)))
        assert log == [("recv", "a"), ("recv", "b"),
                       ("finish", "b"), ("finish", "a")]

    def test_exception_path_reversed(self):
        rig = SimRig(star(1), seed=0)
        log = []
        client = rig.node("h0").orb
        client.add_client_interceptor(Recorder("a", log))
        client.add_client_interceptor(Recorder("b", log))
        servant = FlakyServant()
        servant.failures_left = 1
        ior = rig.node("hub").orb.adapter("t").activate(servant)

        def proc():
            with pytest.raises(TRANSIENT):
                yield client.invoke(ior, FLAKY.operations["poke"], ())

        rig.run_process(proc())
        assert log == [("send", "a"), ("send", "b"),
                       ("exc", "b"), ("exc", "a")]


class TestTracePropagation:
    def test_client_and_server_spans_share_a_trace(self):
        rig, hub = observed_rig()
        ior = rig.node("hub").orb.adapter("t").activate(EchoServant())
        rig.run(until=rig.node("h0").orb.invoke(
            ior, ECHO.operations["echo"], ("hi",)))
        traces = hub.traces()
        assert len(traces) == 1
        (spans,) = traces.values()
        kinds = {s.kind for s in spans}
        assert kinds == {"client", "server"}
        assert hub.tracer.trace_is_connected(spans[0].trace_id)
        server = next(s for s in spans if s.kind == "server")
        client = next(s for s in spans if s.kind == "client")
        assert server.parent_id == client.span_id

    def test_nested_remote_call_joins_the_trace(self):
        # h0 -> hub (relay) -> h1 (echo): three hosts, one trace.
        rig, hub = observed_rig(n=2)
        echo_ior = rig.node("h1").orb.adapter("t").activate(EchoServant())
        relay_ior = rig.node("hub").orb.adapter("t").activate(
            RelayServant(rig.node("hub").orb, echo_ior))
        result = rig.run(until=rig.node("h0").orb.invoke(
            relay_ior, RELAY.operations["relay"], ("hi",)))
        assert result == "hi!"
        traces = hub.traces()
        assert len(traces) == 1
        (spans,) = traces.values()
        assert len(spans) == 4  # call+serve relay, call+serve echo
        assert hub.tracer.trace_is_connected(spans[0].trace_id)
        inner_client = next(s for s in spans
                            if s.kind == "client" and "echo" in s.name)
        outer_server = next(s for s in spans
                            if s.kind == "server" and "relay" in s.name)
        assert inner_client.parent_id == outer_server.span_id

    def test_retry_attempts_share_one_trace(self):
        rig, hub = observed_rig()
        servant = FlakyServant()
        servant.failures_left = 1
        ior = rig.node("hub").orb.adapter("t").activate(servant)

        def proc():
            value = yield from invoke_with_retry(
                rig.node("h0").orb, ior, FLAKY.operations["poke"], (),
                policy=RetryPolicy(attempts=3, timeout=5.0, backoff=0.1))
            return value

        assert rig.run_process(proc()) == 2
        traces = hub.traces()
        assert len(traces) == 1
        (spans,) = traces.values()
        # retry envelope + 2 attempts x (client + server)
        assert len(spans) == 5
        assert hub.tracer.trace_is_connected(spans[0].trace_id)
        root = next(s for s in spans if s.parent_id is None)
        assert root.name == "retry:poke"
        assert root.attrs["attempts"] == 2
        failed = [s for s in spans if s.status == "error"]
        assert {s.kind for s in failed} == {"client", "server"}
        assert all(s.error == "IDL:omg.org/CORBA/TRANSIENT:1.0"
                   or "TRANSIENT" in s.error for s in failed)

    def test_fanout_under_one_bound_context(self):
        # one logical report fanned out to two receivers: all four spans
        # (2 client + 2 server) under the root the caller bound.
        rig, hub = observed_rig(n=2)
        iors = [rig.node(h).orb.adapter("t").activate(EchoServant())
                for h in ("hub", "h1")]
        orb = rig.node("h0").orb

        def proc():
            root = hub.tracer.start_span("fanout", host="h0")
            hub.context.bind(rig.env.active_process, root.context)
            for ior in iors:
                orb.send_oneway(ior, ECHO.operations["note"], ("n",))
            yield rig.env.timeout(1.0)
            hub.tracer.end_span(root)

        rig.run_process(proc())
        traces = hub.traces()
        assert len(traces) == 1
        (spans,) = traces.values()
        assert len(spans) == 5
        assert hub.tracer.trace_is_connected(spans[0].trace_id)
        root = next(s for s in spans if s.parent_id is None)
        clients = [s for s in spans if s.kind == "client"]
        assert {s.parent_id for s in clients} == {root.span_id}
        assert {s.host for s in spans if s.kind == "server"} == \
            {"hub", "h1"}


class TestMetricsRecording:
    def test_latency_and_size_histograms(self):
        rig, hub = observed_rig()
        ior = rig.node("hub").orb.adapter("t").activate(EchoServant())
        for _ in range(5):
            rig.run(until=rig.node("h0").orb.invoke(
                ior, ECHO.operations["echo"], ("payload",)))
        m = hub.metrics
        lat = m.find_histogram("orb.client.latency.echo")
        assert lat.count == 5
        assert lat.percentile(50) > 0
        assert m.find_histogram("orb.server.latency.echo").count == 5
        assert m.find_histogram("orb.client.request_bytes.echo").count == 5
        assert m.find_histogram("orb.client.reply_bytes.echo").count == 5

    def test_errors_counted(self):
        rig, hub = observed_rig()
        servant = FlakyServant()
        servant.failures_left = 1
        ior = rig.node("hub").orb.adapter("t").activate(servant)

        def proc():
            with pytest.raises(TRANSIENT):
                yield rig.node("h0").orb.invoke(
                    ior, FLAKY.operations["poke"], ())

        rig.run_process(proc())
        assert hub.metrics.get("orb.client.errors.poke") == 1
        assert hub.metrics.get("orb.server.errors.poke") == 1

    def test_pending_depth_series_sampled(self):
        from repro.obs import PENDING_DEPTH_SERIES
        rig, hub = observed_rig()
        ior = rig.node("hub").orb.adapter("t").activate(EchoServant())
        rig.run(until=rig.node("h0").orb.invoke(
            ior, ECHO.operations["echo"], ("x",)))
        series = hub.metrics.series(PENDING_DEPTH_SERIES)
        assert len(series) == 2          # insert + drain
        assert series.max() == 1.0
        assert float(series.values[-1]) == 0.0

"""BatchWriter: size/age flush thresholds, drop-oldest, pause/resume."""

import pytest

from repro.events.batch_writer import BatchWriter
from repro.sim.kernel import Environment
from repro.sim.stats import MetricRegistry
from repro.util.errors import ConfigurationError


def make_writer(env, metrics, **kwargs):
    batches = []
    writer = BatchWriter(env, batches.append, metrics=metrics,
                         name="bus", **kwargs)
    return writer, batches


class TestValidation:
    def test_bad_params_rejected(self):
        env = Environment()
        with pytest.raises(ConfigurationError):
            BatchWriter(env, lambda b: None, max_batch=0)
        with pytest.raises(ConfigurationError):
            BatchWriter(env, lambda b: None, max_age=0.0)
        with pytest.raises(ConfigurationError):
            BatchWriter(env, lambda b: None, max_batch=8, capacity=4)


class TestFlushThresholds:
    def test_size_threshold_flushes_synchronously(self):
        env = Environment()
        writer, batches = make_writer(env, MetricRegistry(),
                                      max_batch=3, max_age=10.0)
        for i in range(7):
            writer.append(i)
        # No simulated time has passed: two full batches went out on
        # the size threshold alone; the tail waits for its age timer.
        assert batches == [[0, 1, 2], [3, 4, 5]]
        assert writer.pending == 1

    def test_age_threshold_flushes_partial_batch(self):
        env = Environment()
        writer, batches = make_writer(env, MetricRegistry(),
                                      max_batch=100, max_age=0.5)
        writer.append("a")
        writer.append("b")
        env.run(until=0.49)
        assert batches == []
        env.run(until=0.51)
        assert batches == [["a", "b"]]

    def test_age_timer_measures_oldest_item(self):
        env = Environment()
        writer, batches = make_writer(env, MetricRegistry(),
                                      max_batch=100, max_age=1.0)

        def feed():
            writer.append(0)
            yield env.timeout(0.9)
            writer.append(1)   # must NOT push the flush to t=1.9
            yield env.timeout(0.2)

        env.run(until=env.process(feed()))
        assert batches == [[0, 1]]
        assert env.now == pytest.approx(1.1)

    def test_threshold_flush_invalidates_age_timer(self):
        env = Environment()
        metrics = MetricRegistry()
        writer, batches = make_writer(env, metrics,
                                      max_batch=2, max_age=0.5)
        writer.append(1)         # arms the age timer
        writer.append(2)         # size flush
        env.run(until=1.0)       # stale age timer fires: must not re-flush
        assert batches == [[1, 2]]
        assert metrics.get("bus.flushes") == 1

    def test_explicit_flush_and_clear(self):
        env = Environment()
        writer, batches = make_writer(env, MetricRegistry(),
                                      max_batch=10, max_age=5.0)
        writer.append(1)
        writer.flush()
        assert batches == [[1]]
        writer.append(2)
        writer.clear()
        env.run(until=10.0)
        assert batches == [[1]]          # cleared items never delivered
        assert writer.pending == 0


class TestOverflow:
    def test_drop_oldest_past_capacity(self):
        env = Environment()
        metrics = MetricRegistry()
        dropped = []
        writer = BatchWriter(env, lambda b: None, max_batch=4,
                             max_age=1.0, capacity=4, metrics=metrics,
                             name="bus", on_drop=dropped.append)
        writer.pause()
        for i in range(10):
            writer.append(i)
        assert list(writer._buf) == [6, 7, 8, 9]   # newest survive
        assert dropped == [0, 1, 2, 3, 4, 5]
        assert metrics.get("bus.dropped") == 6

    def test_resume_flushes_full_buffer(self):
        env = Environment()
        batches = []
        writer = BatchWriter(env, batches.append, max_batch=3,
                             max_age=0.5, capacity=8,
                             metrics=MetricRegistry(), name="bus")
        writer.pause()
        for i in range(3):
            writer.append(i)
        assert batches == []             # paused: no flush
        writer.resume()
        assert batches == [[0, 1, 2]]    # size threshold honoured now

    def test_resume_rearms_age_timer_for_partial(self):
        env = Environment()
        writer, batches = make_writer(env, MetricRegistry(),
                                      max_batch=10, max_age=0.2)
        writer.pause()
        writer.append("x")
        writer.resume()
        env.run(until=1.0)
        assert batches == [["x"]]


class TestGeneratorFlush:
    def test_generator_callback_runs_as_process(self):
        env = Environment()
        done = []

        def slow_flush(batch):
            yield env.timeout(0.1)
            done.append((env.now, batch))

        writer = BatchWriter(env, slow_flush, max_batch=2, max_age=1.0,
                             metrics=MetricRegistry(), name="bus")
        writer.append(1)
        writer.append(2)
        env.run(until=1.0)
        assert done == [(0.1, [1, 2])]

"""WorkerPool: async draining, bounded queue, handler fault isolation."""

import pytest

from repro.events.worker import WorkerPool
from repro.sim.kernel import Environment
from repro.sim.stats import MetricRegistry
from repro.util.errors import ConfigurationError


class TestValidation:
    def test_bad_params_rejected(self):
        env = Environment()
        with pytest.raises(ConfigurationError):
            WorkerPool(env, lambda item: None, workers=0)
        with pytest.raises(ConfigurationError):
            WorkerPool(env, lambda item: None, capacity=0)


class TestDraining:
    def test_submit_never_blocks_and_all_handled(self):
        env = Environment()
        metrics = MetricRegistry()
        seen = []
        pool = WorkerPool(env, seen.append, metrics=metrics, name="pool")
        for i in range(20):
            pool.submit(i)
        env.run(until=1.0)
        assert seen == list(range(20))
        assert metrics.get("pool.handled") == 20
        assert pool.pending == 0

    def test_generator_handlers_overlap_across_workers(self):
        env = Environment()
        finished = []

        def handler(item):
            yield env.timeout(1.0)
            finished.append((env.now, item))

        pool = WorkerPool(env, handler, workers=4,
                          metrics=MetricRegistry())
        for i in range(4):
            pool.submit(i)
        env.run(until=1.5)
        # Four workers ran the four 1 s jobs concurrently.
        assert sorted(item for _t, item in finished) == [0, 1, 2, 3]
        assert all(t == pytest.approx(1.0) for t, _ in finished)

    def test_single_worker_serializes(self):
        env = Environment()
        finished = []

        def handler(item):
            yield env.timeout(1.0)
            finished.append(env.now)

        pool = WorkerPool(env, handler, workers=1,
                          metrics=MetricRegistry())
        for i in range(3):
            pool.submit(i)
        env.run(until=10.0)
        assert finished == [pytest.approx(1.0), pytest.approx(2.0),
                            pytest.approx(3.0)]

    def test_workers_idle_then_wake_on_submit(self):
        env = Environment()
        seen = []
        pool = WorkerPool(env, seen.append, metrics=MetricRegistry())
        env.run(until=5.0)          # pool idles without busy-looping
        pool.submit("late")
        env.run(until=6.0)
        assert seen == ["late"]


class TestBounds:
    def test_drop_oldest_past_capacity(self):
        env = Environment()
        metrics = MetricRegistry()
        seen = []

        def handler(item):
            yield env.timeout(10.0)   # wedge the single worker
            seen.append(item)

        pool = WorkerPool(env, handler, workers=1, capacity=3,
                          metrics=metrics, name="pool")
        pool.submit("wedged")
        env.run(until=0.1)           # worker now holds "wedged"
        for i in range(6):
            pool.submit(i)
        assert pool.pending == 3
        assert metrics.get("pool.dropped") == 3
        env.run(until=50.0)
        assert seen == ["wedged", 3, 4, 5]


class TestFaultIsolation:
    def test_handler_exception_counted_worker_survives(self):
        env = Environment()
        metrics = MetricRegistry()
        seen = []

        def handler(item):
            if item == "bad":
                raise RuntimeError("poisoned event")
            seen.append(item)

        pool = WorkerPool(env, handler, metrics=metrics, name="pool")
        for item in ("a", "bad", "b"):
            pool.submit(item)
        env.run(until=1.0)
        assert seen == ["a", "b"]
        assert metrics.get("pool.errors") == 1
        assert metrics.get("pool.handled") == 2

    def test_stop_terminates_workers(self):
        env = Environment()
        pool = WorkerPool(env, lambda item: None,
                          metrics=MetricRegistry())
        env.run(until=0.1)
        pool.stop()
        pool.submit("ignored")
        env.run(until=1.0)           # no crash, nothing handled
        assert pool.pending == 1

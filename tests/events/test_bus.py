"""EventBus: topic routing, fan-out decoupling, batched subscriptions."""

import pytest

from repro.events.bus import EventBus
from repro.sim.kernel import Environment
from repro.sim.stats import MetricRegistry
from repro.util.errors import ConfigurationError


def make_bus():
    env = Environment()
    metrics = MetricRegistry()
    return env, metrics, EventBus(env, metrics)


class TestRouting:
    def test_exact_topic_match(self):
        env, metrics, bus = make_bus()
        got_a, got_b = [], []
        bus.subscribe("alpha", lambda ev: got_a.append(ev.payload))
        bus.subscribe("beta", lambda ev: got_b.append(ev.payload))
        bus.publish("alpha", 1)
        bus.publish("beta", 2)
        bus.publish("gamma", 3)
        env.run(until=0.1)
        assert got_a == [1]
        assert got_b == [2]
        assert metrics.get("bus.no_subscriber") == 1
        assert metrics.get("bus.published") == 3
        assert metrics.get("bus.delivered") == 2

    def test_wildcard_prefix_and_catch_all(self):
        env, _metrics, bus = make_bus()
        sup, everything = [], []
        bus.subscribe("supervisor.*", lambda ev: sup.append(ev.topic))
        bus.subscribe("*", lambda ev: everything.append(ev.topic))
        bus.publish("supervisor.recovery")
        bus.publish("supervisor.promotion")
        bus.publish("registry.views")
        env.run(until=0.1)
        assert sup == ["supervisor.recovery", "supervisor.promotion"]
        assert len(everything) == 3

    def test_bad_patterns_rejected(self):
        _env, _metrics, bus = make_bus()
        with pytest.raises(ConfigurationError):
            bus.subscribe("", lambda ev: None)
        with pytest.raises(ConfigurationError):
            bus.subscribe("foo*", lambda ev: None)   # not 'foo.*'

    def test_events_carry_time_and_ordered_seq(self):
        env, _metrics, bus = make_bus()
        seen = []
        bus.subscribe("t", seen.append)

        def feed():
            bus.publish("t", "x")
            yield env.timeout(2.5)
            bus.publish("t", "y")

        env.run(until=env.process(feed()))
        env.run(until=5.0)
        assert [ev.payload for ev in seen] == ["x", "y"]
        assert seen[0].time == 0.0 and seen[1].time == 2.5
        assert seen[0].seq < seen[1].seq


class TestDecoupling:
    def test_publish_returns_before_handlers_run(self):
        env, _metrics, bus = make_bus()
        ran = []
        bus.subscribe("t", lambda ev: ran.append(ev.payload))
        bus.publish("t", 1)
        assert ran == []            # asynchronous: nothing ran inline
        env.run(until=0.1)
        assert ran == [1]

    def test_slow_subscriber_does_not_block_fast_one(self):
        env, _metrics, bus = make_bus()
        fast, slow = [], []

        def slow_handler(ev):
            yield env.timeout(10.0)
            slow.append(ev.payload)

        bus.subscribe("t", slow_handler)
        bus.subscribe("t", lambda ev: fast.append(ev.payload))
        for i in range(3):
            bus.publish("t", i)
        env.run(until=1.0)
        assert fast == [0, 1, 2]    # fast sub done long before slow
        assert slow == []

    def test_subscriber_overflow_sheds_into_bus_dropped(self):
        env, metrics, bus = make_bus()

        def wedge(ev):
            yield env.timeout(100.0)

        bus.subscribe("t", wedge, capacity=2)
        for i in range(8):
            bus.publish("t", i)
        # All 8 published before the worker ran: only the newest 2 fit.
        env.run(until=1.0)
        assert metrics.get("bus.dropped") == 6


class TestBatchedSubscriptions:
    def test_batches_by_size_and_age(self):
        env, _metrics, bus = make_bus()
        batches = []
        bus.batch_subscribe(
            "t", lambda evs: batches.append([e.payload for e in evs]),
            max_batch=3, max_age=0.5)
        for i in range(4):
            bus.publish("t", i)
        assert batches == [[0, 1, 2]]            # size flush, inline
        env.run(until=1.0)
        assert batches == [[0, 1, 2], [3]]       # age flush for the tail

    def test_bus_flush_forces_all_batched_subs(self):
        env, _metrics, bus = make_bus()
        batches = []
        bus.batch_subscribe("a", batches.append, max_batch=100,
                            max_age=60.0)
        bus.batch_subscribe("b.*", batches.append, max_batch=100,
                            max_age=60.0)
        bus.publish("a", 1)
        bus.publish("b.x", 2)
        bus.flush()
        assert len(batches) == 2

    def test_unsubscribe_stops_delivery(self):
        env, _metrics, bus = make_bus()
        got = []
        sub = bus.subscribe("t", lambda ev: got.append(ev.payload))
        bus.publish("t", 1)
        env.run(until=0.1)
        sub.cancel()
        bus.publish("t", 2)
        env.run(until=0.5)
        assert got == [1]
        assert bus.subscriptions() == []

"""Remote bus delivery: BatchForwarder, event sinks, metrics export."""

import pytest

from repro.events.bus import EventBus
from repro.events.remote import (
    BatchForwarder,
    EVENT_SINK_IFACE,
    EventSinkServant,
    FanoutForwarder,
    sink_batch_args,
)
from repro.orb.core import ORB
from repro.orb.retry import CircuitBreaker
from repro.sim.kernel import Environment
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.topology import star

PUSH_BATCH = EVENT_SINK_IFACE.operations["push_batch"]


def make_rig(**client_kwargs):
    env = Environment()
    net = Network(env, star(2), rngs=RngRegistry(7))
    server = ORB(env, net, "h0")
    client = ORB(env, net, "h1", **client_kwargs)
    servant = EventSinkServant()
    ior = server.adapter("root").activate(servant)
    return env, net, server, client, servant, ior


class TestBatchForwarder:
    def test_batched_events_arrive_in_order(self):
        env, net, _server, client, servant, ior = make_rig()
        bus = EventBus(env, net.metrics)
        forwarder = BatchForwarder(client, ior, PUSH_BATCH,
                                   to_args=sink_batch_args)
        bus.batch_subscribe("logs.*", forwarder.deliver,
                            max_batch=4, max_age=0.05)
        for i in range(10):
            bus.publish("logs.app", f"line-{i}")
        env.run(until=1.0)
        assert [d for _t, d in servant.received] == [
            f"line-{i}" for i in range(10)]
        assert all(t == "logs.app" for t, _d in servant.received)
        assert net.metrics.get("bus.remote.batches") == 3   # 4+4+2
        assert net.metrics.get("bus.remote.events") == 10

    def test_batching_collapses_wire_messages(self):
        env, net, _server, client, servant, ior = make_rig()
        bus = EventBus(env, net.metrics)
        forwarder = BatchForwarder(client, ior, PUSH_BATCH,
                                   to_args=sink_batch_args)
        bus.batch_subscribe("t", forwarder.deliver,
                            max_batch=50, max_age=0.05)
        before = net.metrics.get("net.messages")
        for i in range(50):
            bus.publish("t", str(i))
        env.run(until=1.0)
        # 50 logical events crossed the wire as ONE message.
        assert net.metrics.get("net.messages") == before + 1
        assert len(servant.received) == 50

    def test_open_breaker_suppresses_and_oneways_reclose_it(self):
        env, net, _server, client, servant, ior = make_rig()
        breaker = CircuitBreaker(client, "h0", failure_threshold=1,
                                 reset_timeout=5.0, half_open_probes=2)
        forwarder = BatchForwarder(client, ior, PUSH_BATCH,
                                   to_args=sink_batch_args, breaker=breaker)
        breaker.on_failure()                  # force OPEN
        assert breaker.state == CircuitBreaker.OPEN

        class FakeEvent:
            def __init__(self, topic, payload):
                self.topic, self.payload = topic, payload

        assert forwarder.deliver([FakeEvent("t", "lost")]) is False
        assert net.metrics.get("bus.remote.suppressed") == 1
        env.run(until=6.0)                    # past reset_timeout
        assert forwarder.deliver([FakeEvent("t", "p1")]) is True
        assert breaker.state == CircuitBreaker.HALF_OPEN
        assert forwarder.deliver([FakeEvent("t", "p2")]) is True
        # Two admitted oneway sends = the full probe budget: re-closed.
        assert breaker.state == CircuitBreaker.CLOSED
        env.run(until=10.0)
        assert [d for _t, d in servant.received] == ["p1", "p2"]


class TestFanoutForwarder:
    def make_sinks(self, n):
        env = Environment()
        net = Network(env, star(n + 1), rngs=RngRegistry(3))
        publisher = ORB(env, net, f"h{n}")
        servants, iors = [], []
        for k in range(n):
            orb = ORB(env, net, f"h{k}")
            servant = EventSinkServant()
            iors.append(orb.adapter("sink").activate(servant))
            servants.append(servant)
        return env, net, publisher, servants, iors

    def test_one_subscription_feeds_every_sink(self):
        env, net, publisher, servants, iors = self.make_sinks(3)
        bus = EventBus(env, net.metrics)
        forwarder = FanoutForwarder(publisher, iors, PUSH_BATCH,
                                    to_args=sink_batch_args)
        bus.batch_subscribe("t", forwarder.deliver,
                            max_batch=4, max_age=0.05)
        for i in range(8):
            bus.publish("t", str(i))
        env.run(until=1.0)
        for servant in servants:
            assert [d for _t, d in servant.received] == [
                str(i) for i in range(8)]
        # One marshal per flush, one frame per sink: 2 flushes x 3.
        assert net.metrics.get("bus.remote.batches") == 6
        assert net.metrics.get("bus.remote.events") == 24
        assert net.metrics.get("net.messages") == 6

    def test_marshal_error_counted_not_fatal(self):
        env, net, publisher, servants, iors = self.make_sinks(2)
        bus = EventBus(env, net.metrics)
        forwarder = FanoutForwarder(publisher, iors, PUSH_BATCH,
                                    to_args=lambda evs: ([1], ["x"]))
        sub = bus.batch_subscribe("t", forwarder.deliver,
                                  max_batch=1, max_age=0.05)
        bus.publish("t", "bad")            # topic arg 1 is not a string
        env.run(until=1.0)
        assert net.metrics.get("bus.remote.errors") == 1
        assert all(s.received == [] for s in servants)
        # The subscription survives the poisoned batch.
        forwarder.to_args = sink_batch_args
        bus.publish("t", "good")
        env.run(until=2.0)
        assert all([d for _t, d in s.received] == ["good"]
                   for s in servants)
        assert sub.pending == 0


class TestMetricsExport:
    def test_exporter_batches_to_collector(self):
        from repro.events.export import MetricsCollector, MetricsExporter
        from repro.sim.topology import star as star_topo
        from repro.testing import SimRig

        rig = SimRig(star_topo(2), seed=11)
        hub, leaf = rig.node("hub"), rig.node("h0")
        collector = MetricsCollector(hub)
        bus = EventBus(rig.env, rig.metrics)
        exporter = MetricsExporter(leaf, bus, collector.ior,
                                   interval=1.0, prefixes=("net.",))
        rig.run(until=10.5)
        assert exporter.snapshots == 10
        assert "h0" in collector.latest
        table = collector.latest["h0"]
        assert any(name.startswith("net.") for name in table)
        # Batching: far fewer ingest calls than snapshots is the point;
        # at minimum every sample that arrived was a net.* counter.
        assert collector.batches >= 1
        assert collector.samples >= len(table)
        assert collector.last_seen["h0"] > 0

"""Tests for applications-as-bootstrap-components (§2.4.4)."""

import pytest

from repro.deployment.bootstrap import (
    BootstrapError,
    NetworkDeployer,
    application_package,
)
from repro.sim.topology import SERVER, star
from repro.testing import COUNTER_IFACE, SimRig, counter_package
from repro.xmlmeta.descriptors import (
    AssemblyConnection,
    AssemblyDescriptor,
    AssemblyInstance,
)


def pair_assembly():
    return AssemblyDescriptor(
        name="pair",
        instances=[AssemblyInstance("a", "Counter"),
                   AssemblyInstance("b", "Counter")],
        connections=[AssemblyConnection("a", "peer", "b", "value")])


@pytest.fixture
def rig():
    r = SimRig(star(3, hub_profile=SERVER))
    r.node("hub").install_package(counter_package(cpu_units=50.0))
    return r


class TestNetworkDeployer:
    def test_deploys_using_only_remote_services(self, rig):
        # the deployer lives on h2, which has nothing installed locally
        deployer = NetworkDeployer(rig.node("h2"),
                                   rig.topology.host_ids())
        app = rig.run(until=deployer.deploy(pair_assembly()))
        assert set(app.placement) == {"a", "b"}
        # the wiring is live
        host_a = app.placement["a"]
        inst = rig.node(host_a).container.find_instance(
            app.instance_id("a"))
        stub = inst.executor.context.connection("peer")
        assert rig.node(host_a).orb.sync(stub.increment(3)) == 3

    def test_unknown_component_surfaces_bootstrap_error(self, rig):
        deployer = NetworkDeployer(rig.node("h2"),
                                   rig.topology.host_ids())
        assembly = AssemblyDescriptor(
            name="bad", instances=[AssemblyInstance("x", "Ghost")])
        with pytest.raises(BootstrapError):
            rig.run(until=deployer.deploy(assembly))

    def test_dead_source_host_is_skipped(self):
        from repro.sim.topology import clustered
        r = SimRig(clustered(1, 4))  # full mesh: no single choke point
        r.node("c0h0").install_package(counter_package(cpu_units=50.0))
        r.node("c0h1").install_package(counter_package(cpu_units=50.0))
        r.topology.set_host_state("c0h0", alive=False)
        deployer = NetworkDeployer(r.node("c0h3"),
                                   r.topology.host_ids())
        app = r.run(until=deployer.deploy(pair_assembly()))
        assert all(h != "c0h0" for h in app.placement.values())


class TestBootstrapComponent:
    def test_application_package_roundtrips(self, rig):
        pkg = application_package(pair_assembly())
        assert pkg.name == "app-pair"
        # the assembly travels inside the binary payload
        assert b"assembly" in pkg.binary_payload("linux", "x86",
                                                 "corba-lc")

    def test_instance_creation_deploys_the_application(self, rig):
        hub = rig.node("hub")
        hub.install_package(application_package(pair_assembly()))
        bootstrap = hub.container.create_instance("app-pair")
        rig.run(until=rig.env.now + 2.0)
        app = bootstrap.executor.application
        assert bootstrap.executor.deploy_error is None
        assert app is not None
        assert set(app.placement) == {"a", "b"}
        # the deployed instances really exist on their hosts
        for name in ("a", "b"):
            host = app.placement[name]
            assert rig.node(host).container.find_instance(
                app.instance_id(name)) is not None

    def test_bootstrap_can_run_on_a_bare_node(self, rig):
        """Install the app component on a node with no other packages;
        the assembly's components are found over the network."""
        h1 = rig.node("h1")
        h1.install_package(application_package(pair_assembly()))
        bootstrap = h1.container.create_instance("app-pair")
        rig.run(until=rig.env.now + 2.0)
        assert bootstrap.executor.deploy_error is None
        assert bootstrap.executor.application is not None

    def test_destroying_bootstrap_tears_down_the_application(self, rig):
        hub = rig.node("hub")
        hub.install_package(application_package(pair_assembly()))
        bootstrap = hub.container.create_instance("app-pair")
        rig.run(until=rig.env.now + 2.0)
        app = bootstrap.executor.application
        hub.container.destroy_instance(bootstrap.instance_id)
        rig.run(until=rig.env.now + 2.0)
        assert app.torn_down
        for host in rig.nodes:
            for inst in rig.node(host).container.instances():
                assert not inst.instance_id.startswith("pair.")

    def test_failed_deployment_recorded_not_raised(self, rig):
        assembly = AssemblyDescriptor(
            name="bad", instances=[AssemblyInstance("x", "Ghost")])
        hub = rig.node("hub")
        hub.install_package(application_package(assembly))
        bootstrap = hub.container.create_instance("app-bad")
        rig.run(until=rig.env.now + 3.0)
        assert bootstrap.executor.application is None
        assert isinstance(bootstrap.executor.deploy_error,
                          BootstrapError)

"""Supervisor repair fencing under partition/restart flaps (chaos PR).

Found by the chaos harness: a host crash queues a recovery, planning
takes (simulated) time, and if the host heals — or another pass
repairs the instance — *while planning is in flight*, the old code
incarnated a second copy anyway: a duplicate instance with rolled-back
state, plus an orphan pointing at the live original.

Repairs are now fenced by the application's per-instance incarnation
epoch, re-checked at the last yield before incarnating; a superseded
repair aborts cleanly (``supervisor.repair.fenced``), never counting
as a failure or leaving debris.
"""

import pytest

from repro.deployment import ApplicationSupervisor, Deployer, RuntimePlanner
from repro.deployment.application import RepairSuperseded
from repro.sim.faults import FaultInjector
from repro.sim.topology import SERVER, star
from repro.testing import SimRig, counter_package
from repro.xmlmeta.descriptors import (
    AssemblyConnection,
    AssemblyDescriptor,
    AssemblyInstance,
)

pytestmark = pytest.mark.faults


def assembly():
    return AssemblyDescriptor(
        name="app",
        instances=[AssemblyInstance(f"i{k}", "Counter") for k in range(4)],
        connections=[AssemblyConnection("i0", "peer", "i1", "value"),
                     AssemblyConnection("i2", "peer", "i3", "value")])


def deployed_rig(seed=31):
    rig = SimRig(star(4, leaf_profile=SERVER), seed=seed)
    rig.node("hub").install_package(counter_package(cpu_units=50.0))
    dep = Deployer(rig.nodes, RuntimePlanner(), coordinator_host="hub")
    app = rig.run(until=dep.deploy(assembly()))
    return rig, dep, app


def instance_copies(rig, app, name):
    """Live hosts holding an incarnation of *name*."""
    iid = app.instance_id(name)
    return [h for h in rig.topology.host_ids()
            if rig.topology.host(h).alive
            and rig.node(h).container.find_instance(iid) is not None]


class TestRepairFencing:
    def test_concurrent_repair_is_fenced_by_epoch(self):
        """A competing repair bumps the incarnation epoch mid-plan;
        the stale repair must abort instead of double-incarnating."""
        rig, dep, app = deployed_rig()
        sup = ApplicationSupervisor(dep, interval=1000.0,
                                    checkpoint=False)
        sup.stop()      # drive ticks by hand
        victim = next(name for name, host in app.placement.items()
                      if host != "hub")
        dead_host = app.placement[victim]
        injector = FaultInjector(rig.env, rig.topology)
        injector.crash_host(dead_host)

        # Simulate the competing recovery finishing first: bump the
        # incarnation epoch shortly after the tick begins planning.
        def competing():
            yield rig.env.timeout(0.001)
            app.incarnations[victim] = app.incarnation(victim) + 1
        rig.env.process(competing())
        rig.run(until=sup.run_once())

        assert rig.metrics.get("supervisor.repair.fenced") >= 1
        # The fenced repair incarnated nothing anywhere.
        assert instance_copies(rig, app, victim) == []
        assert app.placement[victim] == dead_host
        assert dep.orphans == []

    def test_host_healing_mid_plan_fences_repair(self):
        """The 'dead' host restarts while planning is in flight: its
        container still holds the authoritative instance, so the
        repair must stand down (pre-fix: duplicate incarnation)."""
        rig, dep, app = deployed_rig(seed=32)
        sup = ApplicationSupervisor(dep, interval=1000.0,
                                    checkpoint=False)
        sup.stop()
        victim = next(name for name, host in app.placement.items()
                      if host != "hub")
        dead_host = app.placement[victim]
        injector = FaultInjector(rig.env, rig.topology)
        injector.crash_host(dead_host)
        injector.restart_at(rig.env.now + 0.001, dead_host)
        rig.run(until=sup.run_once())

        assert rig.metrics.get("supervisor.repair.fenced") >= 1
        assert app.placement[victim] == dead_host
        # Exactly one incarnation: the original, back on its host.
        assert instance_copies(rig, app, victim) == [dead_host]
        assert dep.orphans == []

    def test_successful_repair_bumps_incarnation_epoch(self):
        rig, dep, app = deployed_rig(seed=33)
        sup = ApplicationSupervisor(dep, interval=1000.0,
                                    checkpoint=False)
        sup.stop()
        victim = next(name for name, host in app.placement.items()
                      if host != "hub")
        dead_host = app.placement[victim]
        before = app.incarnation(victim)
        injector = FaultInjector(rig.env, rig.topology)
        injector.crash_host(dead_host)
        rig.run(until=sup.run_once())

        assert app.incarnation(victim) == before + 1
        new_host = app.placement[victim]
        assert new_host != dead_host
        assert instance_copies(rig, app, victim) == [new_host]
        assert rig.metrics.get("supervisor.recoveries") >= 1

    def test_repair_superseded_is_clean_abort_type(self):
        from repro.deployment.application import DeploymentError
        assert issubclass(RepairSuperseded, DeploymentError)

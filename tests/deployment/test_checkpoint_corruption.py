"""Corrupt externalized-state snapshots must never kill the supervisor.

Found by the chaos harness (wire_storm fault): link-level corruption
bit-flipped a ``get_state`` reply in flight; ``pickle.loads`` blew up
inside the supervisor's checkpoint pass and took the whole control
loop down with it.  State blobs are opaque octets on the wire — a bad
snapshot is an *expected* input, not an internal error.

``loads_state`` now raises :class:`StateDecodeError`; the supervisor
counts the corrupt snapshot and keeps its previous good checkpoint,
and a ``set_state`` with garbage fails cleanly as an ``AgentError``.
"""

import pytest

from repro.container.agent import (
    AgentError,
    ContainerAgentServant,
    StateDecodeError,
    dumps_state,
    loads_state,
)
from repro.deployment import ApplicationSupervisor, Deployer, RuntimePlanner
from repro.sim.topology import SERVER, star
from repro.testing import SimRig, counter_package
from repro.util.errors import ValidationError
from repro.xmlmeta.descriptors import AssemblyDescriptor, AssemblyInstance


class TestStateCodec:
    def test_garbage_bytes_raise_decode_error(self):
        with pytest.raises(StateDecodeError):
            loads_state(b"\x00\xffnot a pickle")

    def test_truncated_snapshot_raises_decode_error(self):
        good = dumps_state({"count": 3})
        with pytest.raises(StateDecodeError):
            loads_state(good[: len(good) // 2])

    def test_bitflipped_snapshot_never_escapes_as_raw_error(self):
        good = bytearray(dumps_state({"count": 3, "peer": "c0h1"}))
        for i in range(len(good)):
            flipped = bytes(good[:i] + bytearray([good[i] ^ 0x10])
                            + good[i + 1:])
            try:
                state = loads_state(flipped)
            except StateDecodeError:
                continue
            assert isinstance(state, dict)

    def test_non_dict_payload_rejected(self):
        import pickle
        with pytest.raises(StateDecodeError):
            loads_state(pickle.dumps(["not", "a", "dict"]))

    def test_decode_error_is_validation_error(self):
        assert issubclass(StateDecodeError, ValidationError)


def checkpointing_rig(seed=41):
    rig = SimRig(star(3, leaf_profile=SERVER), seed=seed)
    rig.node("hub").install_package(counter_package(cpu_units=50.0))
    dep = Deployer(rig.nodes, RuntimePlanner(), coordinator_host="hub")
    app = rig.run(until=dep.deploy(AssemblyDescriptor(
        name="app",
        instances=[AssemblyInstance("i0", "Counter"),
                   AssemblyInstance("i1", "Counter")],
        connections=[])))
    sup = ApplicationSupervisor(dep, interval=1000.0)
    sup.stop()
    return rig, dep, app, sup


class TestSupervisorSurvivesCorruption:
    def test_corrupt_snapshot_keeps_previous_checkpoint(self, monkeypatch):
        rig, dep, app, sup = checkpointing_rig()
        rig.run(until=sup.run_once())       # seed good checkpoints
        iid = app.instance_id("i0")
        assert iid in sup.checkpoints
        good = dict(sup.checkpoints[iid])

        real = ContainerAgentServant.get_state

        def corrupting(self, instance_id):
            data = real(self, instance_id)
            return data[: len(data) // 2]   # truncated in flight

        monkeypatch.setattr(ContainerAgentServant, "get_state",
                            corrupting)
        # Pre-fix this raised UnpicklingError out of the control loop.
        rig.run(until=sup.run_once())
        assert rig.metrics.get("supervisor.checkpoints.corrupt") >= 1
        assert sup.checkpoints[iid] == good

    def test_clean_pass_after_corruption_recovers(self, monkeypatch):
        rig, dep, app, sup = checkpointing_rig(seed=42)
        real = ContainerAgentServant.get_state
        monkeypatch.setattr(
            ContainerAgentServant, "get_state",
            lambda self, instance_id: b"\x00garbage\xff")
        rig.run(until=sup.run_once())
        assert sup.checkpoints == {}
        assert rig.metrics.get("supervisor.checkpoints.corrupt") >= 2

        monkeypatch.setattr(ContainerAgentServant, "get_state", real)
        rig.run(until=sup.run_once())
        assert app.instance_id("i0") in sup.checkpoints

    def test_set_state_rejects_garbage_as_agent_error(self):
        rig, dep, app, sup = checkpointing_rig(seed=43)
        host = app.placement["i0"]
        servant = ContainerAgentServant(rig.node(host))
        with pytest.raises(AgentError):
            servant.set_state(app.instance_id("i0"), b"\xde\xad\xbe\xef")

"""The deployer gate: broken assemblies rejected before any incarnate."""

import pytest

from repro.analysis import AssemblyRejected, DeploymentGate
from repro.deployment.application import Deployer
from repro.deployment.planner import RuntimePlanner, VerifiedPlanner
from repro.packaging.binaries import GLOBAL_BINARIES
from repro.packaging.package import ComponentPackage, PackageBuilder
from repro.sim.topology import SERVER, star
from repro.testing import CounterExecutor, SimRig, counter_package
from repro.xmlmeta.descriptors import (
    AssemblyConnection,
    AssemblyDescriptor,
    AssemblyInstance,
    ComponentTypeDescriptor,
    ImplementationDescriptor,
    PortDecl,
    QoSSpec,
    SoftwareDescriptor,
)
from repro.xmlmeta.versions import Version

_STORAGE_IDL = """
#pragma prefix "corbalc"
module Demo {
  interface Storage {
    void put(in long value);
  };
};
"""


def storage_package() -> ComponentPackage:
    """A package providing an interface unrelated to Counter."""
    entry = "demo.gate-storage"
    GLOBAL_BINARIES.register(entry, CounterExecutor)  # factory stand-in
    soft = SoftwareDescriptor(
        name="Storage", version=Version.parse("1.0.0"),
        vendor="repro-demo",
        implementations=[ImplementationDescriptor(
            "*", "*", "*", entry, "bin/any/storage")])
    comp = ComponentTypeDescriptor(
        name="Storage",
        provides=[PortDecl("store", "IDL:corbalc/Demo/Storage:1.0")],
        qos=QoSSpec(cpu_units=1.0, memory_mb=1.0))
    builder = PackageBuilder(soft, comp)
    builder.add_idl("storage", _STORAGE_IDL)
    builder.add_binary("bin/any/storage", b"\x00" * 64)
    return ComponentPackage(builder.build())


def broken_assembly() -> AssemblyDescriptor:
    """Dangling connection + interface-incompatible connection.

    Built valid, then mutated: the descriptor's own constructor rejects
    unknown instances, but nothing at run time re-checks the lists —
    exactly the gap the gate closes.
    """
    asm = AssemblyDescriptor(
        name="bad-app",
        instances=[AssemblyInstance("c1", "Counter"),
                   AssemblyInstance("s1", "Storage")])
    # c1.peer expects Demo::Counter but s1.store provides Demo::Storage
    asm.connections.append(
        AssemblyConnection("c1", "peer", "s1", "store"))
    # and this endpoint names an instance that does not exist at all
    asm.connections.append(
        AssemblyConnection("c1", "peer", "ghost", "value"))
    return asm


@pytest.fixture
def rig():
    r = SimRig(star(3, hub_profile=SERVER))
    r.node("hub").install_package(counter_package(cpu_units=5.0))
    r.node("hub").install_package(storage_package())
    return r


def total_instances(rig) -> int:
    return sum(len(node.container) for node in rig.nodes.values())


class TestGateRejectsBrokenAssembly:
    def test_rejected_before_any_incarnation(self, rig):
        dep = Deployer(rig.nodes, RuntimePlanner(), coordinator_host="hub",
                       gate=DeploymentGate())
        with pytest.raises(AssemblyRejected):
            rig.run(until=dep.deploy(broken_assembly()))
        assert total_instances(rig) == 0
        assert dep.applications == []

    def test_findings_surfaced_in_error(self, rig):
        dep = Deployer(rig.nodes, RuntimePlanner(), coordinator_host="hub",
                       gate=DeploymentGate())
        with pytest.raises(AssemblyRejected) as err:
            rig.run(until=dep.deploy(broken_assembly()))
        codes = {f.code for f in err.value.findings}
        assert "ASM004" in codes      # dangling connection
        assert "ASM007" in codes      # incompatible port types
        assert "ASM007" in str(err.value) or "ASM004" in str(err.value)

    def test_rejection_counted_in_metrics(self, rig):
        dep = Deployer(rig.nodes, RuntimePlanner(), coordinator_host="hub",
                       gate=DeploymentGate())
        with pytest.raises(AssemblyRejected):
            rig.run(until=dep.deploy(broken_assembly()))
        hub = rig.node("hub")
        assert hub.metrics.counter("analysis.rejected").value == 1


class TestGatePassesGoodAssemblies:
    def test_valid_assembly_deploys_with_gate_enabled(self, rig):
        asm = AssemblyDescriptor(
            name="good-app",
            instances=[AssemblyInstance("a", "Counter"),
                       AssemblyInstance("b", "Counter")],
            connections=[AssemblyConnection("a", "peer", "b", "value")])
        dep = Deployer(rig.nodes, RuntimePlanner(), coordinator_host="hub",
                       gate=DeploymentGate())
        app = rig.run(until=dep.deploy(asm))
        assert set(app.placement) == {"a", "b"}
        assert total_instances(rig) == 2
        assert rig.node("hub").metrics.counter("analysis.rejected").value \
            == 0

    def test_warnings_do_not_block(self, rig):
        # an unwired non-optional receptacle is ASM010, a warning
        asm = AssemblyDescriptor(
            name="warned-app",
            instances=[AssemblyInstance("a", "Counter")])
        dep = Deployer(rig.nodes, RuntimePlanner(), coordinator_host="hub",
                       gate=DeploymentGate())
        app = rig.run(until=dep.deploy(asm))
        assert total_instances(rig) == 1

    def test_verify_reports_without_raising(self, rig):
        diag = DeploymentGate().verify(broken_assembly(), rig.nodes)
        assert diag.has_errors()
        assert {"ASM004", "ASM007"} <= diag.codes()


class TestVerifiedPlanner:
    def test_wrapped_planner_refuses_broken_plan(self, rig):
        planner = VerifiedPlanner(RuntimePlanner(), DeploymentGate(),
                                  rig.nodes)
        dep = Deployer(rig.nodes, planner, coordinator_host="hub")
        with pytest.raises(AssemblyRejected):
            rig.run(until=dep.deploy(broken_assembly()))
        assert total_instances(rig) == 0

    def test_wrapped_planner_passes_good_plan(self, rig):
        planner = VerifiedPlanner(RuntimePlanner(), DeploymentGate(),
                                  rig.nodes)
        dep = Deployer(rig.nodes, planner, coordinator_host="hub")
        asm = AssemblyDescriptor(
            name="ok", instances=[AssemblyInstance("a", "Counter")])
        app = rig.run(until=dep.deploy(asm))
        assert total_instances(rig) == 1

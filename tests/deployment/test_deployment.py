"""Tests for planners, the deployer, and the load balancer."""

import numpy as np
import pytest

from repro.deployment.application import DeploymentError, Deployer
from repro.deployment.loadbalancer import LoadBalancer
from repro.deployment.planner import (
    PlacementError,
    RandomPlanner,
    RoundRobinPlanner,
    RuntimePlanner,
    StaticPlanner,
    load_imbalance,
)
from repro.node.resources import ResourceSnapshot
from repro.sim.topology import DESKTOP, PDA, SERVER, star
from repro.testing import (
    COUNTER_IFACE,
    POKE_KIND,
    SimRig,
    counter_package,
)
from repro.xmlmeta.descriptors import (
    AssemblyConnection,
    AssemblyDescriptor,
    AssemblyInstance,
    QoSSpec,
)


def snap(host, cpu_cap=400.0, cpu_used=0.0, mem_cap=512.0, mem_used=0.0,
         tiny=False):
    return ResourceSnapshot(
        host=host, os="linux", arch="x86", orb="corba-lc", is_tiny=tiny,
        cpu_capacity=cpu_cap, cpu_committed=cpu_used,
        memory_capacity=mem_cap, memory_committed=mem_used,
        instances=0.0, timestamp=0.0)


def assembly(n, component="Counter", connections=()):
    return AssemblyDescriptor(
        name="app",
        instances=[AssemblyInstance(f"i{k}", component) for k in range(n)],
        connections=list(connections))


QOS = {"Counter": QoSSpec(cpu_units=100.0, memory_mb=32.0)}


class TestRuntimePlanner:
    def test_balances_by_current_load(self):
        views = [snap("busy", cpu_used=300.0), snap("idle")]
        plan = RuntimePlanner().plan(assembly(2), views, QOS)
        # both go to the idle host (100+100 < 400) before busy gets any
        assert plan["i0"] == "idle"
        assert plan["i1"] == "idle"

    def test_spreads_when_loads_equal(self):
        views = [snap("a"), snap("b")]
        plan = RuntimePlanner().plan(assembly(4), views, QOS)
        assert sorted(plan.values()).count("a") == 2

    def test_avoids_tiny_hosts(self):
        views = [snap("pda", tiny=True, cpu_cap=20000.0),
                 snap("desk")]
        plan = RuntimePlanner().plan(assembly(3), views, QOS)
        assert set(plan.values()) == {"desk"}

    def test_tiny_used_as_last_resort(self):
        views = [snap("pda", tiny=True), snap("desk", cpu_cap=150.0)]
        plan = RuntimePlanner().plan(assembly(2), views, QOS)
        assert sorted(plan.values()) == ["desk", "pda"]

    def test_placement_error_when_nothing_fits(self):
        views = [snap("a", cpu_cap=50.0)]
        with pytest.raises(PlacementError):
            RuntimePlanner().plan(assembly(1), views, QOS)


class TestStaticPlanner:
    def test_ignores_current_load(self):
        loaded = [snap("a", cpu_used=390.0), snap("b")]
        fresh = [snap("a"), snap("b")]
        plan1 = StaticPlanner().plan(assembly(2), loaded, QOS)
        plan2 = StaticPlanner().plan(assembly(2), fresh, QOS)
        assert plan1 == plan2  # blind to load: same fixed mapping

    def test_deterministic(self):
        views = [snap("a"), snap("b"), snap("c")]
        p1 = StaticPlanner().plan(assembly(5), views, QOS)
        p2 = StaticPlanner().plan(assembly(5), views, QOS)
        assert p1 == p2


class TestOtherPlanners:
    def test_random_planner_deterministic_per_seed(self):
        views = [snap("a"), snap("b"), snap("c")]
        p1 = RandomPlanner(np.random.default_rng(5)).plan(
            assembly(6), views, QOS)
        p2 = RandomPlanner(np.random.default_rng(5)).plan(
            assembly(6), views, QOS)
        assert p1 == p2

    def test_random_planner_from_registry_deterministic(self):
        from repro.sim.rng import RngRegistry
        views = [snap("a"), snap("b"), snap("c")]
        p1 = RandomPlanner(RngRegistry(9)).plan(assembly(6), views, QOS)
        p2 = RandomPlanner(RngRegistry(9)).plan(assembly(6), views, QOS)
        assert p1 == p2

    def test_random_planner_registry_uses_named_stream(self):
        from repro.sim.rng import RngRegistry, derived_stream
        views = [snap("a"), snap("b"), snap("c")]
        p1 = RandomPlanner(RngRegistry(9)).plan(assembly(6), views, QOS)
        p2 = RandomPlanner(derived_stream(
            RandomPlanner.STREAM, 9)).plan(assembly(6), views, QOS)
        assert p1 == p2  # registry path == explicit stream derivation

    def test_round_robin_cycles(self):
        views = [snap("a"), snap("b")]
        plan = RoundRobinPlanner().plan(assembly(4), views, QOS)
        assert plan == {"i0": "a", "i1": "b", "i2": "a", "i3": "b"}

    def test_load_imbalance_metric(self):
        views = [snap("a", cpu_used=400.0), snap("b", cpu_used=0.0)]
        assert load_imbalance(views) == 1.0
        assert load_imbalance([]) == 0.0


class TestDeployer:
    @pytest.fixture
    def rig(self):
        r = SimRig(star(3, hub_profile=SERVER))
        r.node("hub").install_package(counter_package(cpu_units=50.0))
        return r

    def test_deploy_creates_and_wires(self, rig):
        asm = assembly(3, connections=[
            AssemblyConnection("i0", "peer", "i1", "value")])
        dep = Deployer(rig.nodes, RuntimePlanner(), coordinator_host="hub")
        app = rig.run(until=dep.deploy(asm))
        assert set(app.placement) == {"i0", "i1", "i2"}
        # connection i0.peer -> i1.value is live
        host0 = app.placement["i0"]
        inst0 = rig.node(host0).container.find_instance(
            app.instance_id("i0"))
        assert inst0.ports.receptacle("peer").connected
        stub = inst0.executor.context.connection("peer")
        assert rig.node(host0).orb.sync(stub.increment(2)) == 2

    def test_packages_shipped_to_bare_hosts(self, rig):
        asm = assembly(4)
        dep = Deployer(rig.nodes, RuntimePlanner(), coordinator_host="hub")
        app = rig.run(until=dep.deploy(asm))
        used_hosts = set(app.placement.values())
        for host in used_hosts:
            assert rig.node(host).repository.is_installed("Counter")

    def test_event_connection_kind_mismatch_rejected(self, rig):
        asm = AssemblyDescriptor(
            name="bad",
            instances=[AssemblyInstance("a", "Counter"),
                       AssemblyInstance("b", "Counter")],
            # a.pokes consumes demo.poke but b.ticks emits demo.tick
            connections=[AssemblyConnection("a", "pokes", "b", "ticks",
                                            kind="event")])
        dep = Deployer(rig.nodes, RuntimePlanner(), coordinator_host="hub")
        with pytest.raises(DeploymentError, match="kind mismatch"):
            rig.run(until=dep.deploy(asm))

    def test_component_installed_nowhere_rejected(self, rig):
        asm = AssemblyDescriptor(
            name="bad", instances=[AssemblyInstance("x", "Ghost")])
        dep = Deployer(rig.nodes, RuntimePlanner(), coordinator_host="hub")
        with pytest.raises(DeploymentError):
            rig.run(until=dep.deploy(asm))

    def test_teardown_destroys_everything(self, rig):
        dep = Deployer(rig.nodes, RuntimePlanner(), coordinator_host="hub")
        app = rig.run(until=dep.deploy(assembly(4)))
        rig.run(until=app.teardown())
        assert app.torn_down
        assert all(len(n.container) == 0 for n in rig.nodes.values())
        assert app not in dep.applications

    def test_migrate_rewires_interface_connection(self, rig):
        asm = assembly(2, connections=[
            AssemblyConnection("i0", "peer", "i1", "value")])
        dep = Deployer(rig.nodes, RuntimePlanner(), coordinator_host="hub")
        app = rig.run(until=dep.deploy(asm))
        old_host = app.placement["i1"]
        target = next(h for h in rig.nodes
                      if h not in (old_host, app.placement["i0"]))
        rig.run(until=app.migrate("i1", target))
        assert app.placement["i1"] == target
        inst0 = rig.node(app.placement["i0"]).container.find_instance(
            app.instance_id("i0"))
        assert inst0.ports.receptacle("peer").peer.host_id == target

    def test_facet_ior_lookup(self, rig):
        dep = Deployer(rig.nodes, RuntimePlanner(), coordinator_host="hub")
        app = rig.run(until=dep.deploy(assembly(1)))
        ior = app.facet_ior("i0", "value")
        assert ior.repo_id == COUNTER_IFACE.repo_id
        with pytest.raises(DeploymentError):
            app.facet_ior("i0", "ghost-port")


class TestLoadBalancer:
    def test_migrates_off_hot_host(self):
        r = SimRig(star(2, hub_profile=DESKTOP, leaf_profile=DESKTOP))
        r.node("hub").install_package(counter_package(cpu_units=120.0))
        # Static planner piles instances without regard to load
        dep = Deployer(r.nodes, StaticPlanner(), coordinator_host="hub")
        app = r.run(until=dep.deploy(assembly(3)))
        views0 = r.run(until=dep.gather_views())
        imbalance0 = load_imbalance(views0)
        balancer = LoadBalancer(dep, threshold=0.2, interval=5.0)
        action = r.run(until=balancer.run_once())
        if action is not None:
            views1 = r.run(until=dep.gather_views())
            assert load_imbalance(views1) < imbalance0
            assert balancer.actions[0].source != balancer.actions[0].target

    def test_no_action_when_balanced(self):
        r = SimRig(star(2))
        r.node("hub").install_package(counter_package(cpu_units=10.0))
        dep = Deployer(r.nodes, RuntimePlanner(), coordinator_host="hub")
        r.run(until=dep.deploy(assembly(2)))
        balancer = LoadBalancer(dep, threshold=0.5)
        assert r.run(until=balancer.run_once()) is None

    def test_continuous_loop_converges(self):
        r = SimRig(star(3))
        r.node("hub").install_package(counter_package(cpu_units=100.0))
        dep = Deployer(r.nodes, StaticPlanner(), coordinator_host="hub")
        r.run(until=dep.deploy(assembly(4)))
        balancer = LoadBalancer(dep, threshold=0.2, interval=2.0)
        balancer.start()
        r.run(until=r.env.now + 60.0)
        balancer.stop()
        views = r.run(until=dep.gather_views())
        assert load_imbalance(views) <= 0.3

"""Tests for the ApplicationSupervisor self-healing loop."""

import pytest

from repro.container.replication import ReplicaManager
from repro.deployment import (
    ApplicationSupervisor,
    Deployer,
    LoadBalancer,
    RuntimePlanner,
)
from repro.deployment.application import Application
from repro.deployment.planner import PlannerBase
from repro.obs import RECOVERY_LATENCY_HIST
from repro.orb.exceptions import TRANSIENT
from repro.registry.groups import DistributedRegistry, RegistryConfig
from repro.sim.topology import DESKTOP, SERVER, star
from repro.testing import SimRig, counter_package
from repro.xmlmeta.descriptors import (
    AssemblyConnection,
    AssemblyDescriptor,
    AssemblyInstance,
)


def assembly(n, connections=()):
    return AssemblyDescriptor(
        name="app",
        instances=[AssemblyInstance(f"i{k}", "Counter") for k in range(n)],
        connections=list(connections))


class PinPlanner(PlannerBase):
    """Deterministic initial placement for crash scenarios."""

    def __init__(self, pins):
        self.pins = dict(pins)

    def plan(self, assembly, views, qos_of):
        return {i.name: self.pins[i.name] for i in assembly.instances}


@pytest.fixture
def rig():
    r = SimRig(star(3, hub_profile=SERVER))
    r.node("hub").install_package(counter_package(cpu_units=50.0))
    return r


class TestOrphanSweep:
    def test_teardown_orphans_recorded_and_swept_on_restart(self, rig):
        dep = Deployer(rig.nodes, RuntimePlanner(), coordinator_host="hub")
        app = rig.run(until=dep.deploy(assembly(4)))
        victim = sorted(h for h in app.placement.values() if h != "hub")[0]
        victim_ids = {app.instance_id(n) for n, h in app.placement.items()
                      if h == victim}
        rig.topology.set_host_state(victim, alive=False)
        rig.run(until=app.teardown())
        assert app.torn_down
        # pre-fix, teardown silently forgot these: the instances (and
        # their resource reservations) leaked forever on restart
        assert set(dep.orphans) == {(victim, i) for i in victim_ids}
        assert len(rig.node(victim).container) == len(victim_ids)

        sup = ApplicationSupervisor(dep, interval=1000.0, checkpoint=False)
        rig.topology.set_host_state(victim, alive=True)
        rig.run(until=sup.run_once())
        assert dep.orphans == []
        assert len(rig.node(victim).container) == 0
        assert rig.node(victim).resources.cpu_committed == 0.0
        assert rig.metrics.get("supervisor.orphans_swept") == len(victim_ids)
        sup.stop()

    def test_sweep_waits_for_host_to_return(self, rig):
        dep = Deployer(rig.nodes, RuntimePlanner(), coordinator_host="hub")
        app = rig.run(until=dep.deploy(assembly(3)))
        victim = sorted(h for h in app.placement.values() if h != "hub")[0]
        rig.topology.set_host_state(victim, alive=False)
        rig.run(until=app.teardown())
        n_orphans = len(dep.orphans)
        assert n_orphans >= 1
        sup = ApplicationSupervisor(dep, interval=1000.0, checkpoint=False)
        rig.run(until=sup.run_once())       # host still down: nothing swept
        assert len(dep.orphans) == n_orphans
        sup.stop()


class TestStrandedRecovery:
    def deploy(self, rig, dep):
        asm = assembly(2, connections=[
            AssemblyConnection("i0", "peer", "i1", "value")])
        return rig.run(until=dep.deploy(asm))

    def test_replanned_with_checkpointed_state_and_rewired(self, rig):
        dep = Deployer(rig.nodes, PinPlanner({"i0": "hub", "i1": "h0"}),
                       coordinator_host="hub")
        app = self.deploy(rig, dep)
        dep.planner = RuntimePlanner()      # recovery replans by load
        sup = ApplicationSupervisor(dep, interval=2.0)
        rig.node("h0").container.find_instance(
            app.instance_id("i1")).executor.count = 7
        rig.run(until=rig.env.now + 3.0)    # one checkpoint pass
        assert sup.checkpoints[app.instance_id("i1")]["count"] == 7

        rig.topology.set_host_state("h0", alive=False)
        rig.run(until=rig.env.now + 6.0)
        new_host = app.placement["i1"]
        assert new_host != "h0"
        assert rig.topology.host(new_host).alive
        moved = rig.node(new_host).container.find_instance(
            app.instance_id("i1"))
        assert moved.executor.count == 7    # checkpoint restored
        # i0's receptacle was re-aimed at the new incarnation
        inst0 = rig.node("hub").container.find_instance(
            app.instance_id("i0"))
        assert inst0.ports.receptacle("peer").peer.host_id == new_host
        stub = inst0.executor.context.connection("peer")
        assert rig.node("hub").orb.sync(stub.increment(1)) == 8
        assert rig.metrics.get("supervisor.recoveries") == 1
        assert sup.recoveries and sup.recoveries[0].kind == "replan"
        # the stale incarnation is queued for destruction on h0's return
        assert ("h0", app.instance_id("i1")) in dep.orphans
        rig.topology.set_host_state("h0", alive=True)
        rig.run(until=rig.env.now + 4.0)
        assert dep.orphans == []
        assert len(rig.node("h0").container) == 0
        sup.stop()

    def test_recovery_emits_span_and_latency_histogram(self, rig):
        obs = rig.observe()
        dep = Deployer(rig.nodes, PinPlanner({"i0": "hub", "i1": "h0"}),
                       coordinator_host="hub")
        app = self.deploy(rig, dep)
        dep.planner = RuntimePlanner()
        sup = ApplicationSupervisor(dep, interval=2.0, checkpoint=False)
        rig.topology.set_host_state("h0", alive=False)
        rig.run(until=rig.env.now + 6.0)
        spans = [s for s in obs.tracer.spans
                 if s.name == "supervisor.recover"]
        assert spans and spans[0].status == "ok"
        assert spans[0].attrs["instance"] == "i1"
        hist = rig.metrics.find_histogram(RECOVERY_LATENCY_HIST)
        assert hist is not None and hist.count == 1
        assert app.placement["i1"] != "h0"
        sup.stop()


class TestGroupPromotion:
    def test_supervisor_promotes_and_fences_watched_group(self, rig):
        dep = Deployer(rig.nodes, RuntimePlanner(), coordinator_host="hub")
        manager = ReplicaManager(rig.node("hub"))
        group = rig.run(until=manager.create_group(
            "Counter", ["h0", "h1", "h2"]))
        sup = ApplicationSupervisor(dep, interval=2.0, checkpoint=False)
        sup.watch_group(group, manager)

        def exec_of(member):
            return rig.node(member.host).container.find_instance(
                member.instance_id).executor

        exec_of(group.members[0]).count = 5
        rig.run(until=manager.sync(group))
        rig.topology.set_host_state("h0", alive=False)
        rig.run(until=rig.env.now + 5.0)
        assert group.primary.host == "h1"
        assert group.epoch == 1
        assert rig.metrics.get("supervisor.promotions") == 1
        assert any(r.kind == "promote" for r in sup.recoveries)

        exec_of(group.members[1]).count = 77
        rig.topology.set_host_state("h0", alive=True)
        rig.run(until=manager.sync(group))
        # the restarted ex-primary was fenced and resynced, not obeyed
        assert group.primary.host == "h1"
        assert exec_of(group.members[0]).count == 77
        assert exec_of(group.members[2]).count == 77
        sup.stop()


class TestGracefulDegradation:
    def test_no_capacity_queues_recovery_with_backoff(self):
        r = SimRig(star(2, hub_profile=DESKTOP, leaf_profile=SERVER))
        r.node("hub").install_package(counter_package(cpu_units=500.0))
        dep = Deployer(r.nodes, RuntimePlanner(), coordinator_host="hub")
        app = r.run(until=dep.deploy(assembly(1)))
        first = app.placement["i0"]
        assert first != "hub"               # 500 units never fit the hub
        other = "h1" if first == "h0" else "h0"
        sup = ApplicationSupervisor(dep, interval=2.0, checkpoint=False)
        r.topology.set_host_state(first, alive=False)
        r.topology.set_host_state(other, alive=False)
        r.run(until=r.env.now + 10.0)
        # nowhere to go: the recovery is queued and retried, not dropped
        assert r.metrics.get("supervisor.stranded") == 1
        assert r.metrics.get("supervisor.recovery.deferred") >= 2
        assert r.metrics.get("supervisor.recoveries") == 0
        assert app.placement["i0"] == first

        r.topology.set_host_state(other, alive=True)
        r.run(until=r.env.now + 20.0)       # backoff expires, then heals
        assert app.placement["i0"] == other
        assert r.metrics.get("supervisor.recoveries") == 1
        assert sup.recoveries[0].attempts >= 2
        sup.stop()


class TestRegistryLiveness:
    def test_detection_waits_for_soft_state_timeout(self):
        r = SimRig(star(3, hub_profile=SERVER))
        r.node("hub").install_package(counter_package(cpu_units=50.0))
        dr = DistributedRegistry(r.nodes, RegistryConfig(update_interval=1.0))
        dr.deploy({"g0": list(r.topology.host_ids())})
        r.run(until=dr.settle_time())
        dep = Deployer(r.nodes, PinPlanner({"i0": "hub", "i1": "h0"}),
                       coordinator_host="hub")
        app = r.run(until=dep.deploy(assembly(
            2, connections=[AssemblyConnection("i0", "peer", "i1", "value")])))
        dep.planner = RuntimePlanner()
        sup = ApplicationSupervisor(dep, interval=0.5, checkpoint=False,
                                    registry=dr)
        t0 = r.env.now
        r.topology.set_host_state("h0", alive=False)
        r.run(until=t0 + 1.4)
        # the MRM has not missed enough reports yet: still believed alive
        assert r.metrics.get("supervisor.stranded") == 0
        assert app.placement["i1"] == "h0"
        r.run(until=t0 + 12.0)
        # soft-state timeout expired -> stranded -> recovered
        assert r.metrics.get("supervisor.stranded") == 1
        assert r.metrics.get("supervisor.recoveries") == 1
        assert app.placement["i1"] != "h0"
        sup.stop()


class TestBalancerSurvival:
    def setup_hot(self):
        r = SimRig(star(2, hub_profile=DESKTOP, leaf_profile=DESKTOP))
        r.node("hub").install_package(counter_package(cpu_units=120.0))
        # pile two instances on h0 so a balancing pass always triggers
        dep = Deployer(r.nodes,
                       PinPlanner({"i0": "h0", "i1": "h0", "i2": "hub"}),
                       coordinator_host="hub")
        r.run(until=dep.deploy(assembly(3)))
        return r, dep

    def test_run_once_survives_crash_mid_migration(self, monkeypatch):
        r, dep = self.setup_hot()

        def crashing_migrate(self, instance_name, target_host):
            def boom():
                raise TRANSIENT("host crashed mid-migration")
                yield    # pragma: no cover
            return dep.env.process(boom())

        monkeypatch.setattr(Application, "migrate", crashing_migrate)
        balancer = LoadBalancer(dep, threshold=0.2, interval=5.0)
        # pre-fix this raised TRANSIENT out of the balancer pass
        assert r.run(until=balancer.run_once()) is None
        assert r.metrics.get("balance.failures") == 1

    def test_loop_stays_alive_after_crash_mid_migration(self, monkeypatch):
        r, dep = self.setup_hot()

        def crashing_migrate(self, instance_name, target_host):
            def boom():
                raise TRANSIENT("host crashed mid-migration")
                yield    # pragma: no cover
            return dep.env.process(boom())

        monkeypatch.setattr(Application, "migrate", crashing_migrate)
        balancer = LoadBalancer(dep, threshold=0.2, interval=4.0)
        balancer.start()
        r.run(until=r.env.now + 13.0)       # pre-fix the loop died here
        assert balancer._proc.is_alive
        assert r.metrics.get("balance.failures") >= 2
        balancer.stop()

"""Property-based tests: CDR marshalling over randomly generated types.

The core invariant of the whole wire layer: for every supported
TypeCode and every value conforming to it, decode(encode(v)) == v and
the decoder consumes exactly the bytes the encoder produced.
"""

from __future__ import annotations

import math

from hypothesis import given, settings, strategies as st

from repro.orb.cdr import (
    Any,
    CDRDecoder,
    CDREncoder,
    decode_typecode,
    decode_value,
    decode_value_interp,
    encode_typecode,
    encode_value,
    encode_value_interp,
)
from repro.orb.compiled import get_plan
from repro.orb.typecodes import (
    TCKind,
    TypeCode,
    alias_tc,
    array_tc,
    enum_tc,
    sequence_tc,
    struct_tc,
    tc_boolean,
    tc_char,
    tc_double,
    tc_long,
    tc_longlong,
    tc_octet,
    tc_octetseq,
    tc_short,
    tc_string,
    tc_ulong,
    tc_ulonglong,
    tc_ushort,
    union_tc,
)

# -- strategies ---------------------------------------------------------------

_names = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,8}", fullmatch=True)

_PRIMITIVES = [
    (tc_short, st.integers(-(2**15), 2**15 - 1)),
    (tc_ushort, st.integers(0, 2**16 - 1)),
    (tc_long, st.integers(-(2**31), 2**31 - 1)),
    (tc_ulong, st.integers(0, 2**32 - 1)),
    (tc_longlong, st.integers(-(2**63), 2**63 - 1)),
    (tc_ulonglong, st.integers(0, 2**64 - 1)),
    (tc_boolean, st.booleans()),
    (tc_octet, st.integers(0, 255)),
    (tc_char, st.characters(min_codepoint=0, max_codepoint=255)),
    (tc_double, st.floats(allow_nan=False, allow_infinity=False)),
    (tc_string, st.text(max_size=40)),
    (tc_octetseq, st.binary(max_size=40)),
]


def _primitive_pairs():
    return st.sampled_from(range(len(_PRIMITIVES))).map(
        lambda i: _PRIMITIVES[i])


@st.composite
def _typed_values(draw, depth: int = 2):
    """Draw a (TypeCode, conforming value) pair, recursively."""
    if depth == 0:
        tc, strat = draw(_primitive_pairs())
        return tc, draw(strat)
    choice = draw(st.integers(0, 7))
    if choice <= 1:  # bias toward primitives
        tc, strat = draw(_primitive_pairs())
        return tc, draw(strat)
    if choice == 2:  # sequence
        elem_tc, _ = draw(_typed_values(depth - 1))
        seq_tc = sequence_tc(elem_tc)
        if seq_tc.kind is TCKind.OCTETSEQ:
            # sequence<octet> collapses to the bytes fast path.
            return seq_tc, draw(st.binary(max_size=10))
        items = []
        for _ in range(draw(st.integers(0, 3))):
            _tc, val = draw(_typed_values_of(elem_tc, depth - 1))
            items.append(val)
        return seq_tc, items
    if choice == 3:  # struct
        n = draw(st.integers(1, 3))
        members, value = [], {}
        used = set()
        for i in range(n):
            name = f"m{i}"
            mtc, mval = draw(_typed_values(depth - 1))
            members.append((name, mtc))
            value[name] = mval
        return struct_tc(draw(_names), members), value
    if choice == 4:  # enum
        labels = draw(st.lists(_names, min_size=1, max_size=4,
                               unique=True))
        return (enum_tc(draw(_names), labels),
                draw(st.sampled_from(labels)))
    if choice == 5:  # array
        elem_tc, _ = draw(_typed_values(depth - 1))
        length = draw(st.integers(1, 3))
        items = [draw(_typed_values_of(elem_tc, depth - 1))[1]
                 for _ in range(length)]
        return array_tc(elem_tc, length), items
    if choice == 6:  # alias
        inner_tc, val = draw(_typed_values(depth - 1))
        return alias_tc(draw(_names), inner_tc), val
    # union over a long discriminator, with an optional default arm
    n_arms = draw(st.integers(1, 3))
    labels = draw(st.lists(st.integers(-100, 100), min_size=n_arms,
                           max_size=n_arms, unique=True))
    arms = []
    for i, label in enumerate(labels):
        arm_tc, _ = draw(_typed_values(depth - 1))
        arms.append((label, f"a{i}", arm_tc))
    default_index = -1
    if draw(st.booleans()):
        arm_tc, _ = draw(_typed_values(depth - 1))
        arms.append((None, "dflt", arm_tc))
        default_index = len(arms) - 1
    tc = union_tc(draw(_names), tc_long, arms, default_index=default_index)
    return tc, draw(_typed_values_of(tc, depth - 1))[1]


@st.composite
def _typed_values_of(draw, tc: TypeCode, depth: int):
    """Draw a value conforming to an existing TypeCode."""
    kind = tc.kind
    for ptc, strat in _PRIMITIVES:
        if ptc == tc:
            return tc, draw(strat)
    if kind is TCKind.SEQUENCE:
        n = draw(st.integers(0, 3))
        return tc, [draw(_typed_values_of(tc.content_type, depth - 1))[1]
                    for _ in range(n)]
    if kind is TCKind.ARRAY:
        return tc, [draw(_typed_values_of(tc.content_type, depth - 1))[1]
                    for _ in range(tc.length)]
    if kind is TCKind.STRUCT:
        return tc, {
            name: draw(_typed_values_of(mtc, depth - 1))[1]
            for name, mtc in tc.members
        }
    if kind is TCKind.ENUM:
        return tc, draw(st.sampled_from(list(tc.labels)))
    if kind is TCKind.ALIAS:
        return tc, draw(_typed_values_of(tc.content_type, depth))[1]
    if kind is TCKind.UNION:
        idx = draw(st.integers(0, len(tc.members) - 1))
        label, _name, arm_tc = tc.members[idx]
        if label is None:
            # Default arm: any discriminator that matches no label.
            # Labels are drawn from [-100, 100], so this is disjoint.
            disc = draw(st.integers(200, 300))
        else:
            disc = label
        return tc, (disc, draw(_typed_values_of(arm_tc, depth - 1))[1])
    raise AssertionError(f"unhandled kind {kind}")


def _normalize(tc: TypeCode, value):
    """Account for float32 rounding in comparisons (none used here)."""
    return value


# -- properties ------------------------------------------------------------------

@given(_typed_values())
@settings(max_examples=300, deadline=None)
def test_cdr_roundtrip_random_types(pair):
    tc, value = pair
    enc = CDREncoder()
    encode_value(enc, tc, value)
    dec = CDRDecoder(enc.getvalue())
    got = decode_value(dec, tc)
    assert got == value
    assert dec.at_end() or dec.remaining < 8  # only alignment padding left


@given(_typed_values(), _typed_values())
@settings(max_examples=100, deadline=None)
def test_cdr_concatenated_values_decode_in_order(pair_a, pair_b):
    (tc_a, val_a), (tc_b, val_b) = pair_a, pair_b
    enc = CDREncoder()
    encode_value(enc, tc_a, val_a)
    encode_value(enc, tc_b, val_b)
    dec = CDRDecoder(enc.getvalue())
    assert decode_value(dec, tc_a) == val_a
    assert decode_value(dec, tc_b) == val_b


@given(_typed_values())
@settings(max_examples=200, deadline=None)
def test_typecode_marshalling_roundtrip(pair):
    tc, _value = pair
    enc = CDREncoder()
    encode_typecode(enc, tc)
    got = decode_typecode(CDRDecoder(enc.getvalue()))
    assert got == tc


@given(_typed_values())
@settings(max_examples=150, deadline=None)
def test_any_roundtrip_random_types(pair):
    tc, value = pair
    from repro.orb.typecodes import tc_any
    enc = CDREncoder()
    encode_value(enc, tc_any, Any(tc, value))
    got = decode_value(CDRDecoder(enc.getvalue()), tc_any)
    assert got.typecode == tc
    assert got.value == value


@given(_typed_values(), st.integers(0, 7))
@settings(max_examples=300, deadline=None)
def test_compiled_matches_interpreter(pair, prefix):
    """The compiled codec plan must produce byte-identical output and
    identical decoded values to the reference interpreter — including
    when the value starts at every possible (mod 8) misalignment, which
    exercises the per-residue fused format variants."""
    tc, value = pair
    plan = get_plan(tc)
    e_ref, e_fast = CDREncoder(), CDREncoder()
    for i in range(prefix):
        e_ref.write_octet(i)
        e_fast.write_octet(i)
    encode_value_interp(e_ref, tc, value)
    plan.encode(e_fast, value)
    ref, fast = e_ref.getvalue(), e_fast.getvalue()
    assert ref == fast
    d_ref, d_fast = CDRDecoder(ref), CDRDecoder(fast)
    for _ in range(prefix):
        d_ref.read_octet()
        d_fast.read_octet()
    v_ref = decode_value_interp(d_ref, tc)
    v_fast = plan.decode(d_fast)
    assert v_ref == v_fast == value
    assert d_ref._pos == d_fast._pos


@given(st.binary(max_size=200))
@settings(max_examples=200, deadline=None)
def test_decoder_never_crashes_on_garbage(data):
    """Garbage input must raise a CORBA exception, not segfault/hang."""
    from repro.orb.exceptions import SystemException
    from repro.orb.typecodes import struct_tc
    tc = struct_tc("S", [("a", tc_string), ("b", sequence_tc(tc_long))])
    try:
        decode_value(CDRDecoder(data), tc)
    except SystemException:
        pass  # expected for malformed input

"""Property-based tests: random IDL ASTs survive unparse -> parse."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.idl import compile_ast, parse
from repro.idl import idlast as ast
from repro.idl.unparse import unparse

_idents = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,6}", fullmatch=True).filter(
    lambda s: s not in {
        # keywords can't be identifiers
        "module", "interface", "struct", "enum", "union", "switch",
        "case", "default", "typedef", "exception", "const", "attribute",
        "readonly", "oneway", "in", "out", "inout", "raises", "sequence",
        "string", "void", "short", "long", "unsigned", "float", "double",
        "boolean", "char", "octet", "any", "Object", "TRUE", "FALSE",
    }
)

_primitive_names = st.sampled_from([
    "short", "long", "unsigned short", "unsigned long", "long long",
    "unsigned long long", "float", "double", "boolean", "char", "octet",
    "string", "any",
])


@st.composite
def _types(draw, depth=1):
    if depth == 0 or draw(st.integers(0, 2)) > 0:
        return ast.PrimitiveType(draw(_primitive_names))
    return ast.SequenceType(element=draw(_types(depth - 1)),
                            bound=draw(st.sampled_from([0, 0, 8])))


@st.composite
def _members(draw, names):
    return ast.Member(type=draw(_types()), name=draw(names))


@st.composite
def _structs(draw, used_names):
    name = draw(_idents.filter(lambda n: n not in used_names))
    used_names.add(name)
    member_names = draw(st.lists(_idents, min_size=1, max_size=4,
                                 unique=True))
    members = [ast.Member(type=draw(_types()), name=m)
               for m in member_names]
    return ast.StructDecl(name=name, members=members)


@st.composite
def _enums(draw, used_names):
    name = draw(_idents.filter(lambda n: n not in used_names))
    used_names.add(name)
    labels = draw(st.lists(_idents, min_size=1, max_size=4, unique=True))
    return ast.EnumDecl(name=name, labels=labels)


@st.composite
def _interfaces(draw, used_names):
    name = draw(_idents.filter(lambda n: n not in used_names))
    used_names.add(name)
    ops = []
    op_names = draw(st.lists(_idents, min_size=0, max_size=3,
                             unique=True))
    for op_name in op_names:
        n_params = draw(st.integers(0, 3))
        param_names = draw(st.lists(_idents, min_size=n_params,
                                    max_size=n_params, unique=True))
        params = [
            ast.ParamDecl(mode=draw(st.sampled_from(["in", "out",
                                                     "inout"])),
                          type=draw(_types()), name=p)
            for p in param_names
        ]
        oneway = (draw(st.booleans())
                  and all(p.mode == "in" for p in params))
        result = None if oneway else draw(
            st.one_of(st.none(), _types()))
        ops.append(ast.OperationDecl(name=op_name, result=result,
                                     params=params, oneway=oneway))
    attr_names = draw(st.lists(
        _idents.filter(lambda n: n not in set(op_names)),
        min_size=0, max_size=2, unique=True))
    attrs = [ast.AttributeDecl(name=a, type=draw(_types()),
                               readonly=draw(st.booleans()))
             for a in attr_names]
    return ast.InterfaceDecl(name=name, bases=[], body=ops + attrs)


@st.composite
def _specs(draw):
    used: set[str] = set()
    definitions = draw(st.lists(
        st.one_of(_structs(used), _enums(used), _interfaces(used)),
        min_size=1, max_size=5))
    prefix = draw(st.sampled_from(["", "omg.org", "acme"]))
    return ast.Specification(definitions=definitions, prefix=prefix)


@given(_specs())
@settings(max_examples=150, deadline=None)
def test_unparse_parse_roundtrip(spec):
    text = unparse(spec)
    reparsed = parse(text)
    assert reparsed.prefix == spec.prefix
    assert reparsed.definitions == spec.definitions


@given(_specs())
@settings(max_examples=60, deadline=None)
def test_unparsed_idl_compiles(spec):
    """Whatever the generator produces must also survive codegen."""
    from repro.orb.dii import InterfaceRepository
    module = compile_ast(parse(unparse(spec)),
                         ifr=InterfaceRepository())
    for node in spec.definitions:
        assert node.name in module


def test_unparse_known_sample_matches_parse():
    source = """#pragma prefix "corbalc"
module Demo {
  enum Color { red, green };
  struct P { double x; sequence<long> xs; };
  union V switch (Color) {
    case red:
      long i;
    default:
      string s;
  };
  interface I {
    readonly attribute string name;
    P get(in Color c, out long n) raises (Bad);
    oneway void poke(in string tag);
  };
  exception Bad { string why; };
  typedef long Grid[2][3];
  const double PI = 3.14;
};
"""
    spec = parse(source)
    again = parse(unparse(spec))
    assert again.definitions == spec.definitions
    assert again.prefix == spec.prefix

"""Property-based tests: random IDL ASTs survive unparse -> parse."""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.idl import compile_ast, parse
from repro.idl import idlast as ast
from repro.idl.unparse import unparse

_idents = st.from_regex(r"[A-Za-z][A-Za-z0-9_]{0,6}", fullmatch=True).filter(
    lambda s: s not in {
        # keywords can't be identifiers
        "module", "interface", "struct", "enum", "union", "switch",
        "case", "default", "typedef", "exception", "const", "attribute",
        "readonly", "oneway", "in", "out", "inout", "raises", "sequence",
        "string", "void", "short", "long", "unsigned", "float", "double",
        "boolean", "char", "octet", "any", "Object", "TRUE", "FALSE",
    }
)

_primitive_names = st.sampled_from([
    "short", "long", "unsigned short", "unsigned long", "long long",
    "unsigned long long", "float", "double", "boolean", "char", "octet",
    "string", "any",
])


@st.composite
def _types(draw, depth=1):
    if depth == 0 or draw(st.integers(0, 2)) > 0:
        return ast.PrimitiveType(draw(_primitive_names))
    return ast.SequenceType(element=draw(_types(depth - 1)),
                            bound=draw(st.sampled_from([0, 0, 8])))


@st.composite
def _members(draw, names):
    return ast.Member(type=draw(_types()), name=draw(names))


@st.composite
def _structs(draw, used_names):
    name = draw(_idents.filter(lambda n: n not in used_names))
    used_names.add(name)
    member_names = draw(st.lists(_idents, min_size=1, max_size=4,
                                 unique=True))
    members = [ast.Member(type=draw(_types()), name=m)
               for m in member_names]
    return ast.StructDecl(name=name, members=members)


@st.composite
def _enums(draw, used_names):
    name = draw(_idents.filter(lambda n: n not in used_names))
    used_names.add(name)
    labels = draw(st.lists(_idents, min_size=1, max_size=4, unique=True))
    return ast.EnumDecl(name=name, labels=labels)


@st.composite
def _exceptions(draw, used_names):
    name = draw(_idents.filter(lambda n: n not in used_names))
    used_names.add(name)
    member_names = draw(st.lists(_idents, min_size=1, max_size=3,
                                 unique=True))
    members = [ast.Member(type=draw(_types()), name=m)
               for m in member_names]
    return ast.ExceptionDecl(name=name, members=members)


@st.composite
def _typedefs(draw, used_names):
    name = draw(_idents.filter(lambda n: n not in used_names))
    used_names.add(name)
    base = draw(_types())
    if draw(st.booleans()):
        dims = tuple(draw(st.lists(st.integers(1, 4), min_size=1,
                                   max_size=2)))
        base = ast.ArrayOf(element=base, dims=dims)
    return ast.TypedefDecl(name=name, type=base)


@st.composite
def _consts(draw, used_names):
    name = draw(_idents.filter(lambda n: n not in used_names))
    used_names.add(name)
    ctype, value = draw(st.one_of(
        st.tuples(st.just(ast.PrimitiveType("long")),
                  st.integers(0, 10_000)),
        st.tuples(st.just(ast.PrimitiveType("boolean")), st.booleans()),
        st.tuples(st.just(ast.PrimitiveType("string")),
                  st.from_regex(r"[A-Za-z0-9 ]{0,12}", fullmatch=True)),
    ))
    return ast.ConstDecl(name=name, type=ctype, value=value)


@st.composite
def _unions(draw, used_names):
    """Unions over every legal discriminator family, including
    negative integer labels and an optional default arm."""
    name = draw(_idents.filter(lambda n: n not in used_names))
    used_names.add(name)
    family = draw(st.sampled_from(["int", "bool", "char"]))
    if family == "int":
        disc = ast.PrimitiveType(draw(st.sampled_from(["long", "short"])))
        labels = draw(st.lists(st.integers(-8, 8), min_size=1,
                               max_size=4, unique=True))
    elif family == "bool":
        disc = ast.PrimitiveType("boolean")
        labels = draw(st.lists(st.booleans(), min_size=1, max_size=2,
                               unique=True))
    else:
        disc = ast.PrimitiveType("char")
        labels = draw(st.lists(st.sampled_from(list("+-@#%")),
                               min_size=1, max_size=3, unique=True))
    arm_names = draw(st.lists(_idents, min_size=len(labels),
                              max_size=len(labels), unique=True))
    arms = [ast.UnionArm(labels=[label], type=draw(_types()), name=an)
            for label, an in zip(labels, arm_names)]
    if draw(st.booleans()):
        default_name = draw(_idents.filter(
            lambda n: n not in set(arm_names)))
        arms.append(ast.UnionArm(labels=[None], type=draw(_types()),
                                 name=default_name))
    return ast.UnionDecl(name=name, discriminator=disc, arms=arms)


@st.composite
def _interfaces(draw, used_names, base_pool=(), exception_pool=()):
    name = draw(_idents.filter(lambda n: n not in used_names))
    used_names.add(name)
    bases = [ast.NamedType((b,)) for b in draw(st.lists(
        st.sampled_from(sorted(base_pool)), max_size=2, unique=True))
    ] if base_pool else []
    ops = []
    op_names = draw(st.lists(_idents, min_size=0, max_size=3,
                             unique=True))
    for op_name in op_names:
        n_params = draw(st.integers(0, 3))
        param_names = draw(st.lists(_idents, min_size=n_params,
                                    max_size=n_params, unique=True))
        params = [
            ast.ParamDecl(mode=draw(st.sampled_from(["in", "out",
                                                     "inout"])),
                          type=draw(_types()), name=p)
            for p in param_names
        ]
        raises = [ast.NamedType((e,)) for e in draw(st.lists(
            st.sampled_from(sorted(exception_pool)), max_size=2,
            unique=True))] if exception_pool else []
        oneway = (draw(st.booleans()) and not raises
                  and all(p.mode == "in" for p in params))
        result = None if oneway else draw(
            st.one_of(st.none(), _types()))
        ops.append(ast.OperationDecl(name=op_name, result=result,
                                     params=params, raises=raises,
                                     oneway=oneway))
    attr_names = draw(st.lists(
        _idents.filter(lambda n: n not in set(op_names)),
        min_size=0, max_size=2, unique=True))
    attrs = [ast.AttributeDecl(name=a, type=draw(_types()),
                               readonly=draw(st.booleans()))
             for a in attr_names]
    return ast.InterfaceDecl(name=name, bases=bases, body=ops + attrs)


@st.composite
def _modules(draw, used_names):
    name = draw(_idents.filter(lambda n: n not in used_names))
    used_names.add(name)
    inner_used: set[str] = set()
    body = draw(st.lists(
        st.one_of(_structs(inner_used), _enums(inner_used),
                  _unions(inner_used), _typedefs(inner_used)),
        min_size=1, max_size=3))
    return ast.ModuleDecl(name=name, body=body)


@st.composite
def _specs(draw):
    used: set[str] = set()
    definitions = list(draw(st.lists(
        st.one_of(_structs(used), _enums(used), _unions(used),
                  _typedefs(used), _consts(used), _exceptions(used)),
        min_size=0, max_size=4)))
    exception_pool = [d.name for d in definitions
                      if isinstance(d, ast.ExceptionDecl)]
    iface_pool: list[str] = []
    for _ in range(draw(st.integers(0, 3))):
        iface = draw(_interfaces(used, base_pool=iface_pool,
                                 exception_pool=exception_pool))
        iface_pool.append(iface.name)
        definitions.append(iface)
    if draw(st.booleans()):
        definitions.append(draw(_modules(used)))
    if not definitions:
        definitions.append(draw(_structs(used)))
    prefix = draw(st.sampled_from(["", "omg.org", "acme"]))
    return ast.Specification(definitions=definitions, prefix=prefix)


@given(_specs())
@settings(max_examples=150, deadline=None)
def test_unparse_parse_roundtrip(spec):
    text = unparse(spec)
    reparsed = parse(text)
    assert reparsed.prefix == spec.prefix
    assert reparsed.definitions == spec.definitions


@given(_specs())
@settings(max_examples=60, deadline=None)
def test_unparsed_idl_compiles(spec):
    """Whatever the generator produces must also survive codegen."""
    from repro.orb.dii import InterfaceRepository
    module = compile_ast(parse(unparse(spec)),
                         ifr=InterfaceRepository())
    for node in spec.definitions:
        assert node.name in module


def test_negative_case_labels_roundtrip():
    """Regression: unparse renders ``case -1:`` which the parser used
    to reject (it only accepted bare integer tokens)."""
    spec = ast.Specification(definitions=[
        ast.UnionDecl(
            name="Signed",
            discriminator=ast.PrimitiveType("long"),
            arms=[
                ast.UnionArm(labels=[-1], type=ast.PrimitiveType("long"),
                             name="neg"),
                ast.UnionArm(labels=[0, 1], type=ast.PrimitiveType("short"),
                             name="small"),
            ])])
    again = parse(unparse(spec))
    assert again.definitions == spec.definitions
    assert again.definitions[0].arms[0].labels == [-1]


def test_unparse_known_sample_matches_parse():
    source = """#pragma prefix "corbalc"
module Demo {
  enum Color { red, green };
  struct P { double x; sequence<long> xs; };
  union V switch (Color) {
    case red:
      long i;
    default:
      string s;
  };
  interface I {
    readonly attribute string name;
    P get(in Color c, out long n) raises (Bad);
    oneway void poke(in string tag);
  };
  exception Bad { string why; };
  typedef long Grid[2][3];
  const double PI = 3.14;
};
"""
    spec = parse(source)
    again = parse(unparse(spec))
    assert again.definitions == spec.definitions
    assert again.prefix == spec.prefix

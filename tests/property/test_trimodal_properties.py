"""Tri-modal equivalence: interpreter vs compiled plan vs generated source.

The codec stack has three tiers — the reference TypeCode interpreter,
the closure-based compiled plan, and the exec-compiled generated
source (repro.orb.codegen).  Whatever tier serves a value, the bytes
on the wire and the values decoded back must be identical, at every
alignment residue.  These properties pin that three-way agreement on
randomly generated TypeCodes; when codegen declines a TypeCode the
test degrades to the two supported tiers (that decline is itself
asserted to be honest: `generate` returns None only for kinds the
design keeps on the plan/interpreter tiers).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.orb import codegen
from repro.orb.cdr import (
    CDRDecoder,
    CDREncoder,
    decode_value_interp,
    encode_value_interp,
)
from repro.orb.compiled import compile_plan
from repro.orb.typecodes import (
    sequence_tc,
    struct_tc,
    tc_boolean,
    tc_double,
    tc_long,
    tc_string,
)

from test_cdr_properties import _typed_values


def _encoders_for(tc):
    """(label, encode(enc, value), decode(dec)) for every available tier."""
    plan = compile_plan(tc)
    tiers = [
        ("interp", lambda enc, v: encode_value_interp(enc, tc, v),
         lambda dec: decode_value_interp(dec, tc)),
        ("plan", plan.encode, plan.decode),
    ]
    pair = codegen.generate(tc)
    if pair is not None:
        tiers.append(("codegen", pair[0], pair[1]))
    return tiers


@given(_typed_values(), st.integers(0, 7))
@settings(max_examples=300, deadline=None)
def test_trimodal_encode_bytes_identical(pair, prefix):
    """All tiers emit byte-identical encodings at every (mod 8) residue."""
    tc, value = pair
    outputs = {}
    for label, encode, _decode in _encoders_for(tc):
        enc = CDREncoder()
        for i in range(prefix):
            enc.write_octet(i)
        encode(enc, value)
        outputs[label] = enc.getvalue()
    reference = outputs.pop("interp")
    for label, data in outputs.items():
        assert data == reference, (
            f"{label} encoding differs from interpreter for {tc!r}")


@given(_typed_values(), st.integers(0, 7))
@settings(max_examples=300, deadline=None)
def test_trimodal_decode_values_and_positions_identical(pair, prefix):
    """All tiers decode the same value AND stop at the same offset."""
    tc, value = pair
    enc = CDREncoder()
    for i in range(prefix):
        enc.write_octet(i)
    encode_value_interp(enc, tc, value)
    wire = enc.getvalue()
    results = []
    for label, _encode, decode in _encoders_for(tc):
        dec = CDRDecoder(wire)
        for _ in range(prefix):
            dec.read_octet()
        results.append((label, decode(dec), dec._pos))
    _label0, value0, pos0 = results[0]
    assert value0 == value
    for label, got, pos in results[1:]:
        assert got == value0, f"{label} decoded a different value"
        assert pos == pos0, f"{label} stopped at {pos}, expected {pos0}"


@given(_typed_values(), _typed_values())
@settings(max_examples=100, deadline=None)
def test_trimodal_concatenated_pairs_decode_in_order(pair_a, pair_b):
    """Back-to-back values keep all tiers in step: each tier decodes
    value A then value B from one buffer, landing on the same offsets.
    This is the regression shape for encode-ordering bugs (a pending
    fixed-leaf run flushed after a later variable field)."""
    (tc_a, val_a), (tc_b, val_b) = pair_a, pair_b
    enc = CDREncoder()
    encode_value_interp(enc, tc_a, val_a)
    encode_value_interp(enc, tc_b, val_b)
    wire = enc.getvalue()
    for label, _encode, decode_a in _encoders_for(tc_a):
        for label_b, _encode_b, decode_b in _encoders_for(tc_b):
            dec = CDRDecoder(wire)
            assert decode_a(dec) == val_a, f"{label} broke on value A"
            assert decode_b(dec) == val_b, (
                f"{label}+{label_b} broke on value B")


@given(st.integers(0, 7), st.lists(st.text(max_size=12), max_size=4))
@settings(max_examples=150, deadline=None)
def test_trimodal_misaligned_nested_struct(prefix, names):
    """A struct embedding strings and doubles, decoded at every start
    residue — the shape where fused-run alignment bugs live."""
    tc = struct_tc("Deep", [
        ("flag", tc_boolean),
        ("names", sequence_tc(tc_string)),
        ("points", sequence_tc(struct_tc("P", [
            ("x", tc_double), ("y", tc_double)]))),
        ("id", tc_long),
    ])
    value = {"flag": True, "names": names,
             "points": [{"x": 0.5, "y": -1.25}], "id": 99}
    enc_ref = CDREncoder()
    for i in range(prefix):
        enc_ref.write_octet(i)
    encode_value_interp(enc_ref, tc, value)
    wire = enc_ref.getvalue()
    for label, encode, decode in _encoders_for(tc):
        enc = CDREncoder()
        for i in range(prefix):
            enc.write_octet(i)
        encode(enc, value)
        assert enc.getvalue() == wire, f"{label} bytes differ at +{prefix}"
        dec = CDRDecoder(wire)
        for _ in range(prefix):
            dec.read_octet()
        assert decode(dec) == value, f"{label} value differs at +{prefix}"


def test_codegen_declines_are_the_designed_kinds():
    """`generate` returning None must mean any/objref/etc, not a bug on
    an everyday aggregate."""
    from repro.orb.typecodes import tc_any, tc_objref
    assert codegen.generate(tc_any) is None
    assert codegen.generate(tc_objref) is None
    everyday = struct_tc("Everyday", [
        ("a", tc_long), ("b", tc_string),
        ("c", sequence_tc(tc_double)),
    ])
    assert codegen.generate(everyday) is not None

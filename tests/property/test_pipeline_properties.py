"""Pipelining framing properties: multi-request frames are transparent.

A coalesced MSG_MULTI transmission is pure framing — a length-prefixed
concatenation of the exact wire bytes the member requests would have
carried had they been sent singly.  These properties pin that
transparency on random frame sets: encode_multi → decode returns the
member byte strings unchanged, and decoding a member inside a multi
yields the same logical message as decoding it sent alone.
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.orb import giop
from repro.orb.exceptions import BAD_PARAM, MARSHAL

frame_bytes = st.binary(min_size=1, max_size=200)
frame_lists = st.lists(frame_bytes, min_size=1, max_size=24)


@settings(max_examples=150, deadline=None)
@given(frame_lists)
def test_roundtrip_is_byte_identical(frames):
    decoded = giop.decode_message(giop.encode_multi(frames))
    assert type(decoded) is giop.MultiMessage
    assert list(decoded.frames) == frames


@settings(max_examples=100, deadline=None)
@given(frame_lists)
def test_wire_length_is_header_plus_padded_frames(frames):
    wire = giop.encode_multi(frames)
    expect = giop._MULTI_HEAD.size
    for f in frames:
        expect += 4 + len(f) + (-len(f)) % 4
    assert len(wire) == expect


@settings(max_examples=100, deadline=None)
@given(st.lists(st.integers(min_value=0, max_value=2 ** 31 - 1),
                min_size=1, max_size=16),
       st.text(min_size=0, max_size=12))
def test_member_decodes_same_alone_or_pipelined(request_ids, operation):
    # Real request frames, not random bytes: each member of a multi
    # must decode to the same logical RequestMessage as when it is the
    # whole transmission.
    prefix = giop.encode_request_prefix("h0", "root", "obj-1",
                                        operation or "op")
    singles = [giop.encode_request(rid, rid % 2 == 0, prefix, b"\x00" * 4)
               for rid in request_ids]
    multi = giop.decode_message(giop.encode_multi(singles))
    assert len(multi.frames) == len(singles)
    for wire, frame in zip(singles, multi.frames):
        assert frame == wire
        assert giop.decode_message(frame) == giop.decode_message(wire)


@settings(max_examples=100, deadline=None)
@given(frame_lists, st.data())
def test_truncation_never_escapes_as_python_error(frames, data):
    wire = giop.encode_multi(frames)
    cut = data.draw(st.integers(min_value=0, max_value=len(wire) - 1))
    try:
        giop.decode_message(wire[:cut])
    except (MARSHAL, BAD_PARAM):
        pass        # defensive decode: SystemException, nothing rawer

"""Property-based tests on kernel, versions, IORs, ports, packaging."""

from __future__ import annotations

from hypothesis import assume, given, settings, strategies as st

from repro.components.ports import (
    EventSinkPort,
    EventSourcePort,
    PortSet,
    ReceptaclePort,
)
from repro.orb.ior import IOR
from repro.registry.prediction import EwmaSlope
from repro.sim.kernel import Environment
from repro.util.errors import ValidationError
from repro.xmlmeta.versions import Version, VersionRange

# -- kernel ---------------------------------------------------------------------

@given(st.lists(st.floats(min_value=0.0, max_value=1e6,
                          allow_nan=False), min_size=1, max_size=40))
@settings(max_examples=100, deadline=None)
def test_kernel_fires_timeouts_in_time_order(delays):
    env = Environment()
    fired = []
    for d in delays:
        env.timeout(d).callbacks.append(
            lambda _e, d=d: fired.append(env.now))
    env.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)
    assert env.now == max(delays)


@given(st.lists(st.tuples(st.floats(min_value=0, max_value=100,
                                    allow_nan=False),
                          st.integers(0, 4)),
                min_size=1, max_size=30))
@settings(max_examples=50, deadline=None)
def test_kernel_trace_deterministic(spec):
    def run():
        env = Environment()
        trace = []

        def proc(pid, delay, repeats):
            for _ in range(repeats + 1):
                yield env.timeout(delay)
                trace.append((round(env.now, 9), pid))
        for pid, (delay, repeats) in enumerate(spec):
            env.process(proc(pid, delay, repeats))
        env.run()
        return trace
    assert run() == run()


# -- versions ----------------------------------------------------------------------

_versions = st.builds(Version,
                      st.integers(0, 99), st.integers(0, 99),
                      st.integers(0, 99))


@given(_versions)
def test_version_str_parse_roundtrip(v):
    assert Version.parse(str(v)) == v


@given(_versions, _versions, _versions)
def test_version_ordering_transitive(a, b, c):
    if a <= b and b <= c:
        assert a <= c


@given(_versions, _versions)
def test_version_range_bounds_consistent(lo, hi):
    assume(lo < hi)
    rng = VersionRange(f">={lo}, <{hi}")
    assert rng.matches(lo)
    assert not rng.matches(hi)


@given(_versions)
def test_empty_range_matches_everything(v):
    assert VersionRange("").matches(v)


# -- IORs ----------------------------------------------------------------------------

_part = st.from_regex(r"[A-Za-z0-9._:-]{1,12}", fullmatch=True)


@given(_part, _part, _part, _part)
def test_ior_roundtrip(repo, host, adapter, key):
    assume("@" not in repo)
    ior = IOR(f"IDL:{repo}:1.0", host, adapter, key)
    assert IOR.from_string(ior.to_string()) == ior


# -- port sets ----------------------------------------------------------------------

@given(st.lists(st.tuples(st.sampled_from(["add_r", "add_src", "add_snk",
                                           "remove"]),
                          st.integers(0, 5)),
                max_size=40))
@settings(max_examples=100, deadline=None)
def test_portset_matches_dict_model(ops):
    ports = PortSet()
    model: dict[str, str] = {}
    for action, n in ops:
        name = f"p{n}"
        if action == "remove":
            if name in model:
                ports.remove(name)
                del model[name]
        else:
            if name in model:
                continue
            if action == "add_r":
                ports.add(ReceptaclePort(name, "IDL:t/X:1.0"))
                model[name] = "receptacle"
            elif action == "add_src":
                ports.add(EventSourcePort(name, "k"))
                model[name] = "event-source"
            else:
                ports.add(EventSinkPort(name, "k"))
                model[name] = "event-sink"
    assert sorted(ports.names()) == sorted(model)
    for name, kind in model.items():
        assert ports.get(name).kind == kind


# -- packaging -------------------------------------------------------------------------

@given(st.integers(0, 5000), st.floats(0.0, 1.0))
@settings(max_examples=50, deadline=None)
def test_synthetic_payload_size_exact(size, compressibility):
    from repro.packaging.binaries import synthetic_payload
    data = synthetic_payload(size, seed=1, compressibility=compressibility)
    assert len(data) == size


@given(st.binary(min_size=1, max_size=2000))
@settings(max_examples=50, deadline=None)
def test_package_member_bytes_roundtrip(payload):
    from repro.packaging.package import ComponentPackage, PackageBuilder
    from repro.xmlmeta.descriptors import (
        ComponentTypeDescriptor, ImplementationDescriptor,
        SoftwareDescriptor)
    from repro.xmlmeta.versions import Version as V
    soft = SoftwareDescriptor(
        name="P", version=V(1, 0),
        implementations=[ImplementationDescriptor(
            "*", "*", "*", "e", "bin/any/x")])
    comp = ComponentTypeDescriptor(name="P")
    builder = PackageBuilder(soft, comp)
    builder.add_binary("bin/any/x", payload)
    pkg = ComponentPackage(builder.build())
    assert pkg.member("bin/any/x") == payload
    assert pkg.binary_payload("a", "b", "c") == payload


# -- prediction ----------------------------------------------------------------------

@given(st.lists(st.floats(-1000, 1000, allow_nan=False),
                min_size=2, max_size=50),
       st.floats(0.01, 1.0))
@settings(max_examples=100, deadline=None)
def test_ewma_slope_bounded_by_observed_extremes(values, alpha):
    model = EwmaSlope(alpha=alpha)
    slopes = [model.observe(float(t), v) for t, v in enumerate(values)]
    diffs = [b - a for a, b in zip(values, values[1:])]
    lo, hi = min(diffs + [0.0]), max(diffs + [0.0])
    # EWMA of the instantaneous slopes can never exit their range.
    for s in slopes:
        assert lo - 1e-9 <= s <= hi + 1e-9


# -- monte carlo split -----------------------------------------------------------------

@given(st.integers(0, 10**6), st.integers(1, 64))
@settings(max_examples=100, deadline=None)
def test_montecarlo_split_preserves_sample_budget(total, ways):
    from repro.grid.worker import MonteCarloPiExecutor
    ex = MonteCarloPiExecutor()
    ex.total_samples = total
    shards = ex.split(ways)
    assert len(shards) == ways
    assert sum(s["samples"] for s in shards) == total
    sizes = [s["samples"] for s in shards]
    assert max(sizes) - min(sizes) <= 1  # fair split

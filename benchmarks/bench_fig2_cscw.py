"""E2 — Figure 2: the CSCW application model, measured.

A stroke travels: user -> Surface facet -> stroke event -> GUI part ->
Display.  We measure stroke-to-paint latency and wire bytes per stroke
for the two placements Fig. 2 allows: GUI part co-located with the
user's display vs. GUI part remote (thin-client mode).
"""

from _harness import report, stash
from repro.cscw import (
    SURFACE_IFACE,
    display_package,
    gui_part_package,
    whiteboard_package,
)
from repro.sim.topology import DESKTOP, LAN, SERVER, Topology
from repro.testing import SimRig


def build(gui_host: str):
    topo = Topology()
    topo.add_host("server", SERVER)
    topo.add_host("user", DESKTOP)
    topo.add_link("server", "user", LAN)
    rig = SimRig(topo)
    server, user = rig.node("server"), rig.node("user")
    server.install_package(whiteboard_package())
    server.install_package(gui_part_package())
    user.install_package(display_package())

    board = server.container.create_instance("Whiteboard")
    display = user.container.create_instance("Display")
    owner = rig.node(gui_host)
    if gui_host != "server":
        user.install_package(gui_part_package())
    gui = owner.container.create_instance("BoardGui")
    owner.container.connect(gui.instance_id, "display",
                            display.ports.facet("graphics").ior)
    # subscribe the GUI to the board's stroke channel
    from repro.node.events import EventBroker
    owner.container.subscribe_sink(
        gui, "board", EventBroker.channel_ior_on("server", "cscw.stroke"))
    surface = user.orb.stub(board.ports.facet("surface").ior,
                            SURFACE_IFACE)
    return rig, surface, display


def run_strokes(gui_host: str, n: int = 20):
    rig, surface, display = build(gui_host)
    bytes0 = rig.metrics.get("net.bytes")
    t0 = rig.env.now
    for i in range(n):
        rig.node("user").orb.sync(surface.add_stroke({
            "author": "user", "x0": float(i), "y0": 0.0,
            "x1": float(i), "y1": 1.0, "color": "black"}))
    # wait for all paints to land
    deadline = rig.env.now + 5.0
    while display.executor.drawn < n and rig.env.now < deadline:
        rig.run(until=rig.env.now + 0.05)
    latency = (rig.env.now - t0) / n
    bytes_per_stroke = (rig.metrics.get("net.bytes") - bytes0) / n
    return display.executor.drawn, latency, bytes_per_stroke


def test_fig2_stroke_pipeline(benchmark, capsys):
    rows = []
    for gui_host, label in (("user", "GUI local to display"),
                            ("server", "GUI remote (thin client)")):
        drawn, latency, bps = run_strokes(gui_host)
        rows.append([label, drawn, f"{latency*1000:.2f} ms",
                     f"{bps:.0f} B"])

    benchmark.pedantic(lambda: run_strokes("user", n=5),
                       rounds=3, iterations=1)
    report(capsys, "E2: Fig.2 stroke -> event -> GUI -> display",
           ["placement", "strokes painted", "latency/stroke",
            "wire B/stroke"], rows,
           note="both placements paint everything; thin client pays "
                "extra wire hops, which is fine for a PDA (sec. 3.1)")
    stash(benchmark, rows=len(rows))

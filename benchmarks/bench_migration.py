"""C6 — migrating the bandwidth-heavy decoder (§2.4.3, §3.1).

"It allows bandwidth-limited multimedia components (such as video
stream decoding) to be migrated and installed locally to minimize
network load."  And: "a component decoding a MPEG video stream would
work much faster if it is installed locally."

We run the stream pipeline with the decoder at the camera host vs.
migrated next to the viewer's display, over a WAN and over a LAN — the
LAN row shows the crossover: when bandwidth is plentiful, placement
barely matters.
"""

from _harness import report, stash
from repro.container.migration import MigrationEngine
from repro.cscw import (
    display_package,
    stream_source_package,
    video_decoder_package,
)
from repro.cscw.video import FRAME_RATE
from repro.sim.topology import DESKTOP, LAN, SERVER, WAN, Topology
from repro.testing import SimRig

WINDOW = 12.0


def run(link_class, migrate: bool):
    topo = Topology()
    topo.add_host("camhost", SERVER)
    topo.add_host("viewer", DESKTOP)
    topo.add_link("camhost", "viewer", link_class)
    rig = SimRig(topo)
    cam, viewer = rig.node("camhost"), rig.node("viewer")
    cam.install_package(stream_source_package())
    cam.install_package(video_decoder_package())
    viewer.install_package(display_package())
    source = cam.container.create_instance("StreamSource")
    display = viewer.container.create_instance("Display")
    decoder = cam.container.create_instance("VideoDecoder")
    cam.container.connect(decoder.instance_id, "source",
                          source.ports.facet("stream").ior)
    cam.container.connect(decoder.instance_id, "display",
                          display.ports.facet("graphics").ior)
    if migrate:
        rig.run(until=MigrationEngine(cam).migrate(
            decoder.instance_id, "viewer"))
    t0, f0 = rig.env.now, display.executor.drawn
    b0 = rig.metrics.get("net.bytes")
    rig.run(until=t0 + WINDOW)
    fps = (display.executor.drawn - f0) / WINDOW
    rate = (rig.metrics.get("net.bytes") - b0) / WINDOW
    return fps, rate


def test_decoder_placement(benchmark, capsys):
    rows = []
    results = {}
    for link, link_name in ((WAN, "WAN 10 Mb/s"), (LAN, "LAN 100 Mb/s")):
        for migrate, place in ((False, "at camera (remote)"),
                               (True, "migrated to viewer")):
            fps, rate = run(link, migrate)
            results[(link_name, migrate)] = (fps, rate)
            rows.append([link_name, place, f"{fps:.1f} / {FRAME_RATE:.0f}",
                         f"{rate/1e3:.0f} kB/s"])
    benchmark.pedantic(lambda: run(WAN, True), rounds=1, iterations=1)
    report(capsys, "C6: video decoder placement (12s of streaming)",
           ["link", "decoder placement", "fps / target",
            "link traffic"], rows,
           note="over the WAN the migrated decoder restores full frame "
                "rate at ~1/8 the bytes; over a LAN placement is moot "
                "(the crossover)")
    wan_remote = results[("WAN 10 Mb/s", False)]
    wan_local = results[("WAN 10 Mb/s", True)]
    lan_remote = results[("LAN 100 Mb/s", False)]
    assert wan_local[0] > 1.8 * wan_remote[0]     # much faster
    assert wan_local[1] < wan_remote[1] / 3       # much cheaper
    assert lan_remote[0] >= 0.9 * FRAME_RATE      # LAN: remote is fine
    stash(benchmark, wan_remote_fps=wan_remote[0],
          wan_local_fps=wan_local[0])


def test_migration_cost_itself(benchmark, capsys):
    """What does one migration cost (downtime + bytes moved)?"""
    def once(preinstalled: bool):
        topo = Topology()
        topo.add_host("a", SERVER)
        topo.add_host("b", DESKTOP)
        topo.add_link("a", "b", WAN)
        rig = SimRig(topo)
        rig.node("a").install_package(video_decoder_package())
        if preinstalled:
            rig.node("b").install_package(video_decoder_package())
        inst = rig.node("a").container.create_instance("VideoDecoder")
        t0 = rig.env.now
        b0 = rig.metrics.get("net.bytes")
        rig.run(until=MigrationEngine(rig.node("a")).migrate(
            inst.instance_id, "b"))
        return rig.env.now - t0, rig.metrics.get("net.bytes") - b0

    cold_time, cold_bytes = once(False)
    warm_time, warm_bytes = once(True)
    benchmark.pedantic(lambda: once(True), rounds=3, iterations=1)
    report(capsys, "C6b: cost of one migration over a WAN",
           ["target state", "downtime (sim)", "bytes moved"], [
               ["binary not installed (package ships)",
                f"{cold_time*1000:.0f} ms", int(cold_bytes)],
               ["binary already installed (state only)",
                f"{warm_time*1000:.0f} ms", int(warm_bytes)],
           ])
    assert warm_bytes < cold_bytes / 3
    stash(benchmark, cold_ms=cold_time * 1000, warm_ms=warm_time * 1000)

"""C17 — batched event fan-out vs point-to-point oneways.

One publisher fans N_EVENTS events out to N_SINKS remote sinks.  The
point-to-point arm does what the pre-bus reporters did: one ``push``
oneway per event per sink — every logical event pays a full message
(header, link charge, kernel events) N_SINKS times.  The bus arm
publishes each event once to a local :class:`EventBus`; a single
batched subscription hands flush windows to a
:class:`FanoutForwarder`, which marshals the ``push_batch`` arguments
once and frames them per sink, and the publisher ORB's GIOP
pipelining coalesces consecutive flushes per sink underneath.  Same
logical fan-out, a fraction of the wire and simulator work.

Measured per arm: wall-clock fan-out throughput (delivered events per
real second spent simulating), wire messages and bytes.

Run ``python benchmarks/bench_eventbus.py --selftest`` for the
assertion-only mode wired into ``make check``.
"""

import time

from _harness import report, stash
from repro.events.bus import EventBus
from repro.events.remote import (
    EVENT_SINK_IFACE,
    EventSinkServant,
    FanoutForwarder,
    sink_batch_args,
)
from repro.orb.core import ORB
from repro.sim.kernel import Environment
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.topology import star

N_SINKS = 8
N_EVENTS = 2048
BURST = 64                   # events published per sim tick
TICK = 0.01
MAX_BATCH = 64               # one full size-flush per tick
PIPELINE_WINDOW = 2 * TICK   # consecutive flushes per sink coalesce
HORIZON = 10.0

TOPIC = "bench.fanout"
PUSH = EVENT_SINK_IFACE.operations["push"]
PUSH_BATCH = EVENT_SINK_IFACE.operations["push_batch"]


def run(batched: bool, seed: int = 0) -> dict:
    env = Environment()
    net = Network(env, star(N_SINKS), rngs=RngRegistry(seed))
    publisher = ORB(env, net, "hub",
                    pipeline_window=PIPELINE_WINDOW if batched else None)
    sinks = []
    iors = []
    for k in range(N_SINKS):
        orb = ORB(env, net, f"h{k}")
        servant = EventSinkServant()
        iors.append(orb.adapter("sink").activate(servant))
        sinks.append(servant)

    bus = None
    if batched:
        bus = EventBus(env, net.metrics)
        forwarder = FanoutForwarder(publisher, iors, PUSH_BATCH,
                                    to_args=sink_batch_args)
        bus.batch_subscribe(TOPIC, forwarder.deliver,
                            max_batch=MAX_BATCH, max_age=2 * TICK)

    def publish():
        sent = 0
        while sent < N_EVENTS:
            for _ in range(min(BURST, N_EVENTS - sent)):
                payload = f"e{sent}"
                if batched:
                    bus.publish(TOPIC, payload)
                else:
                    for ior in iors:
                        publisher.send_oneway(ior, PUSH, (TOPIC, payload))
                sent += 1
            yield env.timeout(TICK)
        if batched:
            bus.flush()
            publisher.flush_pipelines()

    env.process(publish())
    wall_start = time.perf_counter()
    env.run(until=HORIZON)
    wall = time.perf_counter() - wall_start

    delivered = sum(len(s.received) for s in sinks)
    return {
        "wall": wall,
        "delivered": delivered,
        "throughput": delivered / wall,
        "messages": net.metrics.get("net.messages"),
        "bytes": net.metrics.get("net.bytes"),
        "logical": net.metrics.get("net.logical"),
        "batches": net.metrics.get("bus.remote.batches"),
        "in_order": all(
            [d for _t, d in s.received] == [f"e{i}" for i in range(N_EVENTS)]
            for s in sinks),
    }


def _measure() -> tuple:
    """Warmed measurement pair: first touches of each arm pay one-off
    codec code generation and imports, which would otherwise dominate
    the (fast) bus arm's wall clock."""
    run(True)
    run(False)
    return run(True), run(False)


def _check(bus_arm: dict, p2p_arm: dict) -> None:
    total = N_SINKS * N_EVENTS
    for arm in (bus_arm, p2p_arm):
        assert arm["delivered"] == total, arm     # nothing lost
        assert arm["in_order"], arm               # nothing reordered
    # Batching collapses the wire: way fewer messages, fewer bytes.
    assert bus_arm["messages"] * 5 <= p2p_arm["messages"], (
        bus_arm["messages"], p2p_arm["messages"])
    assert bus_arm["bytes"] < p2p_arm["bytes"]
    # The headline claim: batched fan-out is at least 5x the
    # point-to-point throughput in real simulation work.
    assert bus_arm["throughput"] >= 5 * p2p_arm["throughput"], (
        bus_arm["throughput"], p2p_arm["throughput"])


def test_eventbus_fanout(benchmark, capsys):
    bus_arm, p2p_arm = _measure()
    benchmark.pedantic(lambda: run(True, seed=1), rounds=1, iterations=1)
    rows = [
        ["bus+batch+pipeline", f"{bus_arm['throughput']:,.0f}",
         bus_arm["messages"], f"{bus_arm['bytes']:,.0f}",
         bus_arm["delivered"]],
        ["p2p oneways", f"{p2p_arm['throughput']:,.0f}",
         p2p_arm["messages"], f"{p2p_arm['bytes']:,.0f}",
         p2p_arm["delivered"]],
    ]
    report(capsys,
           f"C17: {N_EVENTS} events x {N_SINKS} sinks fan-out",
           ["path", "events/s (wall)", "net msgs", "net bytes",
            "delivered"], rows,
           note="events/s = delivered events per real second of "
                "simulation; both arms deliver every event in order")
    _check(bus_arm, p2p_arm)
    stash(benchmark,
          throughput_bus=bus_arm["throughput"],
          throughput_p2p=p2p_arm["throughput"],
          speedup=bus_arm["throughput"] / p2p_arm["throughput"],
          messages_bus=bus_arm["messages"],
          messages_p2p=p2p_arm["messages"],
          bytes_bus=bus_arm["bytes"],
          bytes_p2p=p2p_arm["bytes"],
          batches=bus_arm["batches"])


def selftest() -> int:
    bus_arm, p2p_arm = _measure()
    _check(bus_arm, p2p_arm)
    print("bench_eventbus selftest ok: "
          f"{bus_arm['throughput']:,.0f} vs {p2p_arm['throughput']:,.0f} "
          f"events/s ({bus_arm['throughput'] / p2p_arm['throughput']:.1f}x), "
          f"{bus_arm['messages']:.0f} vs {p2p_arm['messages']:.0f} messages")
    return 0


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="event fan-out throughput benchmark")
    parser.add_argument("--selftest", action="store_true",
                        help="run the assertion-only gate (no tables)")
    args = parser.parse_args()
    if args.selftest:
        sys.exit(selftest())
    parser.error("run via pytest for the full report, or pass --selftest")

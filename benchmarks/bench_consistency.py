"""C4 — soft vs. strong network consistency (§2.4.3).

"This soft consistency protocol leads to lower bandwidth utilization
and better scalability."

We sweep the node count and measure the registry-maintenance bandwidth
of both protocols over a fixed window, with a steady drizzle of
component activity (each create/destroy is a change the strong protocol
must propagate synchronously).  Churn is then added to show soft state
absorbing node flaps gracefully (staleness bounded by the timeout).
"""

from _harness import report, stash
from repro.registry.groups import (
    DistributedRegistry,
    RegistryConfig,
    groups_by_size,
)
from repro.sim.faults import ChurnModel, FaultInjector
from repro.sim.topology import star
from repro.testing import SimRig, counter_package

WINDOW = 60.0
INTERVAL = 5.0


def run(n_hosts: int, mode: str, churn: bool = False, seed: int = 0):
    rig = SimRig(star(n_hosts), seed=seed)
    rig.observe()  # per-meter latency histograms + pending gauge
    hub = rig.node("hub")
    hub.install_package(counter_package())
    cfg = RegistryConfig(update_interval=INTERVAL, mode=mode)
    dr = DistributedRegistry(rig.nodes, cfg)
    dr.deploy(groups_by_size(rig.topology.host_ids(),
                             group_size=n_hosts + 1))
    if churn:
        injector = FaultInjector(rig.env, rig.topology)
        ChurnModel(rig.env, injector, rig.rngs,
                   [f"h{i}" for i in range(n_hosts)],
                   mean_uptime=30.0, mean_downtime=8.0,
                   protected=["hub"])

    # activity: the hub keeps creating/destroying instances
    def activity():
        while True:
            inst = hub.container.create_instance("Counter")
            yield rig.env.timeout(2.0)
            hub.container.destroy_instance(inst.instance_id)
            yield rig.env.timeout(2.0)
    rig.env.process(activity())

    rig.run(until=WINDOW)
    meter = "registry.strong" if mode == "strong" else "registry.soft"
    msgs = rig.metrics.get(f"{meter}.msgs")
    byts = rig.metrics.get(f"{meter}.bytes")

    # acked-update latency (strong only; soft reports are fire-and-forget)
    lat = rig.metrics.find_histogram(f"{meter}.latency")
    p50 = lat.percentile(50) if lat is not None and lat.count else None
    p99 = lat.percentile(99) if lat is not None and lat.count else None

    # staleness: fraction of MRM member entries referring to dead hosts
    mrm = dr.groups["g0"].agents[0]
    stale = sum(1 for host in mrm.members
                if not rig.topology.host(host).alive)
    return msgs, byts, len(mrm.members), stale, (p50, p99)


def test_soft_vs_strong_bandwidth(benchmark, capsys):
    rows = []
    ratios = {}
    for n in (8, 16, 32):
        soft_msgs, soft_bytes, _, _, _ = run(n, "soft")
        strong_msgs, strong_bytes, _, _, (p50, p99) = run(n, "strong")
        ratio = strong_bytes / soft_bytes
        ratios[n] = ratio
        rows.append([n,
                     int(soft_msgs), f"{soft_bytes/WINDOW:.0f}",
                     int(strong_msgs), f"{strong_bytes/WINDOW:.0f}",
                     f"{ratio:.1f}x",
                     f"{p50*1e3:.1f}/{p99*1e3:.1f}" if p50 else "-"])
    benchmark.pedantic(lambda: run(8, "soft"), rounds=1, iterations=1)
    report(capsys, "C4a: registry maintenance bandwidth over "
                   f"{WINDOW:.0f}s (update interval {INTERVAL:.0f}s)",
           ["hosts", "soft msgs", "soft B/s", "strong msgs",
            "strong B/s", "strong/soft", "ack ms p50/p99"], rows,
           note="strong = per-change acked updates + fast heartbeats; "
                "soft reports are fire-and-forget (no ack latency)")
    assert all(r > 2.0 for r in ratios.values())
    stash(benchmark, **{f"ratio_n{n}": r for n, r in ratios.items()})


def test_soft_state_under_churn(benchmark, capsys):
    msgs, byts, members, stale, _ = run(16, "soft", churn=True)
    msgs0, byts0, members0, stale0, _ = run(16, "soft", churn=False)
    benchmark.pedantic(lambda: run(8, "soft", churn=True),
                       rounds=1, iterations=1)
    report(capsys, "C4b: soft state with node churn "
                   "(30s mean up, 8s mean down)",
           ["scenario", "B/s", "live members tracked",
            "stale entries"], [
               ["no churn", f"{byts0/WINDOW:.0f}", members0, stale0],
               ["churn", f"{byts/WINDOW:.0f}", members, stale],
           ],
           note="stale entries are bounded by the 3x-interval timeout; "
                "reconnecting nodes re-register with their next report")
    assert stale <= 16  # never unbounded
    stash(benchmark, stale=stale, members=members)

"""C11 — seamless integration + automatic dependency management (§2 R5/R6).

"It must be possible to add new components into the system (without the
need of compiling) and make them instantly available to be used by any
application in any host" and "the network as a whole must be used as a
repository for resolving component requirements, fetching them from the
host they are installed or using them remotely."

Measured: (a) availability latency — install on node A at runtime, time
until node B's request succeeds; (b) transitive dependency-closure
fetch when a component is pulled to a new host.
"""

from _harness import report, stash
from repro.packaging.binaries import GLOBAL_BINARIES, synthetic_payload
from repro.packaging.package import ComponentPackage, PackageBuilder
from repro.registry.groups import DistributedRegistry, RegistryConfig
from repro.sim.topology import clustered
from repro.testing import (
    COUNTER_IFACE,
    CounterExecutor,
    SimRig,
    counter_package,
)
from repro.xmlmeta.descriptors import (
    ComponentTypeDescriptor,
    Dependency,
    ImplementationDescriptor,
    PortDecl,
    QoSSpec,
    SoftwareDescriptor,
)
from repro.xmlmeta.versions import Version, VersionRange

INTERVAL = 2.0


def test_availability_latency(benchmark, capsys):
    """Time from acceptor-install on A to successful resolve at B."""
    def once():
        rig = SimRig(clustered(2, 3), seed=2)
        dr = DistributedRegistry(
            rig.nodes, RegistryConfig(update_interval=INTERVAL))
        from repro.registry.groups import groups_by_cluster
        dr.deploy(groups_by_cluster(rig.topology.host_ids()))
        rig.run(until=dr.settle_time())

        # runtime install through the Component Acceptor on c1h2
        installer = rig.node("c0h0")
        acceptor = installer.service_stub("c1h2", "acceptor")
        installed_at = rig.env.now
        rig.run(until=installer.env.process(iter_one(
            acceptor.install(counter_package().data))))

        # poll from the other cluster until resolution succeeds
        from repro.orb.exceptions import SystemException
        requester = rig.node("c0h1")
        while True:
            try:
                rig.run(until=requester.request_component(
                    COUNTER_IFACE.repo_id))
                break
            except SystemException:
                rig.run(until=rig.env.now + 0.5)
        return rig.env.now - installed_at

    def iter_one(event):
        result = yield event
        return result

    latency = benchmark.pedantic(once, rounds=3, iterations=1)
    report(capsys, "C11a: install-to-network-availability latency",
           ["metric", "value"], [
               ["soft-state update interval", f"{INTERVAL:.0f} s"],
               ["install -> resolvable from another cluster",
                f"{latency:.1f} s"],
           ],
           note="bounded by one report + one aggregate propagation; no "
                "restart, no recompilation, no manual registration")
    assert latency < 3 * INTERVAL + 1.0
    stash(benchmark, latency=latency)


def _lib_package(name: str, deps: list[str]) -> ComponentPackage:
    GLOBAL_BINARIES.register(f"bench.{name}", CounterExecutor,
                             replace=True)
    soft = SoftwareDescriptor(
        name=name, version=Version(1, 0), vendor="bench",
        dependencies=[Dependency(d, VersionRange("")) for d in deps],
        implementations=[ImplementationDescriptor(
            "*", "*", "*", f"bench.{name}", "bin/any/impl")])
    # libraries provide nothing resolvable; only App offers Counter
    comp = ComponentTypeDescriptor(
        name=name,
        uses=[PortDecl(f"use_{d}", COUNTER_IFACE.repo_id, optional=True)
              for d in deps],
        qos=QoSSpec(cpu_units=5.0))
    builder = PackageBuilder(soft, comp)
    builder.add_binary("bin/any/impl", synthetic_payload(2_000, seed=8))
    return ComponentPackage(builder.build())


def test_dependency_closure_fetch(benchmark, capsys):
    """Fetching App also fetches Lib and Base (its declared deps)."""
    def once():
        rig = SimRig(clustered(1, 3), seed=4)
        source = rig.node("c0h0")
        # App depends on Lib depends on Base; App provides Counter.
        base = _lib_package("Base", [])
        lib = _lib_package("Lib", ["Base"])
        GLOBAL_BINARIES.register("bench.App", CounterExecutor,
                                 replace=True)
        app_soft = SoftwareDescriptor(
            name="App", version=Version(1, 0), vendor="bench",
            dependencies=[Dependency("Lib")],
            implementations=[ImplementationDescriptor(
                "*", "*", "*", "bench.App", "bin/any/impl")])
        app_comp = ComponentTypeDescriptor(
            name="App",
            provides=[PortDecl("value", COUNTER_IFACE.repo_id)],
            qos=QoSSpec(cpu_units=5.0))
        b = PackageBuilder(app_soft, app_comp)
        b.add_binary("bin/any/impl", synthetic_payload(2_000, seed=9))
        app = ComponentPackage(b.build())
        for pkg in (base, lib, app):
            source.install_package(pkg)

        dr = DistributedRegistry(
            rig.nodes, RegistryConfig(update_interval=INTERVAL,
                                      placement="fetch"))
        dr.deploy({"c0": rig.topology.host_ids()})
        rig.run(until=dr.settle_time())
        requester = rig.node("c0h2")
        rig.run(until=requester.request_component(COUNTER_IFACE.repo_id))
        return (sorted(requester.repository.names()),
                rig.metrics.get("resolver.closure_installs"))

    names, closures = benchmark.pedantic(once, rounds=2, iterations=1)
    report(capsys, "C11b: transitive dependency fetch "
                   "(placement policy 'fetch')",
           ["metric", "value"], [
               ["requested", "the Counter interface (provided by App)"],
               ["installed at requester", ", ".join(names)],
               ["closure installs counted", int(closures)],
           ],
           note="declared dependencies travel with the component: the "
                "network is the repository")
    assert names == ["App", "Base", "Lib"]
    stash(benchmark, closure=closures)

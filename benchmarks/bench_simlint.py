"""C20 — simlint seeded-defect detection and whole-tree scan cost.

A corpus of planted defects — one bad/good snippet pair per simlint
rule code — is linted with the same configuration the gate uses.  The
claim quantified here is two-sided: every planted defect is detected
with the expected code (no misses), and every corrected twin lints
clean (no false alarms), so the gate can run at default severity
without a human triage step.  The benchmark also times the full
``src/repro`` scan, the cost ``make check`` actually pays.

Run ``python benchmarks/bench_simlint.py --selftest`` for the
assertion-only mode wired into ``make check``.
"""

import textwrap
import time
from pathlib import Path

from _harness import report, stash
from repro.analysis.simlint import (
    Baseline,
    SimlintConfig,
    SourceFile,
    lint_paths,
    lint_sources,
)
from repro.util.diagnostics import Severity

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC = REPO_ROOT / "src" / "repro"

#: snippets are linted as a designated control-loop + action module so
#: every rule family is armed.
CONFIG = SimlintConfig(control_loop_modules=("corpus/mod.py",),
                       action_modules=("corpus/mod.py",))

#: (label, expected code, defective snippet, corrected twin)
PLANTED = [
    ("stdlib random import", "SIM001",
     "import random\n",
     "import json\n"),
    ("wall-clock read", "SIM002",
     """
     import time
     def stamp():
         return time.time()
     """,
     """
     def stamp(env):
         return env.now
     """),
    ("ad-hoc RNG construction", "SIM003",
     """
     import numpy as np
     def draw(seed):
         return np.random.default_rng(seed).random()
     """,
     """
     from repro.sim.rng import derived_stream
     def draw(seed):
         return derived_stream("corpus.draw", seed).random()
     """),
    ("global numpy draw", "SIM003",
     """
     import numpy as np
     def draw():
         return np.random.uniform()
     """,
     """
     def draw(rngs):
         return rngs.stream("corpus.draw").uniform()
     """),
    ("set iteration order", "SIM004",
     """
     def snap(items):
         pending = set(items)
         return [x for x in pending]
     """,
     """
     def snap(items):
         pending = set(items)
         return sorted(pending)
     """),
    ("bare except", "SIM010",
     """
     def once():
         try:
             risky()
         except:
             pass
     """,
     """
     def once():
         try:
             risky()
         except ValueError:
             pass
     """),
    ("interrupt-swallowing handler", "SIM011",
     """
     def loop(env):
         while True:
             try:
                 step()
             except Exception:
                 pass
             yield env.timeout(1.0)
     """,
     """
     def loop(env):
         while True:
             try:
                 step()
             except Interrupt:
                 raise
             except Exception:
                 pass
             yield env.timeout(1.0)
     """),
    ("unguarded decode in loop", "SIM012",
     """
     def loop(env, peer):
         try:
             while True:
                 state = loads_state(peer.call())
                 apply(state)
                 yield env.timeout(1.0)
         except Interrupt:
             pass
     """,
     """
     def loop(env, peer):
         try:
             while True:
                 try:
                     state = loads_state(peer.call())
                 except StateDecodeError:
                     continue
                 apply(state)
                 yield env.timeout(1.0)
         except Interrupt:
             pass
     """),
    ("perpetual loop, no Interrupt", "SIM013",
     """
     def loop(env):
         while True:
             step()
             yield env.timeout(1.0)
     """,
     """
     def loop(env):
         try:
             while True:
                 step()
                 yield env.timeout(1.0)
         except Interrupt:
             pass
     """),
    ("fault installer, no revert", "SIM020",
     """
     def act_kill(world, rng):
         host = pick(world, rng)
         host.crash()
         return host, None, "killed"
     """,
     """
     def act_kill(world, rng):
         host = pick(world, rng)
         host.crash()
         def revert():
             host.recover()
         return host, revert, "killed"
     """),
    ("staged ring never settled", "SIM021",
     """
     def churn(ring, host, apply_now):
         ring.stage_remove(host)
         if apply_now:
             ring.rebalance()
         return ring
     """,
     """
     def churn(ring, host, apply_now):
         ring.stage_remove(host)
         if apply_now:
             ring.rebalance()
         else:
             ring.cancel_staged()
         return ring
     """),
    ("typo'd metric name", "SIM030",
     """
     def tick(metrics):
         metrics.counter("supervisor.recoverys").inc()
     """,
     """
     def tick(metrics):
         metrics.counter("supervisor.recoveries").inc()
     """),
    ("undeclared span label", "SIM031",
     """
     def promote(obs):
         with obs.span("supervisor.promot"):
             pass
     """,
     """
     def promote(obs):
         with obs.span("supervisor.promote"):
             pass
     """),
]


def _lint(snippet: str):
    source = SourceFile.parse("corpus/mod.py", textwrap.dedent(snippet))
    return list(lint_sources([source], config=CONFIG))


def run() -> dict:
    detected, missed, false_alarms = [], [], []
    for label, code, bad, good in PLANTED:
        bad_codes = {f.code for f in _lint(bad)}
        (detected if code in bad_codes else missed).append(label)
        leftovers = _lint(good)
        if leftovers:
            false_alarms.append((label, [f.code for f in leftovers]))

    start = time.perf_counter()
    diag = lint_paths([str(SRC)], root=str(REPO_ROOT))
    wall_s = time.perf_counter() - start
    remaining = Baseline.load(
        REPO_ROOT / "simlint-baseline.json").apply(diag)
    gated = [f for f in remaining if f.severity >= Severity.WARNING]
    return {
        "planted": len(PLANTED),
        "detected": detected,
        "missed": missed,
        "false_alarms": false_alarms,
        "files_scanned": sum(1 for _ in SRC.rglob("*.py")),
        "tree_wall_s": wall_s,
        "tree_findings_after_baseline": len(gated),
    }


def _check(result: dict) -> None:
    assert not result["missed"], f"missed defects: {result['missed']}"
    assert len(result["detected"]) == result["planted"]
    assert not result["false_alarms"], result["false_alarms"]
    assert result["tree_findings_after_baseline"] == 0
    assert result["tree_wall_s"] < 30.0, result["tree_wall_s"]


def test_seeded_defect_detection(benchmark, capsys):
    result = run()
    benchmark.pedantic(
        lambda: lint_paths([str(SRC)], root=str(REPO_ROOT)),
        rounds=3, iterations=1)
    rows = [[label, code, "detected", "clean"]
            for (label, code, _, _) in PLANTED]
    report(capsys,
           "C20: planted-defect corpus, one bad/good pair per rule",
           ["defect", "code", "bad twin", "good twin"], rows,
           note=f"{len(result['detected'])}/{result['planted']} planted "
                f"defects detected, 0 false alarms on corrected twins; "
                f"full src/repro scan ({result['files_scanned']} files) "
                f"in {result['tree_wall_s']:.2f}s with 0 unbaselined "
                f"findings")
    _check(result)
    stash(benchmark,
          planted=result["planted"],
          detected=len(result["detected"]),
          false_alarms=len(result["false_alarms"]),
          files_scanned=result["files_scanned"],
          tree_wall_s=round(result["tree_wall_s"], 3))


def selftest() -> int:
    result = run()
    _check(result)
    print("bench_simlint selftest ok: "
          f"{len(result['detected'])}/{result['planted']} planted "
          f"defects detected, 0 false alarms; src/repro "
          f"({result['files_scanned']} files) scanned in "
          f"{result['tree_wall_s']:.2f}s, 0 unbaselined findings")
    return 0


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="simlint seeded-defect detection benchmark")
    parser.add_argument("--selftest", action="store_true",
                        help="run the assertion-only gate (no tables)")
    args = parser.parse_args()
    if args.selftest:
        sys.exit(selftest())
    parser.error("run via pytest for the full report, or pass --selftest")

"""C1 — "Simplicity and performance ... it must be lightweight" (§2 R1).

ORB microbenchmarks: CDR marshalling throughput, end-to-end invocation
cost (wall time per simulated call), and the simulated-time latency of
a LAN invocation as argument size grows.
"""

import pytest

from _harness import report, stash
from repro.orb.cdr import CDRDecoder, CDREncoder
from repro.orb.core import InterfaceDef, ORB, Servant, op
from repro.orb.typecodes import (
    sequence_tc,
    struct_tc,
    tc_double,
    tc_long,
    tc_octetseq,
    tc_string,
)
from repro.sim.kernel import Environment
from repro.sim.network import Network
from repro.sim.topology import SERVER, star

POINT = struct_tc("Point", [("x", tc_double), ("y", tc_double)])
SAMPLE_TC = struct_tc("Sample", [
    ("id", tc_long),
    ("name", tc_string),
    ("path", sequence_tc(POINT)),
])
SAMPLE = {
    "id": 42,
    "name": "trajectory-0042",
    "path": [{"x": float(i), "y": float(i) * 0.5} for i in range(16)],
}

ECHO = InterfaceDef("IDL:bench/Echo:1.0", "Echo", operations=[
    op("echo", [("s", SAMPLE_TC)], SAMPLE_TC),
    op("blob", [("b", tc_octetseq)], tc_octetseq),
])


class EchoServant(Servant):
    _interface = ECHO

    def echo(self, s):
        return s

    def blob(self, b):
        return b


def make_rig():
    env = Environment()
    net = Network(env, star(1, hub_profile=SERVER))
    server = ORB(env, net, "hub")
    client = ORB(env, net, "h0")
    ior = server.adapter("root").activate(EchoServant())
    return env, net, client, ior


def test_cdr_marshal_throughput(benchmark, capsys):
    """Marshal throughput on the production encode path.

    The ORB resolves one codec per operation and holds it (op_codec on
    the OperationDef), so the representative workload is the resolved
    plan handle, not a per-value ``encode_value`` lookup.  Throughput is
    taken from the fastest round: this box shows 2-3x wall-clock noise
    between identical runs, and the minimum is the standard noise-free
    estimator for a deterministic workload (the mean is reported too).
    """
    from repro.orb.compiled import get_plan

    plan_encode = get_plan(SAMPLE_TC).encode

    def marshal():
        enc = CDREncoder()
        for _ in range(100):
            plan_encode(enc, SAMPLE)
        return enc.getvalue()

    data = benchmark(marshal)
    per_value = len(data) // 100
    mbps = per_value * 100 / benchmark.stats["min"] / 1e6
    mbps_mean = per_value * 100 / benchmark.stats["mean"] / 1e6
    report(capsys, "C1a: CDR marshalling", ["metric", "value"], [
        ["encoded size (struct w/ 16-point path)", f"{per_value} B"],
        ["throughput (fastest round)", f"{mbps:.1f} MB/s"],
        ["throughput (mean)", f"{mbps_mean:.1f} MB/s"],
    ])
    stash(benchmark, encoded_bytes=per_value, mb_per_s=mbps,
          mb_per_s_mean=mbps_mean)


def test_cdr_marshal_interpreter_reference(benchmark, capsys):
    """Same workload through the reference TypeCode interpreter, for an
    in-run comparison against the compiled-plan numbers above."""
    from repro.orb.cdr import encode_value_interp

    def marshal():
        enc = CDREncoder()
        for _ in range(100):
            encode_value_interp(enc, SAMPLE_TC, SAMPLE)
        return enc.getvalue()

    data = benchmark(marshal)
    per_value = len(data) // 100
    mbps = per_value * 100 / benchmark.stats["mean"] / 1e6
    report(capsys, "C1a-ref: CDR marshalling (interpreter)",
           ["metric", "value"],
           [["throughput", f"{mbps:.1f} MB/s"]],
           note="reference path; compare with C1a compiled plans")
    stash(benchmark, mb_per_s=mbps)


def test_cdr_unmarshal_throughput(benchmark, capsys):
    """Unmarshal throughput on the production decode path (see the
    marshal test above for why the plan handle and the fastest round)."""
    from repro.orb import codegen
    from repro.orb.compiled import get_plan

    plan = get_plan(SAMPLE_TC)
    plan_decode = plan.decode
    enc = CDREncoder()
    for _ in range(100):
        plan.encode(enc, SAMPLE)
    wire = enc.getvalue()

    def unmarshal():
        dec = CDRDecoder(wire)
        return [plan_decode(dec) for _ in range(100)]

    before = codegen.stats_snapshot()
    values = benchmark(unmarshal)
    after = codegen.stats_snapshot()
    assert values[0] == SAMPLE
    mbps = len(wire) / benchmark.stats["min"] / 1e6
    mbps_mean = len(wire) / benchmark.stats["mean"] / 1e6
    report(capsys, "C1a: CDR unmarshalling", ["metric", "value"], [
        ["throughput (fastest round)", f"{mbps:.1f} MB/s"],
        ["throughput (mean)", f"{mbps_mean:.1f} MB/s"],
        ["codegen decode calls", str(after["decode_calls"]
                                     - before["decode_calls"])],
    ])
    stash(benchmark, mb_per_s=mbps, mb_per_s_mean=mbps_mean,
          codegen_decode_calls=after["decode_calls"] - before["decode_calls"])


def test_invocation_wall_cost(benchmark, capsys):
    """Wall-clock cost per simulated remote invocation (impl overhead)."""
    from repro.orb import codegen

    env, net, client, ior = make_rig()
    stub = client.stub(ior, ECHO)

    def do_calls():
        for _ in range(50):
            client.sync(stub.echo(SAMPLE))

    before = codegen.stats_snapshot()
    # Many short rounds and min-of-rounds for the headline number: the
    # box's wall-clock noise between identical rounds exceeds 2x, and
    # the fastest round is the reproducible cost of the code itself.
    # GC is paused across the rounds so a gen-0 sweep landing inside a
    # round doesn't mask the per-call cost being measured.
    import gc
    gc_was_enabled = gc.isenabled()
    gc.disable()
    try:
        benchmark.pedantic(do_calls, rounds=25, iterations=1,
                           warmup_rounds=2)
    finally:
        if gc_was_enabled:
            gc.enable()
    after = codegen.stats_snapshot()
    per_call_us = benchmark.stats["min"] / 50 * 1e6
    per_call_us_mean = benchmark.stats["mean"] / 50 * 1e6
    report(capsys, "C1b: invocation implementation cost",
           ["metric", "value"],
           [["wall time per call (fastest round)", f"{per_call_us:.0f} us"],
            ["wall time per call (mean)", f"{per_call_us_mean:.0f} us"]])
    stash(benchmark, per_call_us=per_call_us,
          per_call_us_mean=per_call_us_mean,
          codegen_cache_hits=after["cache_hits"],
          codegen_cache_misses=after["cache_misses"],
          codegen_encode_calls=after["encode_calls"] - before["encode_calls"],
          codegen_decode_calls=after["decode_calls"] - before["decode_calls"])


def test_invocation_sim_latency(benchmark, capsys):
    """Simulated LAN latency per call vs. payload size."""
    rows = []
    for size in (0, 1_000, 10_000, 100_000):
        env, net, client, ior = make_rig()
        stub = client.stub(ior, ECHO)
        t0 = env.now
        client.sync(stub.blob(b"x" * size))
        rows.append([f"{size} B", f"{(env.now - t0) * 1000:.3f} ms"])

    def run_one():
        env, net, client, ior = make_rig()
        client.sync(client.stub(ior, ECHO).blob(b"x" * 1000))
        return env.now

    sim_latency = benchmark(run_one)
    report(capsys, "C1c: simulated LAN invocation latency vs payload",
           ["payload", "round-trip (sim)"], rows,
           note="100 Mb/s LAN, request+reply both cross the wire")
    stash(benchmark, sim_latency_1k=sim_latency)

"""C8 — packaging: compression and modularity (§2.3).

"It must admit compression to overcome the efficient transmission of
the component through possibly long and slow communication lines."

We build the same component package compressed and stored, for payloads
of varying redundancy, and compute transfer times over a LAN and a 56k
modem line — the 'long and slow communication line' of 2001.
"""

from _harness import report, stash
from repro.packaging.binaries import synthetic_payload
from repro.packaging.package import ComponentPackage, PackageBuilder
from repro.sim.topology import LAN, MODEM
from repro.xmlmeta.descriptors import (
    ComponentTypeDescriptor,
    ImplementationDescriptor,
    PortDecl,
    QoSSpec,
    SoftwareDescriptor,
)
from repro.xmlmeta.versions import Version
from repro.packaging.binaries import GLOBAL_BINARIES


def build(payload_bytes: int, compressibility: float,
          compress: bool) -> ComponentPackage:
    GLOBAL_BINARIES.register("bench.pkg", object, replace=True)
    soft = SoftwareDescriptor(
        name="PkgBench", version=Version(1, 0), vendor="bench",
        implementations=[ImplementationDescriptor(
            "*", "*", "*", "bench.pkg", "bin/any/impl")])
    comp = ComponentTypeDescriptor(
        name="PkgBench",
        provides=[PortDecl("p", "IDL:bench/P:1.0")],
        qos=QoSSpec())
    builder = PackageBuilder(soft, comp)
    builder.add_idl("p", "interface P { void f(); };")
    builder.add_binary("bin/any/impl",
                       synthetic_payload(payload_bytes, seed=5,
                                         compressibility=compressibility))
    return ComponentPackage(builder.build(compress=compress))


def link_seconds(nbytes: int, link) -> float:
    return nbytes / link.bandwidth + link.latency


def test_compression_on_slow_links(benchmark, capsys):
    rows = []
    savings = {}
    for compressibility, label in ((0.2, "binary-like (20% redundant)"),
                                   (0.6, "typical (60% redundant)"),
                                   (0.9, "text-like (90% redundant)")):
        stored = build(200_000, compressibility, compress=False)
        deflated = build(200_000, compressibility, compress=True)
        ratio = stored.size / deflated.size
        savings[compressibility] = ratio
        rows.append([
            label,
            f"{stored.size/1e3:.0f} kB",
            f"{deflated.size/1e3:.0f} kB",
            f"{link_seconds(stored.size, MODEM):.0f} s",
            f"{link_seconds(deflated.size, MODEM):.0f} s",
            f"{link_seconds(deflated.size, LAN)*1000:.0f} ms",
        ])
    benchmark.pedantic(lambda: build(200_000, 0.6, True),
                       rounds=3, iterations=1)
    report(capsys, "C8: 200 kB component over a 56k modem vs LAN",
           ["payload kind", "stored", "deflated", "modem (stored)",
            "modem (deflated)", "LAN (deflated)"], rows,
           note="compression is what makes component shipping viable on "
                "the paper's 'long and slow communication lines'")
    assert savings[0.9] > 2.0
    stash(benchmark, **{f"ratio_{int(c*100)}": r
                        for c, r in savings.items()})


def test_package_parse_cost(benchmark):
    """Opening + validating a package (what the acceptor pays)."""
    data = build(200_000, 0.6, compress=True).data
    pkg = benchmark(lambda: ComponentPackage(data))
    assert pkg.name == "PkgBench"

"""C2 — run-time deployment vs. a static (CCM-style) assembly (§1, §2.4.4).

The paper's central claim: deciding placement at run time, with the
dynamic data the Reflection Architecture provides, beats a placement
fixed at deployment-design time.

Scenario: a heterogeneous cluster where some hosts already carry load
(that's the "changes in the load" a static plan cannot see).  An
application of 12 instances is then deployed by each policy; we score
the resulting CPU imbalance and makespan (the completion time of a
fixed work budget on the most loaded host).
"""

import numpy as np

from _harness import report, stash
from repro.deployment import (
    Deployer,
    RandomPlanner,
    RoundRobinPlanner,
    RuntimePlanner,
    StaticPlanner,
)
from repro.deployment.planner import load_imbalance
from repro.sim.topology import DESKTOP, SERVER, star
from repro.testing import SimRig, counter_package
from repro.xmlmeta.descriptors import AssemblyDescriptor, AssemblyInstance


def make_rig(seed=0):
    rig = SimRig(star(7, hub_profile=SERVER, leaf_profile=DESKTOP),
                 seed=seed)
    hub = rig.node("hub")
    hub.install_package(counter_package(cpu_units=80.0, memory_mb=16.0))
    # Pre-existing load the static planner cannot see: h0..h2 are busy.
    for host in ("h0", "h1", "h2"):
        rig.node(host).install_package(counter_package())
        for _ in range(3):
            rig.node(host).container.create_instance("Counter")
            rig.node(host).resources.cpu_committed += 80.0
    return rig


def assembly(n=12):
    return AssemblyDescriptor(
        name="app",
        instances=[AssemblyInstance(f"i{k}", "Counter")
                   for k in range(n)])


def evaluate(planner_factory, seed=0):
    rig = make_rig(seed)
    dep = Deployer(rig.nodes, planner_factory(rig),
                   coordinator_host="hub")
    app = rig.run(until=dep.deploy(assembly()))
    views = rig.run(until=dep.gather_views())
    usable = [v for v in views if not v.is_tiny]
    imbalance = load_imbalance(usable)
    # Makespan proxy: each instance must execute a fixed work budget;
    # the busiest host finishes last.
    makespan = max(v.cpu_committed / v.cpu_capacity for v in usable)
    overloaded = sum(1 for v in usable if v.cpu_utilization > 0.9)
    return imbalance, makespan, overloaded


PLANNERS = [
    ("CORBA-LC run-time", lambda rig: RuntimePlanner()),
    ("static (CCM-like)", lambda rig: StaticPlanner()),
    ("round-robin", lambda rig: RoundRobinPlanner()),
    ("random", lambda rig: RandomPlanner(rig.rngs.stream("placement"))),
]


def test_deployment_policies(benchmark, capsys):
    rows = []
    results = {}
    for label, factory in PLANNERS:
        imbalances, makespans, overloads = [], [], []
        for seed in range(3):
            imbalance, makespan, overloaded = evaluate(factory, seed)
            imbalances.append(imbalance)
            makespans.append(makespan)
            overloads.append(overloaded)
        rows.append([label,
                     f"{np.mean(imbalances):.3f}",
                     f"{np.mean(makespans):.3f}",
                     f"{np.mean(overloads):.1f}"])
        results[label] = (np.mean(imbalances), np.mean(makespans))

    benchmark.pedantic(lambda: evaluate(PLANNERS[0][1]),
                       rounds=3, iterations=1)
    report(capsys, "C2: placement policy quality on a loaded cluster",
           ["policy", "CPU imbalance", "normalized makespan",
            "hosts >90% cpu"], rows,
           note="run-time placement sees current load; the static "
                "assembly piles work onto already-busy hosts")
    # The paper's claim must hold: run-time beats static on both axes.
    assert results["CORBA-LC run-time"][0] <= results["static (CCM-like)"][0]
    assert results["CORBA-LC run-time"][1] <= results["static (CCM-like)"][1]
    stash(benchmark, **{label: results[label][1] for label, _ in PLANNERS})

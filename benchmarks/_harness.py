"""Shared helpers for the benchmark suite.

Every benchmark measures two things:

- **wall time** of running the simulation (pytest-benchmark's number:
  the cost of *this implementation*), and
- **simulated metrics** (messages, bytes, sim-seconds, placement
  quality): the protocol-level results that correspond to the paper's
  claims.  These print as a table (uncaptured) and land in
  ``benchmark.extra_info`` so ``--benchmark-json`` keeps them.

EXPERIMENTS.md records the tables produced here.
"""

from __future__ import annotations

from typing import Sequence


def report(capsys, title: str, headers: Sequence[str],
           rows: Sequence[Sequence], note: str = "") -> None:
    """Print an experiment table straight to the terminal."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(h), *(len(r[i]) for r in str_rows)) if str_rows else len(h)
        for i, h in enumerate(headers)
    ]
    with capsys.disabled():
        print(f"\n  == {title} ==")
        print("  " + "  ".join(h.ljust(w) for h, w in zip(headers, widths)))
        print("  " + "  ".join("-" * w for w in widths))
        for row in str_rows:
            print("  " + "  ".join(c.ljust(w)
                                   for c, w in zip(row, widths)))
        if note:
            print(f"  ({note})")
        print()


def _fmt(cell) -> str:
    if isinstance(cell, float):
        if cell == 0:
            return "0"
        if abs(cell) >= 1000:
            return f"{cell:,.0f}"
        if abs(cell) >= 10:
            return f"{cell:.1f}"
        return f"{cell:.3f}"
    return str(cell)


def stash(benchmark, **info) -> None:
    """Attach experiment metrics to the benchmark record."""
    for key, value in info.items():
        benchmark.extra_info[key] = value

"""C10 — predictive resource reporting (§2.4.3).

"Predictive and adaptive techniques can be used to predict the resource
availability, thus reducing even more the bandwidth requirements."

Hosts carry a slowly ramping background load (highly predictable).  We
sweep the dead-reckoning tolerance and compare report counts/bytes and
worst-case view error against the plain periodic soft-state reporter.
"""

from _harness import report, stash
from repro.registry.groups import DistributedRegistry, RegistryConfig
from repro.sim.topology import star
from repro.testing import SimRig
from repro.xmlmeta.descriptors import QoSSpec

WINDOW = 120.0
INTERVAL = 2.0


def run(mode: str, tolerance: float = 10.0, seed: int = 0):
    rig = SimRig(star(8), seed=seed)
    cfg = RegistryConfig(update_interval=INTERVAL, mode=mode,
                         prediction_tolerance=tolerance)
    dr = DistributedRegistry(rig.nodes, cfg)
    dr.deploy({"g0": rig.topology.host_ids()})

    # Predictable background load: each leaf ramps committed CPU up and
    # back down, 4 units per second.
    def ramp(node):
        step = QoSSpec(cpu_units=4.0)
        while True:
            for _ in range(40):
                node.resources.cpu_committed += step.cpu_units
                yield rig.env.timeout(1.0)
            for _ in range(40):
                node.resources.cpu_committed -= step.cpu_units
                yield rig.env.timeout(1.0)
    for i in range(8):
        rig.env.process(ramp(rig.node(f"h{i}")))

    # Track worst-case error between the MRM's belief and the truth.
    mrm = dr.groups["g0"].agents[0]
    worst = [0.0]

    def audit():
        while True:
            yield rig.env.timeout(1.0)
            for host, rec in mrm.members.items():
                node = rig.nodes[host]
                if not node.alive:
                    continue
                believed = mrm._member_free_cpu(rec)
                actual = node.resources.snapshot().cpu_available
                worst[0] = max(worst[0], abs(believed - actual))
    rig.env.process(audit())

    rig.run(until=WINDOW)
    meter = "registry.pred" if mode == "predictive" else "registry.soft"
    return (rig.metrics.get(f"{meter}.msgs"),
            rig.metrics.get(f"{meter}.bytes"), worst[0])


def test_prediction_bandwidth_vs_accuracy(benchmark, capsys):
    rows = []
    base_msgs, base_bytes, base_err = run("soft")
    rows.append(["periodic soft state", int(base_msgs),
                 f"{base_bytes/WINDOW:.0f}", f"{base_err:.1f}"])
    results = {}
    for tolerance in (5.0, 20.0, 80.0):
        msgs, byts, err = run("predictive", tolerance)
        results[tolerance] = (msgs, err)
        rows.append([f"predictive, tol={tolerance:.0f} cpu",
                     int(msgs), f"{byts/WINDOW:.0f}", f"{err:.1f}"])
    benchmark.pedantic(lambda: run("predictive", 20.0),
                       rounds=1, iterations=1)
    report(capsys, f"C10: reporting cost vs view accuracy over "
                   f"{WINDOW:.0f}s (ramping load)",
           ["reporter", "reports", "B/s", "worst view error (cpu units)"],
           rows,
           note="dead reckoning trades bounded staleness for bandwidth; "
                "looser tolerance => fewer reports, larger error")
    assert results[20.0][0] < base_msgs / 2       # big bandwidth saving
    assert results[5.0][1] <= results[80.0][1]    # accuracy ordering
    stash(benchmark, base_msgs=base_msgs,
          pred_msgs_tol20=results[20.0][0])

"""C15 — goodput and tail latency under a 5x overload burst (§2.4.3).

A fixed-capacity server (two dispatch workers) takes a request burst at
five times its capacity over a wire that corrupts 2% of frames.  The
unprotected ORB queues every arrival: queueing delay blows through the
client timeout, retries amplify the load, and the server burns its CPU
on requests whose callers have already given up.  The protected ORB
bounds its dispatch table (excess arrivals are shed with a tiny
TRANSIENT) and clients wrap calls in circuit breakers, so the server
only works on requests it can still answer in time.

Measured per arm: goodput (successful replies per second of burst) and
client-perceived p99 latency (issue to final outcome, success or not).

Run ``python benchmarks/bench_overload.py --selftest`` for the
assertion-only mode wired into ``make check``.
"""

from _harness import report, stash
from repro.orb.core import InterfaceDef, ORB, Servant, op
from repro.orb.exceptions import SystemException
from repro.orb.retry import BreakerRegistry, RetryPolicy, invoke_with_retry
from repro.orb.typecodes import tc_long
from repro.sim.faults import WireFaultModel, WireFaultProfile
from repro.sim.kernel import Environment
from repro.sim.network import Network
from repro.sim.rng import RngRegistry
from repro.sim.topology import star

# Server capacity: 2 workers x (hub cpu 1000 / cpu_cost 20) = 100 req/s.
WORKERS = 2
CPU_COST = 20.0
DISPATCH_LIMIT = 24          # max wait in table: (24/2) * 0.02 s = 0.24 s
N_CLIENTS = 4
CORRUPT_RATE = 0.02

#: (start, end, offered requests/s); the middle phase is the 5x burst.
PHASES = [(0.0, 1.0, 50.0), (1.0, 5.0, 500.0), (5.0, 8.0, 50.0)]
BURST = PHASES[1]
HORIZON = 15.0               # every client process finishes well before

POLICY = RetryPolicy(attempts=3, timeout=1.0, backoff=0.05,
                     backoff_factor=2.0, jitter=True)

IFACE = InterfaceDef("IDL:bench/Work:1.0", "Work", operations=[
    op("work", [("x", tc_long)], tc_long, cpu_cost=CPU_COST),
])
WORK = IFACE.operations["work"]


class WorkServant(Servant):
    _interface = IFACE

    def work(self, x):
        return x + 1


def run(protected: bool, seed: int = 0) -> dict:
    env = Environment()
    net = Network(env, star(N_CLIENTS), rngs=RngRegistry(seed))
    net.wire_faults = WireFaultModel(
        net.rngs, net.metrics,
        default=WireFaultProfile(corrupt=CORRUPT_RATE))
    server = ORB(env, net, "hub", dispatch_workers=WORKERS,
                 dispatch_limit=DISPATCH_LIMIT if protected else None)
    ior = server.adapter("app").activate(WorkServant())
    clients = [ORB(env, net, f"h{k}") for k in range(N_CLIENTS)]
    registries = ([BreakerRegistry(orb, failure_threshold=5,
                                   reset_timeout=0.5)
                   for orb in clients] if protected else None)

    records: list[tuple[float, float, bool]] = []

    def request(orb, breaker):
        start = env.now
        try:
            yield from invoke_with_retry(orb, ior, WORK, (1,),
                                         policy=POLICY, breaker=breaker)
            records.append((start, env.now, True))
        except SystemException:
            records.append((start, env.now, False))

    k = 0
    for phase_start, phase_end, rate in PHASES:
        step = 1.0 / rate
        t = phase_start
        while t < phase_end:
            orb = clients[k % N_CLIENTS]
            breaker = (registries[k % N_CLIENTS].breaker_for("hub")
                       if protected else None)
            env.timeout(t).callbacks.append(
                lambda _ev, orb=orb, breaker=breaker:
                env.process(request(orb, breaker)))
            k += 1
            t += step
    env.run(until=env.timeout(HORIZON))

    burst_ok = [r for r in records
                if r[2] and BURST[0] <= r[0] < BURST[1]]
    latencies = sorted(end - start for start, end, _ok in records)
    p99 = latencies[int(0.99 * (len(latencies) - 1))]
    return {
        "offered": k,
        "completed": len(records),
        "ok": sum(1 for r in records if r[2]),
        "goodput": len(burst_ok) / (BURST[1] - BURST[0]),
        "p99": p99,
        "shed": net.metrics.get("orb.shed"),
        "breaker_opened": net.metrics.get("breaker.opened"),
        "fast_fails": net.metrics.get("breaker.fast_fails"),
        "corrupted": net.metrics.get("net.corrupted.bitflip"),
        "bad_messages": net.metrics.get("orb.bad_messages"),
    }


def _check(shielded: dict, exposed: dict) -> None:
    for arm in (shielded, exposed):
        assert arm["completed"] == arm["offered"], arm  # nobody wedged
        assert arm["corrupted"] > 0, arm                # wire was hostile
    assert shielded["shed"] > 0 and exposed["shed"] == 0
    assert shielded["breaker_opened"] >= 1
    # The headline claims: protection strictly improves both metrics.
    assert shielded["goodput"] > exposed["goodput"], (shielded, exposed)
    assert shielded["p99"] < exposed["p99"], (shielded, exposed)


def test_overload_burst(benchmark, capsys):
    shielded = run(True)
    exposed = run(False)
    benchmark.pedantic(lambda: run(True, seed=1), rounds=1, iterations=1)
    rows = [
        ["shed+breaker", shielded["goodput"], f"{shielded['p99']:.2f} s",
         f"{shielded['ok']}/{shielded['offered']}", shielded["shed"],
         shielded["breaker_opened"]],
        ["unprotected", exposed["goodput"], f"{exposed['p99']:.2f} s",
         f"{exposed['ok']}/{exposed['offered']}", exposed["shed"],
         exposed["breaker_opened"]],
    ]
    report(capsys,
           "C15: 5x overload burst, 2% wire corruption "
           f"(capacity {WORKERS * 1000 / CPU_COST:.0f} req/s)",
           ["orb", "goodput req/s", "p99 latency", "ok/offered",
            "shed", "breakers opened"], rows,
           note="goodput = successful replies per burst second; p99 over "
                "issue-to-final-outcome of every request")
    _check(shielded, exposed)
    stash(benchmark,
          goodput_shielded=shielded["goodput"],
          goodput_exposed=exposed["goodput"],
          p99_shielded=shielded["p99"],
          p99_exposed=exposed["p99"],
          shed=shielded["shed"],
          breaker_opened=shielded["breaker_opened"])


def selftest() -> int:
    shielded = run(True)
    exposed = run(False)
    _check(shielded, exposed)
    print("bench_overload selftest ok: "
          f"goodput {shielded['goodput']:.0f} vs {exposed['goodput']:.0f} "
          f"req/s, p99 {shielded['p99']:.2f} vs {exposed['p99']:.2f} s "
          f"({shielded['shed']:.0f} shed, "
          f"{shielded['breaker_opened']:.0f} breakers opened)")
    return 0


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="overload burst goodput benchmark")
    parser.add_argument("--selftest", action="store_true",
                        help="run the assertion-only gate (no tables)")
    args = parser.parse_args()
    if args.selftest:
        sys.exit(selftest())
    parser.error("run via pytest for the full report, or pass --selftest")

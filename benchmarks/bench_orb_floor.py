"""C1-gate — codec/dispatch fast-path floor (§2 R1, "lightweight").

Assertion-only guard wired into ``make check``: it verifies that the
three-tier codec machinery is actually engaged on the invocation path
(generated source codecs handling the request/reply bodies) and that
marshalling and invocation cost have not regressed past conservative
floors.

The floors are deliberately loose — this box shows 2-3x wall-clock
noise between identical runs, so the gate sits well below the quiet
numbers recorded in ``BENCH_orb.json`` (marshal ~120 MB/s, invocation
~45 us/call) but far above the interpreter-era baseline (2.5 MB/s,
575 us/call).  A real tier regression (codegen silently declining, the
plan cache thrashing, the fast dispatch path falling back to kernel
processes) lands an order of magnitude away from either side of the
gate, so flakiness and false confidence are both off the table.

Run ``python benchmarks/bench_orb_floor.py --selftest``.
"""

import time

from bench_orb_micro import ECHO, SAMPLE, SAMPLE_TC, make_rig
from repro.orb import codegen
from repro.orb.cdr import CDREncoder
from repro.orb.compiled import get_plan

#: Conservative lower bounds; see module docstring for the rationale.
MARSHAL_FLOOR_MB_S = 20.0
INVOCATION_CEIL_US = 250.0


def _best_of(fn, repeats: int = 10) -> float:
    """Fastest CPU-time of *repeats* runs of ``fn`` — the noise-robust
    estimator for a deterministic workload on a loaded box."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.process_time()
        fn()
        t1 = time.process_time()
        best = min(best, t1 - t0)
    return best


def selftest() -> int:
    plan = get_plan(SAMPLE_TC)
    if plan.tier != "codegen":
        print(f"FAIL: benchmark TypeCode compiled to tier {plan.tier!r}, "
              f"expected 'codegen'")
        return 1

    # -- marshal floor ---------------------------------------------------
    loops = 300
    enc = CDREncoder()
    plan.encode(enc, SAMPLE)
    per_value = len(enc.getvalue())
    plan_encode = plan.encode

    def marshal():
        e = CDREncoder()
        for _ in range(loops):
            plan_encode(e, SAMPLE)

    best = _best_of(marshal)
    mbps = per_value * loops / best / 1e6
    if mbps < MARSHAL_FLOOR_MB_S:
        print(f"FAIL: CDR marshal {mbps:.1f} MB/s below floor "
              f"{MARSHAL_FLOOR_MB_S} MB/s")
        return 1

    # -- invocation ceiling + codegen engagement -------------------------
    env, net, client, ior = make_rig()
    stub = client.stub(ior, ECHO)
    sync = client.sync
    before = codegen.stats_snapshot()
    calls = 100

    def invoke_batch():
        for _ in range(calls):
            sync(stub.echo(SAMPLE))

    invoke_batch()  # warm caches outside the measurement
    per_call_us = _best_of(invoke_batch) / calls * 1e6
    after = codegen.stats_snapshot()
    enc_calls = after["encode_calls"] - before["encode_calls"]
    dec_calls = after["decode_calls"] - before["decode_calls"]
    if enc_calls <= 0 or dec_calls <= 0:
        print(f"FAIL: generated codecs not engaged on the invocation "
              f"path (encode_calls={enc_calls}, decode_calls={dec_calls})")
        return 1
    if per_call_us > INVOCATION_CEIL_US:
        print(f"FAIL: invocation {per_call_us:.1f} us/call above ceiling "
              f"{INVOCATION_CEIL_US} us")
        return 1

    print(f"bench_orb_floor selftest ok: marshal {mbps:.1f} MB/s "
          f"(floor {MARSHAL_FLOOR_MB_S}), invocation {per_call_us:.1f} "
          f"us/call (ceiling {INVOCATION_CEIL_US}), codegen "
          f"enc/dec calls {enc_calls}/{dec_calls}")
    return 0


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser()
    parser.add_argument("--selftest", action="store_true",
                        help="assert perf floors and codegen engagement")
    args = parser.parse_args()
    if args.selftest:
        sys.exit(selftest())
    parser.error("pass --selftest (full reports live in bench_orb_micro.py)")

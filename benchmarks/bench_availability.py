"""C14 — application availability under crash/restart churn (§2.4.3).

The paper demands that the framework "support spurious node failures
and node disconnections (and re-connections) gracefully".  This
benchmark measures what that buys: a four-instance assembly rides out
two scripted host outages (the second one outlasting the measurement
horizon) while a client probes every instance's facet twice a second.

Without supervision an instance is dark for as long as its host — or
forever, if the host never returns.  With the ApplicationSupervisor
the instance is re-planned onto a live host within roughly one
supervision interval, so availability is bounded by detection +
recovery, not by outage length.

Run ``python benchmarks/bench_availability.py --selftest`` for the
assertion-only mode wired into ``make check``.
"""

from _harness import report, stash
from repro.deployment import ApplicationSupervisor, Deployer, RuntimePlanner
from repro.orb.exceptions import SystemException
from repro.sim.faults import FaultInjector
from repro.sim.topology import SERVER, star
from repro.testing import COUNTER_IFACE, SimRig, counter_package
from repro.xmlmeta.descriptors import (
    AssemblyConnection,
    AssemblyDescriptor,
    AssemblyInstance,
)

READ = COUNTER_IFACE.operations["read"]
#: (host, crash time, outage duration); the h1 outage outlives HORIZON,
#: so only a supervised run ever gets that instance back.
OUTAGES = [("h0", 15.0, 25.0), ("h1", 45.0, 60.0)]
HORIZON = 90.0
PROBE_STEP = 0.5
PROBE_TIMEOUT = 0.4
SUPERVISOR_INTERVAL = 2.0


def run(supervise: bool, seed: int = 0) -> dict:
    rig = SimRig(star(4, leaf_profile=SERVER), seed=seed)
    hub = rig.node("hub")
    hub.install_package(counter_package(cpu_units=50.0))
    dep = Deployer(rig.nodes, RuntimePlanner(), coordinator_host="hub")
    asm = AssemblyDescriptor(
        name="app",
        instances=[AssemblyInstance(f"i{k}", "Counter") for k in range(4)],
        connections=[AssemblyConnection("i0", "peer", "i1", "value")])
    app = rig.run(until=dep.deploy(asm))
    sup = (ApplicationSupervisor(dep, interval=SUPERVISOR_INTERVAL)
           if supervise else None)
    FaultInjector(rig.env, rig.topology).outages(OUTAGES)

    probes: dict[str, list] = {name: [] for name in app.placement}
    ok = bad = 0
    while rig.env.now < HORIZON:
        target = rig.env.now + PROBE_STEP
        for name in list(app.placement):
            ior = app.facet_ior(name, "value")
            started = rig.env.now
            try:
                rig.run(until=hub.orb.invoke(
                    ior, READ, (), timeout=PROBE_TIMEOUT,
                    meter="avail.probe"))
                probes[name].append((started, True))
                ok += 1
            except SystemException:
                probes[name].append((started, False))
                bad += 1
        if rig.env.now < target:
            rig.run(until=target)
    if sup is not None:
        sup.stop()

    # contiguous failed-probe windows = per-instance unavailability
    windows = []
    for seq in probes.values():
        down_since = None
        for t, good in seq:
            if good and down_since is not None:
                windows.append(t - down_since)
                down_since = None
            elif not good and down_since is None:
                down_since = t
        if down_since is not None:
            windows.append(HORIZON - down_since)
    recoveries = [r for r in (sup.recoveries if sup else [])
                  if r.kind == "replan"]
    return {
        "availability": ok / (ok + bad),
        "recoveries": len(recoveries),
        "deferred": rig.metrics.get("supervisor.recovery.deferred"),
        "mean_outage": sum(windows) / len(windows) if windows else 0.0,
        "max_outage": max(windows, default=0.0),
        "all_live": all(rig.topology.host(h).alive
                        for h in app.placement.values()),
    }


def _check(healed: dict, baseline: dict) -> None:
    assert healed["availability"] > baseline["availability"], (
        healed, baseline)
    assert healed["recoveries"] >= 2
    assert healed["all_live"] and not baseline["all_live"]
    assert healed["max_outage"] < baseline["max_outage"]


def test_availability_under_churn(benchmark, capsys):
    healed = run(True)
    baseline = run(False)
    benchmark.pedantic(lambda: run(True, seed=1), rounds=1, iterations=1)
    rows = [
        ["supervised", f"{healed['availability'] * 100:.1f} %",
         healed["recoveries"], f"{healed['mean_outage']:.1f} s",
         f"{healed['max_outage']:.1f} s", healed["all_live"]],
        ["unsupervised", f"{baseline['availability'] * 100:.1f} %",
         baseline["recoveries"], f"{baseline['mean_outage']:.1f} s",
         f"{baseline['max_outage']:.1f} s", baseline["all_live"]],
    ]
    report(capsys,
           "C14: facet availability under two host outages, probe 2 Hz",
           ["deployment", "availability", "recoveries", "mean outage",
            "max outage", "all instances live"], rows,
           note="second outage outlasts the run: only the supervised "
                "assembly gets that instance back (re-planned within "
                "~one supervision interval)")
    _check(healed, baseline)
    stash(benchmark,
          availability_supervised=healed["availability"],
          availability_baseline=baseline["availability"],
          mean_outage_supervised=healed["mean_outage"],
          max_outage_baseline=baseline["max_outage"],
          recoveries=healed["recoveries"])


def selftest() -> int:
    healed = run(True)
    baseline = run(False)
    _check(healed, baseline)
    print("bench_availability selftest ok: "
          f"supervised {healed['availability'] * 100:.1f}% vs "
          f"baseline {baseline['availability'] * 100:.1f}% "
          f"({healed['recoveries']} recoveries, mean outage "
          f"{healed['mean_outage']:.1f}s vs {baseline['mean_outage']:.1f}s)")
    return 0


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="availability-under-churn benchmark")
    parser.add_argument("--selftest", action="store_true",
                        help="run the assertion-only gate (no tables)")
    args = parser.parse_args()
    if args.selftest:
        sys.exit(selftest())
    parser.error("run via pytest for the full report, or pass --selftest")

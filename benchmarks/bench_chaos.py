"""C19 — seeded chaos campaigns with invariant monitors.

The robustness experiment: drive the full standard system (clustered
WAN topology, federated registry, supervised assembly, fenced replica
group, retrying clients) through seeded fault campaigns and demand
that every system invariant holds at quiescence — resolvability of
running providers through both the ring and the flood tier, single
fenced primary, no orphan incarnations, gossip membership converged
to ground truth, no wedged breaker/budget/reply, and no control loop
dead of an unhandled error.

Five campaign *profiles* weight the fault vocabulary differently, so
the suite leans on different subsystems:

- **crash-heavy** — host churn; exercises the supervisor replan path
  and replica promotion.
- **partition-heavy** — cluster cuts and WAN flaps; exercises gossip
  re-convergence and the resolver's dead-owner fallbacks.
- **corruption-heavy** — wire fault storms; exercises decode
  defensiveness (checkpoint corruption, phantom host ids).
- **timing** — clock skew and slow hosts; exercises epoch clamping
  and deadline sweeping.
- **mixed** — the default weights, everything at once.

Reported per profile: actions applied, invariant checks run,
violations (must be zero), client success/error counts, and the
recovery counters the campaign provoked.  Reports are byte-
reproducible from the seed; the selftest replays one and compares
digests.

Run ``python benchmarks/bench_chaos.py --selftest`` for the
assertion-only gate wired into ``make check`` (short horizon, same
invariants); ``make chaos`` runs longer campaigns via the CLI.
"""

from _harness import report, stash
from repro.chaos import CampaignConfig, run_campaign

# One profile = (name, seed, weights).  Seeds are fixed so the whole
# suite is reproducible; each profile also stresses a distinct mix.
PROFILES = [
    ("crash-heavy", 1101, (
        ("crash_host", 5.0), ("partition_cluster", 1.0),
        ("slow_host", 1.0))),
    ("partition-heavy", 1102, (
        ("partition_cluster", 3.0), ("wan_flap", 3.0),
        ("isolate_owner", 2.0), ("crash_host", 1.0))),
    ("corruption-heavy", 1103, (
        ("wire_storm", 4.0), ("crash_host", 1.0),
        ("wan_flap", 1.0))),
    ("timing", 1104, (
        ("clock_skew", 3.0), ("slow_host", 3.0),
        ("crash_host", 1.0))),
    ("mixed", 1105, CampaignConfig().weights),
]

SHORT = dict(horizon=15.0, mean_gap=2.0, mean_dwell=4.0, drain=6.0)
FULL = dict(horizon=45.0, mean_gap=3.0, mean_dwell=6.0, drain=6.0)


def _run_profiles(scale: dict) -> list[dict]:
    rows = []
    for name, seed, weights in PROFILES:
        config = CampaignConfig(weights=tuple(weights), **scale)
        rep = run_campaign(seed, config=config)
        rows.append({
            "profile": name, "seed": seed, "report": rep,
            "actions": sum(1 for a in rep.actions
                           if not a.kind.startswith("heal.")
                           and a.target != "-"),
            "checks": len(rep.checks),
            "violations": len(rep.violations),
            "client_ok": rep.metrics.get("client.ok", 0),
            "client_errors": rep.metrics.get("client.errors", 0),
            "recoveries": rep.metrics.get("supervisor.recoveries", 0.0),
            "fenced": rep.metrics.get("supervisor.repair.fenced", 0.0),
            "flood": rep.metrics.get(
                "federation.lookup.flood_fallback", 0.0),
        })
    return rows


def _check(rows: list[dict]) -> None:
    assert len(rows) >= 5, "need at least five campaign profiles"
    assert len({r["seed"] for r in rows}) == len(rows), \
        "profile seeds must be distinct"
    for row in rows:
        rep = row["report"]
        assert rep.ok, (f"profile {row['profile']} violated "
                        f"invariants:\n{rep.render_text()}")
        assert row["actions"] >= 1, \
            f"profile {row['profile']} applied no faults"
        quiescent = [c for c in rep.checks if c.phase == "quiescence"]
        assert quiescent and all(c.ok for c in quiescent)
    assert sum(r["client_ok"] for r in rows) > 0, \
        "client traffic never succeeded"


def _check_reproducible(rows: list[dict], scale: dict) -> None:
    """A report is its own reproducer: same seed, same bytes."""
    name, seed, weights = PROFILES[0]
    config = CampaignConfig(weights=tuple(weights), **scale)
    again = run_campaign(seed, config=config)
    saved = rows[0]["report"]
    assert again.to_json() == saved.to_json(), \
        f"replay of profile {name} (seed {seed}) diverged"


def test_chaos_campaigns(benchmark, capsys):
    rows_box = {}

    def run():
        rows_box["rows"] = _run_profiles(SHORT)

    benchmark.pedantic(run, rounds=1, iterations=1)
    rows = rows_box["rows"]
    _check(rows)
    report(
        capsys, "C19: chaos campaigns (invariants at quiescence)",
        ["profile", "seed", "actions", "checks", "violations",
         "client ok", "client err", "recoveries", "fenced", "flood"],
        [[r["profile"], r["seed"], r["actions"], r["checks"],
          r["violations"], r["client_ok"], r["client_errors"],
          r["recoveries"], r["fenced"], r["flood"]] for r in rows],
        note="every campaign must end with zero violations; reports "
             "replay byte-for-byte from the seed")
    stash(benchmark,
          profiles=len(rows),
          actions=sum(r["actions"] for r in rows),
          checks=sum(r["checks"] for r in rows),
          violations=sum(r["violations"] for r in rows),
          client_ok=sum(r["client_ok"] for r in rows),
          client_errors=sum(r["client_errors"] for r in rows),
          recoveries=sum(r["recoveries"] for r in rows),
          digests=[r["report"].digest() for r in rows])


def selftest() -> int:
    rows = _run_profiles(SHORT)
    _check(rows)
    _check_reproducible(rows, SHORT)
    actions = sum(r["actions"] for r in rows)
    checks = sum(r["checks"] for r in rows)
    print(f"bench_chaos selftest ok: {len(rows)} campaigns, "
          f"{actions} faults injected, {checks} invariant checks, "
          f"0 violations, replay byte-identical")
    return 0


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="seeded chaos campaigns with invariant monitors")
    parser.add_argument("--selftest", action="store_true",
                        help="run the assertion-only gate (no tables)")
    args = parser.parse_args()
    if args.selftest:
        sys.exit(selftest())
    parser.error("run via pytest for the full report, or pass --selftest")

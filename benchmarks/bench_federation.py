"""C18 — federated (sharded) registry vs the flat flood baseline.

The federation PR's scaling claim: partitioning the provider-record
space over a ring of shard owners keeps registry lookups fast on large
populations, because a resolver asks **only its repo-id's shard
neighborhood** — O(replication) invocations — instead of interrogating
the population.  The flat baseline is the same one benchmark C3 uses:
:class:`~repro.registry.queries.FloodResolver`, which walks every
node's registry per query, O(N) invocations over the WAN.

Both arms run the same seeded query schedule on the same
``clustered(C, S)`` topology (the full run uses 32x32 = 1024 hosts)
with the same providers:

- **sharded** — :class:`FederatedRegistry` with one owner per cluster
  (kept off the WAN gateways); each lookup is one ``Shard.lookup`` at
  the repo-id's primary ring owner.
- **flat flood** — no registry infrastructure at all (zero maintenance
  traffic); each lookup interrogates every host in turn.

Measured per arm: lookup latency percentiles in **simulated** seconds
(the network model serializes every link FIFO, so the flood's O(N)
WAN crossings are what its p99 captures) plus total wire messages
(which includes the sharded arm's publish/gossip maintenance — the
price it pays for O(1) lookups).  The sharded arm then takes churn:
the primary owners of sampled repo-ids are killed and dropped from the
ring, a surviving owner's cluster is partitioned at the WAN past the
failure-detection timeout and healed, and we measure the sim-time
(and gossip rounds) from the heal until the surviving owners'
membership views agree and the rebalanced records converge on their
new owners.

Run ``python benchmarks/bench_federation.py --selftest`` for the
assertion-only mode wired into ``make check`` (smaller topology, same
gates: sharded p99 <= flat p99, bounded post-churn convergence).
"""

from _harness import report, stash
from repro.idl import compile_idl
from repro.packaging.binaries import GLOBAL_BINARIES, synthetic_payload
from repro.packaging.package import ComponentPackage, PackageBuilder
from repro.registry.federation import FederatedRegistry, FederationConfig
from repro.registry.federation.shard import SHARD_IFACE, shard_ior
from repro.registry.mrm import MrmConfig
from repro.registry.queries import FloodResolver
from repro.testing import CounterExecutor, SimRig
from repro.sim.topology import clustered
from repro.xmlmeta.descriptors import (
    ComponentTypeDescriptor,
    ImplementationDescriptor,
    PortDecl,
    QoSSpec,
    SoftwareDescriptor,
)
from repro.xmlmeta.versions import Version

_SHARD_LOOKUP = SHARD_IFACE.operations["lookup"]

# The full C18 run (the paper-scale datapoint) and the fast gate run.
SCALE_FULL = dict(clusters=32, size=32, owners=32, components=24,
                  queries=32, window=64.0, update=10.0, gossip=2.0,
                  drain=4500.0)
SCALE_SMALL = dict(clusters=8, size=8, owners=8, components=8,
                   queries=24, window=24.0, update=5.0, gossip=1.0,
                   drain=600.0)
SCALE_WARM = dict(clusters=2, size=4, owners=2, components=2,
                  queries=4, window=4.0, update=2.0, gossip=1.0,
                  drain=60.0)

# ---------------------------------------------------------------------------
# A family of distinct service interfaces, so lookups spread over the
# ring instead of all hashing to one shard neighborhood.
# ---------------------------------------------------------------------------

K_MAX = max(SCALE_FULL["components"], SCALE_SMALL["components"])

_BENCH_IDL = ('#pragma prefix "corbalc"\nmodule BenchFed {\n'
              + "".join(f"  interface Svc{i} {{ long ping(); }};\n"
                        for i in range(K_MAX))
              + "};\n")
_BENCH_MOD = compile_idl(_BENCH_IDL).BenchFed
IFACES = [getattr(_BENCH_MOD, f"Svc{i}") for i in range(K_MAX)]


def service_package(index: int) -> ComponentPackage:
    """An installable provider of the ``index``-th bench interface."""
    iface = IFACES[index]
    entry = "demo.counter"
    GLOBAL_BINARIES.register(entry, CounterExecutor)
    name = f"BenchSvc{index}"
    soft = SoftwareDescriptor(
        name=name, version=Version.parse("1.0.0"), vendor="repro-bench",
        abstract="Synthetic federation-benchmark service.",
        implementations=[ImplementationDescriptor(
            "*", "*", "*", entry, "bin/any/svc")],
    )
    comp = ComponentTypeDescriptor(
        name=name,
        provides=[PortDecl("svc", iface.repo_id)],
        qos=QoSSpec(cpu_units=1.0, memory_mb=2.0),
    )
    builder = PackageBuilder(soft, comp)
    builder.add_idl("benchfed", _BENCH_IDL)
    builder.add_binary("bin/any/svc", synthetic_payload(500, seed=18))
    return ComponentPackage(builder.build())


# ---------------------------------------------------------------------------
# Rig assembly
# ---------------------------------------------------------------------------

def _provider_host(index: int, clusters: int, size: int) -> str:
    """Spread providers over clusters on the h1 slot (h0 = gateway)."""
    return f"c{index % clusters}h{1 + (index // clusters) % (size - 1)}"


def _make_rig(scale: dict, seed: int) -> tuple:
    # The chords backbone (gateway ring + power-of-two chords) keeps
    # the WAN diameter logarithmic; a 32-gateway chain would congest on
    # its middle links and swamp both arms with a topology artifact.
    rig = SimRig(clustered(scale["clusters"], scale["size"],
                           backbone="chords"), seed=seed)
    repo_ids = []
    for i in range(scale["components"]):
        host = _provider_host(i, scale["clusters"], scale["size"])
        rig.node(host).install_package(service_package(i))
        repo_ids.append(IFACES[i].repo_id)
    return rig, repo_ids


def _owner_hosts(scale: dict) -> list[str]:
    """One owner per cluster on the h2 slot: off the WAN gateways (h0)
    and off the provider slot (h1), so killing an owner in the churn
    phase takes down a shard, not a cluster's connectivity."""
    clusters, size = scale["clusters"], scale["size"]
    return [f"c{i % clusters}h{2 + (i // clusters) % (size - 2)}"
            for i in range(scale["owners"])]


def _query_load(rig, make_find, scale, latencies):
    """Launch the seeded query schedule: ``make_find(host, repo_id)``
    returns the arm's lookup generator, yielding its candidate count."""
    env = rig.env
    rng = rig.rngs.stream("bench.federation.load")
    hosts = rig.topology.host_ids()
    repo_ids = [IFACES[i].repo_id for i in range(scale["components"])]

    def one_query(delay, host, repo_id):
        yield env.timeout(delay)
        t0 = env.now
        count = yield from make_find(host, repo_id)
        latencies.append((env.now - t0, count))

    for _ in range(scale["queries"]):
        delay = float(rng.uniform(0.0, scale["window"]))
        host = hosts[int(rng.integers(0, len(hosts)))]
        repo_id = repo_ids[int(rng.integers(0, len(repo_ids)))]
        env.process(one_query(delay, host, repo_id))


def _drain(rig, latencies, n_queries, deadline):
    while len(latencies) < n_queries and rig.env.now < deadline:
        rig.run(until=min(rig.env.now + 5.0, deadline))


def _percentile(values, q):
    ordered = sorted(values)
    idx = int(round(q / 100.0 * (len(ordered) - 1)))
    return ordered[min(idx, len(ordered) - 1)]


def _summary(latencies, n_queries, rig, scale) -> dict:
    waits = [w for w, _count in latencies]
    return {
        "hosts": scale["clusters"] * scale["size"],
        "queries": len(latencies),
        "lost": n_queries - len(latencies),
        "answered": sum(1 for _w, count in latencies if count > 0),
        "p50_s": _percentile(waits, 50) if waits else None,
        "p99_s": _percentile(waits, 99) if waits else None,
        "max_s": max(waits) if waits else None,
        "messages": rig.metrics.get("net.messages"),
    }


# ---------------------------------------------------------------------------
# The two arms
# ---------------------------------------------------------------------------

def run_sharded(scale: dict, seed: int = 0) -> dict:
    rig, repo_ids = _make_rig(scale, seed)
    fed = FederatedRegistry(rig.nodes, FederationConfig(
        owners=scale["owners"], replication=2,
        update_interval=scale["update"],
        gossip_interval=scale["gossip"]))
    fed.deploy(owner_hosts=_owner_hosts(scale))
    rig.run(until=fed.settle_time())

    def shard_find(host, repo_id):
        owner = fed.ring.owners(repo_id, 1)[0]
        values = yield rig.node(host).orb.invoke(
            shard_ior(owner), _SHARD_LOOKUP, (repo_id, 0.0, 0.0, 0.0),
            timeout=scale["drain"], meter="bench.lookup")
        return len(values)

    latencies = []
    _query_load(rig, shard_find, scale, latencies)
    _drain(rig, latencies, scale["queries"],
           deadline=rig.env.now + scale["window"] + scale["drain"])
    out = _summary(latencies, scale["queries"], rig, scale)
    out["owners"] = scale["owners"]
    out.update(_churn_convergence(rig, fed, repo_ids, scale))
    return out


def _churn_convergence(rig, fed, repo_ids, scale) -> dict:
    """Scripted churn, then time re-convergence.

    Two stressors back to back: the primary owners of the first
    sampled repo-ids are killed and dropped from the ring, and one
    surviving owner's whole cluster is partitioned at its WAN gateway
    for longer than the failure-detection timeout — so the fleet
    genuinely marks it dead and its records go stale — before the
    partition heals.  Convergence (owner views agree + probe records
    identical across replicas) is measured from the heal: the time the
    epidemic plane needs to absorb both the membership change and the
    blackout's stale state.
    """
    victims = []
    for repo_id in repo_ids:
        primary = fed.ring.owners(repo_id, 1)[0]
        if primary not in victims:
            victims.append(primary)
        if len(victims) == 2:
            break
    for victim in victims:
        rig.topology.set_host_state(victim, alive=False)
        fed.remove_owner(victim)

    # Partition: cut every WAN link of a surviving owner's gateway.
    isolated = sorted(fed.agents)[0]
    gateway = isolated.split("h")[0] + "h0"
    wan = [link for link in rig.topology.links()
           if link.link_class.name == "wan"
           and gateway in (link.a, link.b)]
    for link in wan:
        rig.topology.set_link_state(link.a, link.b, up=False)
    blackout = 3.0 * scale["update"] + 2.0 * scale["gossip"]
    rig.run(until=rig.env.now + blackout)
    for link in wan:
        rig.topology.set_link_state(link.a, link.b, up=True)

    start = rig.env.now
    probe = repo_ids[: min(4, len(repo_ids))]

    def converged():
        return (fed.owner_views_agree()
                and all(fed.records_converged(r) for r in probe))

    deadline = start + 60.0 * scale["gossip"] + 3.0 * scale["update"]
    while not converged() and rig.env.now < deadline:
        rig.run(until=rig.env.now + scale["gossip"])
    seconds = rig.env.now - start
    return {
        "churn_killed": len(victims),
        "partition_s": blackout,
        "converged": converged(),
        "convergence_s": seconds,
        "convergence_rounds": seconds / scale["gossip"],
    }


def run_flood(scale: dict, seed: int = 0) -> dict:
    rig, _repo_ids = _make_rig(scale, seed)
    hosts = rig.topology.host_ids()
    config = MrmConfig(query_timeout=2.0)

    def flood_find(host, repo_id):
        resolver = FloodResolver(rig.node(host), hosts, config)
        candidates = yield from resolver._find(repo_id, QoSSpec())
        return len(candidates)

    latencies = []
    _query_load(rig, flood_find, scale, latencies)
    _drain(rig, latencies, scale["queries"],
           deadline=rig.env.now + scale["window"] + scale["drain"])
    out = _summary(latencies, scale["queries"], rig, scale)
    out["owners"] = 0
    return out


# ---------------------------------------------------------------------------
# Measurement, gates, reporting
# ---------------------------------------------------------------------------

def _measure(scale: dict) -> tuple:
    # First touches pay one-off codec generation; warm both arms on a
    # toy topology so that cost never lands in the measured runs.
    run_sharded(SCALE_WARM)
    run_flood(SCALE_WARM)
    return run_sharded(scale), run_flood(scale)


def _check(sharded: dict, flood: dict, scale: dict) -> None:
    # The sharded registry answers every lookup, with candidates.
    assert sharded["lost"] == 0, sharded
    assert sharded["answered"] == sharded["queries"], sharded
    # The flood arm must complete enough queries to make its
    # percentiles meaningful (it may lose some to the drain deadline
    # at full scale — itself a scaling datapoint).
    assert flood["queries"] >= scale["queries"] // 2, flood
    # The headline gate: shard-neighborhood lookups keep tail latency
    # at or below the flat flood's on the same population and load.
    assert sharded["p99_s"] <= flood["p99_s"], (
        sharded["p99_s"], flood["p99_s"])
    assert sharded["p50_s"] <= flood["p50_s"], (
        sharded["p50_s"], flood["p50_s"])
    # Post-churn the gossip plane re-converges within bounded rounds.
    assert sharded["converged"], sharded
    assert sharded["convergence_rounds"] <= (
        3 * FederationConfig().full_sync_every
        + scale["update"] / scale["gossip"]), sharded


def test_federation_scaling(benchmark, capsys):
    sharded, flood = _measure(SCALE_FULL)
    benchmark.pedantic(lambda: run_sharded(SCALE_WARM, seed=1),
                       rounds=1, iterations=1)
    rows = [
        [f"sharded ({sharded['owners']} owners)",
         f"{sharded['p50_s']:.3f}", f"{sharded['p99_s']:.3f}",
         sharded["queries"], f"{sharded['messages']:,.0f}"],
        ["flat flood",
         f"{flood['p50_s']:.3f}", f"{flood['p99_s']:.3f}",
         flood["queries"], f"{flood['messages']:,.0f}"],
    ]
    report(capsys,
           f"C18: registry lookup on {sharded['hosts']} hosts "
           f"({SCALE_FULL['queries']} queries / "
           f"{SCALE_FULL['window']:.0f}s)",
           ["registry", "p50 (sim s)", "p99 (sim s)", "completed",
            "net msgs"], rows,
           note="flood interrogates all hosts per query; sharded asks "
                "one ring owner (its msgs include publish/gossip "
                "maintenance). post-churn convergence: "
                f"{sharded['convergence_s']:.1f}s "
                f"({sharded['convergence_rounds']:.0f} gossip rounds) "
                f"after killing {sharded['churn_killed']} owners and "
                f"healing a {sharded['partition_s']:.0f}s partition")
    _check(sharded, flood, SCALE_FULL)
    stash(benchmark,
          hosts=sharded["hosts"],
          p50_sharded=sharded["p50_s"], p99_sharded=sharded["p99_s"],
          p50_flood=flood["p50_s"], p99_flood=flood["p99_s"],
          speedup_p99=flood["p99_s"] / sharded["p99_s"],
          convergence_s=sharded["convergence_s"],
          convergence_rounds=sharded["convergence_rounds"],
          churn_killed=sharded["churn_killed"],
          partition_s=sharded["partition_s"],
          messages_sharded=sharded["messages"],
          messages_flood=flood["messages"])


def selftest() -> int:
    sharded, flood = _measure(SCALE_SMALL)
    _check(sharded, flood, SCALE_SMALL)
    print("bench_federation selftest ok: "
          f"{sharded['hosts']} hosts, p99 {sharded['p99_s']:.3f}s "
          f"(sharded) vs {flood['p99_s']:.3f}s (flood), churn "
          f"converged in {sharded['convergence_rounds']:.0f} gossip "
          "rounds")
    return 0


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="federated vs flat registry scaling benchmark")
    parser.add_argument("--selftest", action="store_true",
                        help="run the assertion-only gate (no tables)")
    args = parser.parse_args()
    if args.selftest:
        sys.exit(selftest())
    parser.error("run via pytest for the full report, or pass --selftest")

"""C5 — peer-replicated MRMs and adaptive replica re-creation (§2.4.3).

"To enhance fault-tolerance, the protocol must allow replicated peer
MRMs per group ...  the protocol must adapt by creating new replicas as
needed and catching replica failures."

We kill the primary MRM and probe resolution every second.  With one
replica, queries fail until the supervisor promotes a replacement; with
two or more, the very next query fails over within its timeout.
"""

from _harness import report, stash
from repro.orb.exceptions import SystemException
from repro.registry.groups import DistributedRegistry, RegistryConfig
from repro.sim.topology import clustered
from repro.testing import COUNTER_IFACE, SimRig, counter_package

KILL_AT = 20.0
PROBE_UNTIL = 80.0


def run(replicas: int, seed: int = 0):
    rig = SimRig(clustered(1, 8), seed=seed)
    rig.node("c0h7").install_package(counter_package())
    cfg = RegistryConfig(update_interval=2.0, replicas=replicas,
                         query_timeout=1.0, supervise=True,
                         supervise_interval=2.0)
    dr = DistributedRegistry(rig.nodes, cfg)
    dr.deploy({"c0": rig.topology.host_ids()})
    rig.run(until=dr.settle_time())

    primary = dr.groups["c0"].mrm_hosts[0]
    rig.run(until=KILL_AT)
    rig.topology.set_host_state(primary, alive=False)

    probes = []
    requester = rig.node("c0h6")
    while rig.env.now < PROBE_UNTIL:
        target = rig.env.now + 1.0
        try:
            started = rig.env.now
            rig.run(until=requester.request_component(
                COUNTER_IFACE.repo_id))
            probes.append((started, True, rig.env.now - started))
        except SystemException:
            probes.append((started, False, None))
        if rig.env.now < target:
            rig.run(until=target)

    failed = [p for p in probes if not p[1]]
    succeeded = [p for p in probes if p[1]]
    # recovery time: first success after the kill
    first_ok = min((p[0] for p in succeeded if p[0] >= KILL_AT),
                   default=float("inf"))
    recovery = first_ok - KILL_AT if first_ok != float("inf") else None
    promotions = sum(len(s.promotions) for s in dr.supervisors)
    mean_latency = (sum(p[2] for p in succeeded) / len(succeeded)
                    if succeeded else float("nan"))
    return {
        "failed": len(failed),
        "total": len(probes),
        "recovery": recovery,
        "promotions": promotions,
        "mean_latency": mean_latency,
    }


def test_mrm_failover(benchmark, capsys):
    rows = []
    results = {}
    for replicas in (1, 2, 3):
        r = run(replicas)
        results[replicas] = r
        rows.append([
            replicas,
            f"{r['failed']}/{r['total']}",
            f"{r['recovery']:.1f} s" if r["recovery"] is not None else "-",
            r["promotions"],
            f"{r['mean_latency']*1000:.0f} ms",
        ])
    benchmark.pedantic(lambda: run(2), rounds=1, iterations=1)
    report(capsys, "C5: kill the primary MRM at t=20s, probe every 1s",
           ["MRM replicas", "failed queries", "service recovery",
            "replicas re-created", "mean query latency"], rows,
           note="with >=2 replicas queries fail over within one timeout; "
                "the supervisor then re-creates the lost replica")
    assert results[2]["failed"] <= results[1]["failed"]
    assert results[2]["recovery"] <= results[1]["recovery"]
    # adaptation: the killed replica got re-created in every setup
    assert all(r["promotions"] >= 1 for r in results.values())
    stash(benchmark, **{f"recovery_r{k}": v["recovery"]
                        for k, v in results.items()})

"""C3 — hierarchical vs. flat resource lookup (§2.4.3).

"Hierarchical protocol: the protocol must allow logical grouping and
incremental resource lookup ...  This reduces network load and exploits
locality."

We sweep network size (clusters x hosts) and measure messages and WAN
(backbone) bytes per query for:

- the hierarchical MRM protocol, querying a component that is in the
  requester's own cluster (locality hit) and one that is in a far
  cluster (escalation);
- the flat baseline, which floods every node's registry.
"""

from _harness import report, stash
from repro.registry.groups import (
    DistributedRegistry,
    RegistryConfig,
    groups_by_cluster,
)
from repro.registry.queries import FloodResolver
from repro.sim.topology import clustered
from repro.testing import COUNTER_IFACE, SimRig, counter_package


def make(clusters, size, seed=0):
    rig = SimRig(clustered(clusters, size), seed=seed)
    # one provider in the requester's cluster, one in the far cluster
    rig.node("c0h1").install_package(counter_package(name="NearComp"))
    far = f"c{clusters-1}h1"
    rig.node(far).install_package(counter_package(name="FarComp"))
    cfg = RegistryConfig(update_interval=2.0)
    dr = DistributedRegistry(rig.nodes, cfg)
    dr.deploy(groups_by_cluster(rig.topology.host_ids()))
    rig.run(until=dr.settle_time())
    return rig, dr, cfg


def measure(clusters, size):
    n = clusters * size
    # -- hierarchical, local hit
    rig, dr, cfg = make(clusters, size)
    before_m = rig.metrics.get("registry.query.msgs")
    before_b = rig.metrics.get("net.bytes.backbone")
    rig.run(until=rig.node("c0h2").request_component(
        COUNTER_IFACE.repo_id))
    local_msgs = rig.metrics.get("registry.query.msgs") - before_m
    local_wan = rig.metrics.get("net.bytes.backbone") - before_b

    # -- hierarchical, cross-cluster (remove the near provider first)
    rig2, dr2, _ = make(clusters, size)
    rig2.node("c0h1").repository.remove(
        "NearComp", rig2.node("c0h1").repository.lookup("NearComp").version)
    rig2.run(until=rig2.env.now + 2 * 2.0 + 0.5)  # view refresh
    before_m = rig2.metrics.get("registry.query.msgs")
    rig2.run(until=rig2.node("c0h2").request_component(
        COUNTER_IFACE.repo_id))
    far_msgs = rig2.metrics.get("registry.query.msgs") - before_m

    # -- flood baseline
    rig3, dr3, cfg3 = make(clusters, size)
    flood = FloodResolver(rig3.node("c0h2"), rig3.topology.host_ids(),
                          cfg3.mrm_config())
    before_m = rig3.metrics.get("registry.flood.msgs")
    rig3.run(until=flood.resolve(COUNTER_IFACE.repo_id))
    flood_msgs = rig3.metrics.get("registry.flood.msgs") - before_m

    return n, local_msgs, far_msgs, flood_msgs, local_wan


def test_hierarchy_vs_flood(benchmark, capsys):
    rows = []
    shapes = [(2, 4), (4, 4), (4, 8), (8, 8)]
    data = {}
    for clusters, size in shapes:
        n, local_msgs, far_msgs, flood_msgs, local_wan = measure(
            clusters, size)
        rows.append([f"{n} ({clusters}x{size})",
                     int(local_msgs), int(far_msgs), int(flood_msgs),
                     int(local_wan)])
        data[n] = (local_msgs, far_msgs, flood_msgs)

    benchmark.pedantic(lambda: measure(2, 4), rounds=1, iterations=1)
    report(capsys, "C3: query cost vs network size",
           ["hosts", "hier msgs (local hit)", "hier msgs (escalate)",
            "flood msgs", "WAN bytes (local hit)"], rows,
           note="flood grows linearly with N; hierarchical stays flat "
                "for local hits and bounded by tree depth otherwise")
    biggest = max(data)
    local_msgs, far_msgs, flood_msgs = data[biggest]
    assert local_msgs <= 2              # one query to the group MRM
    assert flood_msgs > far_msgs        # hierarchy wins at scale
    assert flood_msgs >= biggest - 1    # flood really is O(N)
    stash(benchmark, **{f"n{k}_flood": v[2] for k, v in data.items()})


def measure_depth(levels: int):
    """36 hosts organized as 2 or 3 MRM levels; far-provider query."""
    rig = SimRig(clustered(6, 6), seed=9)
    rig.node("c5h5").install_package(counter_package())
    cfg = RegistryConfig(update_interval=2.0, query_ttl=8)
    dr = DistributedRegistry(rig.nodes, cfg)
    hosts = rig.topology.host_ids()

    def cluster(i):
        return [h for h in hosts if h.startswith(f"c{i}")]

    if levels == 2:
        dr.deploy({f"c{i}": cluster(i) for i in range(6)})
    else:
        dr.deploy_tree({
            "west": {f"c{i}": cluster(i) for i in range(3)},
            "east": {f"c{i}": cluster(i) for i in range(3, 6)},
        })
    rig.run(until=dr.settle_time(rounds=3))
    m0 = rig.metrics.get("registry.query.msgs")
    ior = rig.run(until=rig.node("c0h1").request_component(
        COUNTER_IFACE.repo_id))
    assert ior.host_id == "c5h5"
    query_msgs = rig.metrics.get("registry.query.msgs") - m0
    maint = rig.metrics.get("registry.hier.msgs")
    return query_msgs, maint


def test_hierarchy_depth_ablation(benchmark, capsys):
    """Ablation: 2 vs 3 MRM levels over the same 36 hosts."""
    rows = []
    results = {}
    for levels in (2, 3):
        query_msgs, maint = measure_depth(levels)
        results[levels] = (query_msgs, maint)
        rows.append([f"{levels} levels", int(query_msgs), int(maint)])
    benchmark.pedantic(lambda: measure_depth(2), rounds=1, iterations=1)
    report(capsys, "C3b ablation: MRM hierarchy depth (36 hosts, "
                   "worst-case cross-network query)",
           ["hierarchy", "query msgs (worst case)",
            "maintenance msgs (warm-up)"], rows,
           note="deeper trees add hops to worst-case queries but cut "
                "the root's fan-in (6 children -> 2)")
    # both depths resolve; depth changes hop count, not correctness
    assert results[3][0] >= results[2][0]
    stash(benchmark, q2=results[2][0], q3=results[3][0])

"""Run benchmark suites and distill headline JSON records.

Not a pytest suite: run it as a script.  The default (``--suite orb``)
executes ``bench_orb_micro.py`` under pytest-benchmark, extracts the
headline numbers (CDR marshalling MB/s, invocations per second),
compares them against the recorded pre-optimisation interpreter
baseline, and writes ``BENCH_orb.json`` at the repository root.
``--suite eventbus`` runs ``bench_eventbus.py`` (C17) the same way and
writes ``BENCH_eventbus.json``; ``--suite federation`` runs
``bench_federation.py`` (C18) and writes ``BENCH_federation.json``.
All keep a ``history`` array of prior ``current`` blocks across
regenerations.

    PYTHONPATH=src python benchmarks/bench_to_json.py
    PYTHONPATH=src python benchmarks/bench_to_json.py --suite eventbus
    PYTHONPATH=src python benchmarks/bench_to_json.py --suite federation
"""

from __future__ import annotations

import datetime
import json
import os
import pathlib
import subprocess
import sys
import tempfile

ROOT = pathlib.Path(__file__).resolve().parent.parent
OUT = ROOT / "BENCH_orb.json"
OUT_EVENTBUS = ROOT / "BENCH_eventbus.json"
OUT_FEDERATION = ROOT / "BENCH_federation.json"
OUT_CHAOS = ROOT / "BENCH_chaos.json"
OUT_SIMLINT = ROOT / "BENCH_simlint.json"

# Measured on this repo immediately before the compiled-codec PR, when
# every encode/decode walked the TypeCode interpreter.  Kept here so the
# JSON always records the speedup against a fixed reference point.
BASELINE = {
    "label": "interpreter (pre compiled-plan PR)",
    "cdr_marshal_MB_per_s": 2.55,
    "cdr_marshal_us_per_100_values": 11297.0,
    "cdr_unmarshal_us_per_100_values": 11431.0,
    "invocation_us_per_call": 575.46,
    "calls_per_sec": 1e6 / 575.46,
}


def run_benchmarks(bench_file: str = "bench_orb_micro.py") -> dict:
    """Run *bench_file* and return pytest-benchmark's JSON."""
    with tempfile.TemporaryDirectory() as tmp:
        raw = pathlib.Path(tmp) / "raw.json"
        env = dict(os.environ)
        env["PYTHONPATH"] = str(ROOT / "src") + os.pathsep + str(
            ROOT / "benchmarks")
        subprocess.run(
            [sys.executable, "-m", "pytest",
             str(ROOT / "benchmarks" / bench_file),
             "--benchmark-only", f"--benchmark-json={raw}", "-q",
             "-p", "no:cacheprovider"],
            check=True, cwd=ROOT, env=env,
        )
        return json.loads(raw.read_text())


def load_history(out: pathlib.Path = OUT) -> list:
    """Prior `current` blocks, oldest first, so every regeneration keeps
    the optimisation trail (interpreter -> plans -> generated source)."""
    if not out.exists():
        return []
    try:
        prior = json.loads(out.read_text())
    except (json.JSONDecodeError, OSError):
        return []
    history = list(prior.get("history", []))
    current = prior.get("current")
    if current:
        history.append({"generated": prior.get("generated"), **current})
    return history


def distill(raw: dict, history: list) -> dict:
    by_name = {}
    for bench in raw.get("benchmarks", []):
        name = bench["name"].split("[")[0]
        by_name[name] = {
            "mean_s": bench["stats"]["mean"],
            "stddev_s": bench["stats"]["stddev"],
            "rounds": bench["stats"]["rounds"],
            **bench.get("extra_info", {}),
        }

    marshal = by_name.get("test_cdr_marshal_throughput", {})
    unmarshal = by_name.get("test_cdr_unmarshal_throughput", {})
    invocation = by_name.get("test_invocation_wall_cost", {})

    current = {
        "label": "generated source codecs",
        "cdr_marshal_MB_per_s": marshal.get("mb_per_s"),
        "cdr_unmarshal_MB_per_s": unmarshal.get("mb_per_s"),
        "cdr_marshal_us_per_100_values": (
            marshal["mean_s"] * 1e6 if marshal else None),
        "cdr_unmarshal_us_per_100_values": (
            unmarshal["mean_s"] * 1e6 if unmarshal else None),
        "invocation_us_per_call": invocation.get("per_call_us"),
        "calls_per_sec": (
            1e6 / invocation["per_call_us"]
            if invocation.get("per_call_us") else None),
    }
    codegen = {
        "cache_hits": invocation.get("codegen_cache_hits"),
        "cache_misses": invocation.get("codegen_cache_misses"),
        "encode_calls_per_bench": invocation.get("codegen_encode_calls"),
        "decode_calls_per_bench": invocation.get("codegen_decode_calls"),
    }

    def ratio(key):
        cur, base = current.get(key), BASELINE.get(key)
        return round(cur / base, 2) if cur and base else None

    return {
        "generated": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "bench": "bench_orb_micro.py (C1)",
        "machine": raw.get("machine_info", {}).get("cpu", {}).get(
            "brand_raw", "unknown"),
        "baseline": BASELINE,
        "current": current,
        "codegen": codegen,
        "history": history,
        "speedup": {
            "cdr_marshal": ratio("cdr_marshal_MB_per_s"),
            "calls_per_sec": ratio("calls_per_sec"),
        },
        "raw": by_name,
    }


def distill_eventbus(raw: dict, history: list) -> dict:
    by_name = {}
    for bench in raw.get("benchmarks", []):
        name = bench["name"].split("[")[0]
        by_name[name] = {
            "mean_s": bench["stats"]["mean"],
            "stddev_s": bench["stats"]["stddev"],
            "rounds": bench["stats"]["rounds"],
            **bench.get("extra_info", {}),
        }
    fanout = by_name.get("test_eventbus_fanout", {})
    current = {
        "label": "event bus + batched fan-out + GIOP pipelining",
        "throughput_bus_events_per_s": fanout.get("throughput_bus"),
        "throughput_p2p_events_per_s": fanout.get("throughput_p2p"),
        "speedup": fanout.get("speedup"),
        "messages_bus": fanout.get("messages_bus"),
        "messages_p2p": fanout.get("messages_p2p"),
        "bytes_bus": fanout.get("bytes_bus"),
        "bytes_p2p": fanout.get("bytes_p2p"),
        "batches": fanout.get("batches"),
    }
    return {
        "generated": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "bench": "bench_eventbus.py (C17)",
        "machine": raw.get("machine_info", {}).get("cpu", {}).get(
            "brand_raw", "unknown"),
        "current": current,
        "history": history,
        "raw": by_name,
    }


def distill_federation(raw: dict, history: list) -> dict:
    by_name = {}
    for bench in raw.get("benchmarks", []):
        name = bench["name"].split("[")[0]
        by_name[name] = {
            "mean_s": bench["stats"]["mean"],
            "stddev_s": bench["stats"]["stddev"],
            "rounds": bench["stats"]["rounds"],
            **bench.get("extra_info", {}),
        }
    scaling = by_name.get("test_federation_scaling", {})
    current = {
        "label": "consistent-hash shards + epidemic gossip",
        "hosts": scaling.get("hosts"),
        "lookup_p50_sharded_s": scaling.get("p50_sharded"),
        "lookup_p99_sharded_s": scaling.get("p99_sharded"),
        "lookup_p50_flood_s": scaling.get("p50_flood"),
        "lookup_p99_flood_s": scaling.get("p99_flood"),
        "speedup_p99": scaling.get("speedup_p99"),
        "convergence_s": scaling.get("convergence_s"),
        "convergence_rounds": scaling.get("convergence_rounds"),
        "churn_killed": scaling.get("churn_killed"),
        "partition_s": scaling.get("partition_s"),
        "messages_sharded": scaling.get("messages_sharded"),
        "messages_flood": scaling.get("messages_flood"),
    }
    return {
        "generated": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "bench": "bench_federation.py (C18)",
        "machine": raw.get("machine_info", {}).get("cpu", {}).get(
            "brand_raw", "unknown"),
        "current": current,
        "history": history,
        "raw": by_name,
    }


def distill_chaos(raw: dict, history: list) -> dict:
    by_name = {}
    for bench in raw.get("benchmarks", []):
        name = bench["name"].split("[")[0]
        by_name[name] = {
            "mean_s": bench["stats"]["mean"],
            "stddev_s": bench["stats"]["stddev"],
            "rounds": bench["stats"]["rounds"],
            **bench.get("extra_info", {}),
        }
    campaigns = by_name.get("test_chaos_campaigns", {})
    current = {
        "label": "seeded chaos campaigns + invariant monitors",
        "profiles": campaigns.get("profiles"),
        "actions": campaigns.get("actions"),
        "checks": campaigns.get("checks"),
        "violations": campaigns.get("violations"),
        "client_ok": campaigns.get("client_ok"),
        "client_errors": campaigns.get("client_errors"),
        "recoveries": campaigns.get("recoveries"),
        "report_digests": campaigns.get("digests"),
    }
    return {
        "generated": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "bench": "bench_chaos.py (C19)",
        "machine": raw.get("machine_info", {}).get("cpu", {}).get(
            "brand_raw", "unknown"),
        "current": current,
        "history": history,
        "raw": by_name,
    }


def distill_simlint(raw: dict, history: list) -> dict:
    by_name = {}
    for bench in raw.get("benchmarks", []):
        name = bench["name"].split("[")[0]
        by_name[name] = {
            "mean_s": bench["stats"]["mean"],
            "stddev_s": bench["stats"]["stddev"],
            "rounds": bench["stats"]["rounds"],
            **bench.get("extra_info", {}),
        }
    corpus = by_name.get("test_seeded_defect_detection", {})
    current = {
        "label": "simlint seeded-defect corpus + whole-tree scan",
        "planted_defects": corpus.get("planted"),
        "detected": corpus.get("detected"),
        "false_alarms": corpus.get("false_alarms"),
        "files_scanned": corpus.get("files_scanned"),
        "tree_scan_wall_s": corpus.get("tree_wall_s"),
        "tree_scan_mean_s": corpus.get("mean_s"),
    }
    return {
        "generated": datetime.datetime.now(
            datetime.timezone.utc).isoformat(timespec="seconds"),
        "bench": "bench_simlint.py (C20)",
        "machine": raw.get("machine_info", {}).get("cpu", {}).get(
            "brand_raw", "unknown"),
        "current": current,
        "history": history,
        "raw": by_name,
    }


def main() -> int:
    import argparse

    parser = argparse.ArgumentParser(
        description="distill benchmark suites into BENCH_*.json")
    parser.add_argument("--suite",
                        choices=("orb", "eventbus", "federation",
                                 "chaos", "simlint"),
                        default="orb")
    args = parser.parse_args()

    if args.suite == "simlint":
        result = distill_simlint(run_benchmarks("bench_simlint.py"),
                                 load_history(OUT_SIMLINT))
        OUT_SIMLINT.write_text(json.dumps(result, indent=2) + "\n")
        cur = result["current"]
        print(f"wrote {OUT_SIMLINT}")
        print(f"  {cur['detected']}/{cur['planted_defects']} planted "
              f"defects detected, {cur['false_alarms']} false alarms; "
              f"{cur['files_scanned']} files scanned in "
              f"{cur['tree_scan_wall_s']:.2f}s")
        return 0

    if args.suite == "chaos":
        result = distill_chaos(run_benchmarks("bench_chaos.py"),
                               load_history(OUT_CHAOS))
        OUT_CHAOS.write_text(json.dumps(result, indent=2) + "\n")
        cur = result["current"]
        print(f"wrote {OUT_CHAOS}")
        print(f"  {cur['profiles']} campaign profiles, "
              f"{cur['actions']} faults, {cur['checks']} invariant "
              f"checks, {cur['violations']} violations")
        return 0

    if args.suite == "federation":
        result = distill_federation(
            run_benchmarks("bench_federation.py"),
            load_history(OUT_FEDERATION))
        OUT_FEDERATION.write_text(json.dumps(result, indent=2) + "\n")
        cur = result["current"]
        print(f"wrote {OUT_FEDERATION}")
        print(f"  lookup p99 on {cur['hosts']} hosts: "
              f"{cur['lookup_p99_sharded_s']:.3f}s sharded vs "
              f"{cur['lookup_p99_flood_s']:.3f}s flood "
              f"({cur['speedup_p99']:.1f}x); churn convergence "
              f"{cur['convergence_s']:.1f}s "
              f"({cur['convergence_rounds']:.0f} rounds)")
        return 0

    if args.suite == "eventbus":
        result = distill_eventbus(run_benchmarks("bench_eventbus.py"),
                                  load_history(OUT_EVENTBUS))
        OUT_EVENTBUS.write_text(json.dumps(result, indent=2) + "\n")
        cur = result["current"]
        print(f"wrote {OUT_EVENTBUS}")
        print(f"  fan-out: {cur['throughput_bus_events_per_s']:,.0f} vs "
              f"{cur['throughput_p2p_events_per_s']:,.0f} events/s "
              f"({cur['speedup']:.1f}x), {cur['messages_bus']:.0f} vs "
              f"{cur['messages_p2p']:.0f} messages")
        return 0

    result = distill(run_benchmarks(), load_history())
    OUT.write_text(json.dumps(result, indent=2) + "\n")
    speed = result["speedup"]
    print(f"wrote {OUT}")
    print(f"  CDR marshal: {result['current']['cdr_marshal_MB_per_s']:.1f} "
          f"MB/s ({speed['cdr_marshal']}x vs interpreter baseline)")
    print(f"  invocations: {result['current']['calls_per_sec']:.0f} "
          f"calls/s ({speed['calls_per_sec']}x vs interpreter baseline)")
    return 0


if __name__ == "__main__":
    sys.exit(main())

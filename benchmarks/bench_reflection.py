"""C12 — the reflective port model (§2.4.2).

"In contrast to CCM, the set of external properties of a component is
not fixed and may change at run-time.  ...  CORBA-LC offers operations
which allow modifying the set of ports a component exposes."

Measured: the cost of a reflective port mutation, and the latency until
a remotely-added facet is visible through the node's Component Registry
and through the Distributed Registry's views.
"""

from _harness import report, stash
from repro.components.ports import FacetPort
from repro.registry.groups import DistributedRegistry, RegistryConfig
from repro.registry.view import NodeView
from repro.testing import (
    COUNTER_IFACE,
    counter_package,
    star_rig,
)
from repro.testing import _CounterFacet

INTERVAL = 2.0


def test_port_mutation_cost(benchmark, capsys):
    rig = star_rig(1)
    hub = rig.node("hub")
    hub.install_package(counter_package())
    inst = hub.container.create_instance("Counter")
    counter = [0]

    def mutate():
        name = f"extra{counter[0]}"
        counter[0] += 1
        servant = _CounterFacet(inst.executor)
        ior = hub.orb.adapter("components").activate(
            servant, key=f"{inst.instance_id}.{name}")
        inst.ports.add(FacetPort(name, COUNTER_IFACE.repo_id, servant,
                                 ior))
        inst.ports.remove(name)
        hub.orb.adapter("components").deactivate(
            f"{inst.instance_id}.{name}")

    benchmark(mutate)
    report(capsys, "C12a: reflective port add+remove",
           ["metric", "value"], [
               ["mutations performed", counter[0]],
               ["registry generation",
                hub.registry.generation],
           ],
           note="every mutation bumps the registry generation, so "
                "views and visual builders stay current")
    assert hub.registry.generation >= counter[0]
    stash(benchmark, mutations=counter[0])


def test_new_port_visibility(benchmark, capsys):
    """How long until a run-time-added facet shows up in views?"""
    def once():
        rig = star_rig(3, seed=6)
        hub = rig.node("hub")
        hub.install_package(counter_package())
        dr = DistributedRegistry(
            rig.nodes, RegistryConfig(update_interval=INTERVAL))
        dr.deploy({"g0": rig.topology.host_ids()})
        rig.run(until=dr.settle_time())
        inst = hub.container.create_instance("Counter")

        # add a brand-new facet at run time
        t_add = rig.env.now
        servant = _CounterFacet(inst.executor)
        ior = hub.orb.adapter("components").activate(
            servant, key=f"{inst.instance_id}.extra")
        inst.ports.add(FacetPort("extra", COUNTER_IFACE.repo_id,
                                 servant, ior))

        # local registry reflects it immediately
        local = any(p.name == "extra"
                    for info in hub.registry.instances()
                    for p in info.ports)

        # remote view: visible once the next soft-state report lands
        mrm = dr.groups["g0"].agents[0]

        def visible():
            rec = mrm.members.get("hub")
            if rec is None:
                return False
            return sum(1 for rid, _ in rec.view.running
                       if rid == COUNTER_IFACE.repo_id) >= 2
        while not visible():
            rig.run(until=rig.env.now + 0.1)
        return local, rig.env.now - t_add

    local, remote_latency = benchmark.pedantic(once, rounds=2,
                                               iterations=1)
    report(capsys, "C12b: run-time port visibility",
           ["view", "latency"], [
               ["node Component Registry", "immediate (same event)"],
               ["Distributed Registry (MRM view)",
                f"{remote_latency:.2f} s"],
           ],
           note=f"bounded by the soft-state interval ({INTERVAL:.0f}s); "
                "instances adapt their external properties while running")
    assert local
    assert remote_latency <= INTERVAL + 0.5
    stash(benchmark, remote_latency=remote_latency)

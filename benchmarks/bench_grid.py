"""C9 — grid computing: aggregation speedup + volunteer churn (§3.2).

"Components whose instances must be split and distributed into the
network to perform a highly-parallel task" — we measure the speedup of
the data-parallel Monte-Carlo component as workers grow, and the
overhead volunteer churn imposes on a farmed computation.
"""

import math

from _harness import report, stash
from repro.container.aggregation import AggregationCoordinator
from repro.grid import (
    IdleMonitor,
    MonteCarloPiExecutor,
    VolunteerAgent,
    VolunteerMaster,
    montecarlo_package,
)
from repro.sim.topology import SERVER, star
from repro.testing import SimRig

SAMPLES = 2_000_000


def aggregate(workers: int) -> tuple[float, float]:
    rig = SimRig(star(16, hub_profile=SERVER), seed=1)
    rig.node("hub").install_package(montecarlo_package())
    coordinator = AggregationCoordinator(rig.node("hub"))
    t0 = rig.env.now
    estimate = rig.run(until=coordinator.run(
        "MonteCarloPi", [f"h{i}" for i in range(workers)],
        {"total_samples": SAMPLES, "base_seed": 3}))
    return rig.env.now - t0, estimate


def test_aggregation_speedup(benchmark, capsys):
    rows = []
    times = {}
    for workers in (1, 2, 4, 8, 16):
        elapsed, estimate = aggregate(workers)
        times[workers] = elapsed
        speedup = times[1] / elapsed
        rows.append([workers, f"{elapsed:.2f} s", f"{speedup:.1f}x",
                     f"{speedup/workers*100:.0f}%",
                     f"{estimate:.4f}"])
    benchmark.pedantic(lambda: aggregate(4), rounds=1, iterations=1)
    report(capsys, f"C9a: Monte-Carlo pi, {SAMPLES:,} samples, "
                   "split/gather aggregation",
           ["workers", "sim time", "speedup", "efficiency",
            "pi estimate"], rows,
           note="near-linear until coordination overheads bite")
    assert times[8] < times[1] / 4
    stash(benchmark, **{f"t{w}": t for w, t in times.items()})


def volunteer_run(churny: bool, seed: int = 5):
    rig = SimRig(star(10, hub_profile=SERVER), seed=seed)
    hub = rig.node("hub")
    hub.install_package(montecarlo_package())
    master = VolunteerMaster(hub, "MonteCarloPi", shard_timeout=30.0)
    if churny:
        mean_busy, mean_idle = 8.0, 15.0
    else:
        mean_busy, mean_idle = 1e9, 1e9
    for i in range(10):
        node = rig.node(f"h{i}")
        monitor = IdleMonitor(node, rig.rngs.stream(f"idle.{i}"),
                              mean_busy=mean_busy, mean_idle=mean_idle)
        VolunteerAgent(node, monitor, master.ior)
    # heavy shards: ~5 sim-seconds each on a desktop, so user churn
    # genuinely interleaves with the computation
    shards = [{"samples": 2_000_000, "seed": i} for i in range(20)]
    t0 = rig.env.now
    partials = rig.run(until=master.submit(shards))
    estimate = MonteCarloPiExecutor.merge_values(partials)
    return rig.env.now - t0, estimate, master.requeues


def test_volunteer_churn_overhead(benchmark, capsys):
    stable_t, stable_pi, stable_rq = volunteer_run(False)
    churn_t, churn_pi, churn_rq = volunteer_run(True)
    benchmark.pedantic(lambda: volunteer_run(False),
                       rounds=1, iterations=1)
    report(capsys, "C9b: volunteer computing, 20 shards over 10 "
                   "workstations",
           ["pool", "completion (sim)", "requeues", "pi"], [
               ["all idle, no churn", f"{stable_t:.1f} s", stable_rq,
                f"{stable_pi:.4f}"],
               ["users come and go", f"{churn_t:.1f} s", churn_rq,
                f"{churn_pi:.4f}"],
           ],
           note="churn slows completion but never corrupts the result; "
                "shards from withdrawn volunteers are re-queued")
    assert abs(stable_pi - math.pi) < 0.01
    assert abs(churn_pi - math.pi) < 0.01
    assert churn_t >= stable_t
    stash(benchmark, stable_t=stable_t, churn_t=churn_t)

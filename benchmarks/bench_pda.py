"""C7 — tiny devices as peers (§2 R8, §3.1).

"It allows tiny devices such as Personal Digital Assistants (PDAs) to
be used as normal nodes with limited capabilities: they can use all
components remotely."  Plus the §2.3 packaging requirement: partial
extraction for devices with tiny memory.

Measured: the package-subset saving, the transfer-time saving on the
PDA's wireless link, and the end-to-end latency of the PDA using the
whiteboard entirely remotely.
"""

from _harness import report, stash
from repro.cscw import (
    SURFACE_IFACE,
    display_package,
    gui_part_package,
    whiteboard_package,
)
from repro.orb.exceptions import SystemException
from repro.sim.topology import PDA, SERVER, WIRELESS, Topology
from repro.testing import SimRig


def make_rig():
    topo = Topology()
    topo.add_host("server", SERVER)
    topo.add_host("pda", PDA)
    topo.add_link("server", "pda", WIRELESS)
    return SimRig(topo, seed=3)


def transfer_time(rig, payload: int) -> float:
    """Sim time to push *payload* bytes from server to the PDA."""
    env = rig.env
    done = []
    rig.network.interface("pda").bind(f"xfer{payload}",
                                      lambda m: done.append(env.now))
    start = env.now
    rig.network.interface("server").send("pda", f"xfer{payload}",
                                         b"", payload)
    deadline = env.now + 120.0
    while not done and env.now < deadline:
        rig.run(until=min(env.peek(), deadline))
    return done[0] - start if done else float("inf")


def test_pda_package_subset(benchmark, capsys):
    rig = make_rig()
    full = display_package(multi_platform=True)
    subset = full.extract_subset(PDA.os, PDA.arch, PDA.orb)
    t_full = transfer_time(rig, full.size)
    t_subset = transfer_time(rig, subset.size)
    benchmark.pedantic(
        lambda: full.extract_subset(PDA.os, PDA.arch, PDA.orb),
        rounds=5, iterations=1)
    report(capsys, "C7a: partial package extraction for the PDA",
           ["package", "size", "wireless transfer"], [
               ["full (3 platforms)", f"{full.size} B",
                f"{t_full*1000:.0f} ms"],
               ["PDA subset (1 platform)", f"{subset.size} B",
                f"{t_subset*1000:.0f} ms"],
           ])
    assert subset.size < full.size / 5
    assert t_subset < t_full / 5
    stash(benchmark, full=full.size, subset=subset.size)


def test_pda_remote_usage(benchmark, capsys):
    def scenario():
        rig = make_rig()
        server, pda = rig.node("server"), rig.node("pda")
        server.install_package(whiteboard_package())
        server.install_package(gui_part_package())
        pda.install_package(display_package(multi_platform=True)
                            .extract_subset(PDA.os, PDA.arch, PDA.orb))
        display = pda.container.create_instance("Display")
        board = server.container.create_instance("Whiteboard")
        gui = server.container.create_instance("BoardGui")
        server.container.connect(gui.instance_id, "display",
                                 display.ports.facet("graphics").ior)
        surface = pda.orb.stub(board.ports.facet("surface").ior,
                               SURFACE_IFACE)
        t0 = rig.env.now
        retries = 0
        for i in range(10):
            # the wireless link loses ~1% of messages; retry like any
            # real client would (TRANSIENT/TIMEOUT semantics)
            for _attempt in range(5):
                try:
                    pda.orb.sync(surface.add_stroke({
                        "author": "pda", "x0": float(i), "y0": 0.0,
                        "x1": 0.0, "y1": 1.0, "color": "k"},
                        _timeout=1.0))
                    break
                except SystemException:
                    retries += 1
        rig.run(until=rig.env.now + 2.0)
        per_stroke = (rig.env.now - t0 - 2.0) / 10
        return (per_stroke, display.executor.drawn,
                pda.resources.cpu_committed,
                [i.component_name for i in pda.container.instances()],
                retries)

    per_stroke, drawn, pda_cpu, pda_components, retries = \
        benchmark.pedantic(scenario, rounds=2, iterations=1)
    report(capsys, "C7b: PDA thin client using everything remotely",
           ["metric", "value"], [
               ["stroke round-trip over wireless",
                f"{per_stroke*1000:.1f} ms"],
               ["strokes painted on PDA display", drawn],
               ["retries due to wireless loss", retries],
               ["components running on the PDA", ", ".join(pda_components)],
               ["PDA CPU committed", f"{pda_cpu:.0f} of "
                                     f"{PDA.cpu_power:.0f} units"],
           ],
           note="board + GUI stay on the server; the PDA only hosts its "
                "own display and drives everything through IORs")
    assert pda_components == ["Display"]
    assert drawn >= 9  # a lost event push is possible on a lossy link
    stash(benchmark, per_stroke_ms=per_stroke * 1000, retries=retries)

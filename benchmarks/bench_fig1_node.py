"""E1 — Figure 1: the Logical Internal Node Structure, exercised.

One full node life-cycle: a package arrives through the Component
Acceptor, lands in the Component Repository, is reflected by the
Component Registry, admitted by the Resource Manager, instantiated in
the Container, and resolved through the node.  The benchmark measures
the cost of that cycle and reports what each Fig. 1 box did.
"""

from _harness import report, stash
from repro.testing import COUNTER_IFACE, counter_package, star_rig


def full_cycle():
    rig = star_rig(1)
    hub, h0 = rig.node("hub"), rig.node("h0")
    pkg_bytes = counter_package().data

    # Component Acceptor: remote run-time installation.
    acceptor = h0.service_stub("hub", "acceptor")
    h0.orb.sync(acceptor.install(pkg_bytes))

    # Component Registry reflects the repository...
    registry = h0.service_stub("hub", "registry")
    installed = h0.orb.sync(registry.installed())
    providers = h0.orb.sync(registry.find_providers(COUNTER_IFACE.repo_id))

    # Resource Manager admits, Container instantiates (via the factory).
    factory_ior = h0.orb.sync(registry.factory_of("Counter"))
    from repro.components.factory import FACTORY_IFACE
    factory = h0.orb.stub(factory_ior, FACTORY_IFACE)
    iid = h0.orb.sync(factory.create_instance(""))
    facet = h0.orb.sync(factory.get_facet(iid, "value"))

    # ...and now reflects the running instance too.
    instances = h0.orb.sync(registry.instances())
    running = h0.orb.sync(registry.running_providers(COUNTER_IFACE.repo_id))

    # Use it, then tear down.
    stub = h0.orb.stub(facet, COUNTER_IFACE)
    value = h0.orb.sync(stub.increment(1))
    h0.orb.sync(factory.destroy_instance(iid))

    snap = hub.resources.snapshot()
    return {
        "sim_time": rig.env.now,
        "installed": len(installed),
        "providers": providers,
        "instances_seen": len(instances),
        "running_seen": len(running),
        "value": value,
        "cpu_after_teardown": snap.cpu_committed,
        "wire_bytes": rig.metrics.get("net.bytes"),
        "package_bytes": len(pkg_bytes),
    }


def test_fig1_node_cycle(benchmark, capsys):
    result = benchmark.pedantic(full_cycle, rounds=5, iterations=1)
    assert result["value"] == 1
    assert result["cpu_after_teardown"] == 0.0
    report(capsys, "E1: Fig.1 node cycle "
                   "(accept -> reflect -> admit -> instantiate -> use)",
           ["step/box", "observation"], [
               ["Component Acceptor", f"installed {result['package_bytes']}-byte package remotely"],
               ["Component Repository", f"{result['installed']} component installed"],
               ["Component Registry", f"providers={result['providers']}, "
                                      f"instances={result['instances_seen']}, "
                                      f"running={result['running_seen']}"],
               ["Container + factory", "create/get_facet/destroy all remote"],
               ["Resource Manager", "reservations returned to 0 after teardown"],
               ["whole cycle", f"{result['sim_time']*1000:.1f} ms simulated, "
                               f"{int(result['wire_bytes'])} wire bytes"],
           ])
    stash(benchmark, **{k: v for k, v in result.items()
                        if isinstance(v, (int, float))})

"""C16 — runtime failures prevented by the static deployment gate.

Five assemblies, each seeded with one defect the static verifier can
catch (dangling connection endpoint, interface-incompatible wiring,
unknown component, missing port, event-kind mismatch), are deployed
twice: once on a bare :class:`Deployer` and once behind a
:class:`DeploymentGate`.

Without the gate each defect surfaces — or worse, doesn't — at run
time: some deployments crash mid-wiring *after* incarnating instances
(which then leak in their containers, holding reserved resources),
and the interface-incompatible wiring deploys "successfully", leaving
a miswired application that no runtime check ever flags.  With the
gate every broken assembly is rejected before a single instance
exists, and the one clean control assembly still deploys.

Run ``python benchmarks/bench_lint_gate.py --selftest`` for the
assertion-only mode wired into ``make check``.
"""

from _harness import report, stash
from repro.analysis import AssemblyRejected, DeploymentGate
from repro.components.executor import ComponentExecutor
from repro.deployment import Deployer, RuntimePlanner
from repro.idl import compile_idl
from repro.orb.core import Servant
from repro.packaging.binaries import GLOBAL_BINARIES
from repro.packaging.package import ComponentPackage, PackageBuilder
from repro.sim.topology import SERVER, star
from repro.testing import SimRig, counter_package
from repro.xmlmeta.descriptors import (
    AssemblyConnection,
    AssemblyDescriptor,
    AssemblyInstance,
    ComponentTypeDescriptor,
    ImplementationDescriptor,
    PortDecl,
    QoSSpec,
    SoftwareDescriptor,
)
from repro.xmlmeta.versions import Version

_STORAGE_IDL = """
#pragma prefix "corbalc"
module Demo {
  interface Storage {
    void put(in long value);
  };
};
"""


STORAGE_IFACE = compile_idl(_STORAGE_IDL).Demo.Storage


class _StorageFacet(Servant):
    _interface = STORAGE_IFACE

    def put(self, value: int) -> None:
        return None


class StorageExecutor(ComponentExecutor):
    def create_facet(self, port_name: str) -> Servant:
        return _StorageFacet()


def storage_package() -> ComponentPackage:
    entry = "demo.bench-storage"
    GLOBAL_BINARIES.register(entry, StorageExecutor)
    soft = SoftwareDescriptor(
        name="Storage", version=Version.parse("1.0.0"),
        vendor="repro-demo",
        implementations=[ImplementationDescriptor(
            "*", "*", "*", entry, "bin/any/storage")])
    comp = ComponentTypeDescriptor(
        name="Storage",
        provides=[PortDecl("store", "IDL:corbalc/Demo/Storage:1.0")],
        qos=QoSSpec(cpu_units=1.0, memory_mb=1.0))
    builder = PackageBuilder(soft, comp)
    builder.add_idl("storage", _STORAGE_IDL)
    builder.add_binary("bin/any/storage", b"\x00" * 64)
    return ComponentPackage(builder.build())


def _two_counters() -> AssemblyDescriptor:
    return AssemblyDescriptor(
        name="app",
        instances=[AssemblyInstance("c1", "Counter"),
                   AssemblyInstance("c2", "Counter")])


def _dangling() -> AssemblyDescriptor:
    # the descriptor constructor rejects unknown endpoints, but the
    # lists are plain mutable attributes afterwards
    asm = _two_counters()
    asm.connections.append(AssemblyConnection("c1", "peer", "ghost", "value"))
    return asm


def _miswired() -> AssemblyDescriptor:
    # c1.peer expects Demo::Counter, s1.store provides Demo::Storage —
    # the runtime wires the IOR anyway and never notices
    return AssemblyDescriptor(
        name="app",
        instances=[AssemblyInstance("c1", "Counter"),
                   AssemblyInstance("s1", "Storage")],
        connections=[AssemblyConnection("c1", "peer", "s1", "store")])


def _unknown_component() -> AssemblyDescriptor:
    return AssemblyDescriptor(
        name="app", instances=[AssemblyInstance("x", "Nonexistent")])


def _missing_port() -> AssemblyDescriptor:
    asm = _two_counters()
    asm.connections.append(AssemblyConnection("c1", "peer", "c2", "nosuch"))
    return asm


def _event_mismatch() -> AssemblyDescriptor:
    # pokes consumes demo.poke, ticks emits demo.tick
    asm = _two_counters()
    asm.connections.append(
        AssemblyConnection("c1", "pokes", "c2", "ticks", kind="event"))
    return asm


#: name -> (assembly factory, expected finding code)
BROKEN = {
    "dangling endpoint": (_dangling, "ASM004"),
    "incompatible ifaces": (_miswired, "ASM007"),
    "unknown component": (_unknown_component, "ASM001"),
    "missing port": (_missing_port, "ASM005"),
    "event-kind mismatch": (_event_mismatch, "ASM008"),
}


def _fresh_rig() -> SimRig:
    rig = SimRig(star(3, hub_profile=SERVER))
    rig.node("hub").install_package(counter_package(cpu_units=10.0))
    rig.node("hub").install_package(storage_package())
    return rig


def _attempt(rig: SimRig, gated: bool, assembly: AssemblyDescriptor) -> dict:
    gate = DeploymentGate() if gated else None
    dep = Deployer(rig.nodes, RuntimePlanner(), coordinator_host="hub",
                   gate=gate)
    outcome: dict = {"rejected": False, "crashed": False, "deployed": False}
    try:
        rig.run(until=dep.deploy(assembly))
        outcome["deployed"] = True
    except AssemblyRejected as err:
        outcome["rejected"] = True
        outcome["codes"] = {f.code for f in err.findings}
    except Exception:
        outcome["crashed"] = True
    outcome["leaked"] = sum(len(node.container) for node in
                            rig.nodes.values()) if not outcome["deployed"] \
        else 0
    outcome["rejections"] = \
        rig.node("hub").metrics.counter("analysis.rejected").value
    return outcome


def run(gated: bool) -> dict:
    per_variant = {}
    for name, (factory, code) in BROKEN.items():
        result = _attempt(_fresh_rig(), gated, factory())
        result["expected_code"] = code
        per_variant[name] = result
    control = _attempt(_fresh_rig(), gated, AssemblyDescriptor(
        name="ok",
        instances=[AssemblyInstance("a", "Counter"),
                   AssemblyInstance("b", "Counter")],
        connections=[AssemblyConnection("a", "peer", "b", "value")]))
    broken = per_variant.values()
    return {
        "variants": per_variant,
        "control_deployed": control["deployed"],
        "rejected": sum(r["rejected"] for r in broken),
        "crashed": sum(r["crashed"] for r in broken),
        "miswired": sum(r["deployed"] for r in broken),
        "leaked": sum(r["leaked"] for r in broken),
    }


def _check(gate: dict, bare: dict) -> None:
    assert gate["control_deployed"] and bare["control_deployed"]
    assert gate["rejected"] == len(BROKEN), gate
    assert gate["crashed"] == gate["miswired"] == gate["leaked"] == 0, gate
    for name, result in gate["variants"].items():
        assert result["expected_code"] in result["codes"], (name, result)
    assert bare["rejected"] == 0
    assert bare["crashed"] >= 3, bare      # runtime failures, some late
    assert bare["miswired"] >= 1, bare     # and one silent miswire
    assert bare["leaked"] >= 2, bare       # instances stranded mid-deploy


def test_gate_prevents_runtime_failures(benchmark, capsys):
    gate = run(True)
    bare = run(False)
    benchmark.pedantic(lambda: run(True), rounds=1, iterations=1)
    rows = []
    for name in BROKEN:
        g, b = gate["variants"][name], bare["variants"][name]
        bare_fate = ("deployed miswired" if b["deployed"]
                     else f"crashed, {b['leaked']} leaked" if b["leaked"]
                     else "crashed")
        rows.append([name, g["expected_code"], bare_fate,
                     "rejected pre-incarnation"])
    report(capsys,
           "C16: five seeded assembly defects, bare deployer vs static gate",
           ["defect", "finding", "without gate", "with gate"], rows,
           note=f"without the gate: {bare['crashed']} mid-deployment "
                f"crashes leaking {bare['leaked']} instances, "
                f"{bare['miswired']} silently-miswired deployment; the "
                "clean control assembly deploys in both configurations")
    _check(gate, bare)
    stash(benchmark,
          defects=len(BROKEN),
          rejected_by_gate=gate["rejected"],
          bare_crashes=bare["crashed"],
          bare_leaked_instances=bare["leaked"],
          bare_miswired=bare["miswired"])


def selftest() -> int:
    gate = run(True)
    bare = run(False)
    _check(gate, bare)
    print("bench_lint_gate selftest ok: "
          f"{gate['rejected']}/{len(BROKEN)} defects rejected "
          f"pre-incarnation (bare deployer: {bare['crashed']} crashes, "
          f"{bare['leaked']} leaked instances, {bare['miswired']} "
          "silent miswire)")
    return 0


if __name__ == "__main__":
    import argparse
    import sys

    parser = argparse.ArgumentParser(
        description="static-gate failure-prevention benchmark")
    parser.add_argument("--selftest", action="store_true",
                        help="run the assertion-only gate (no tables)")
    args = parser.parse_args()
    if args.selftest:
        sys.exit(selftest())
    parser.error("run via pytest for the full report, or pass --selftest")

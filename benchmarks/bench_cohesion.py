"""C13 — the Network Cohesion protocol (§2 R4, §2.4.1).

"In order to accommodate a potentially large number of hosts in a
distributed environment, the need for distributed scalable and
fault-tolerant protocols arise."

Measured: per-node maintenance traffic as the network grows (bounded
fan-out keeps it O(1) per node), and the crash-detection latency as a
function of the ping interval.
"""

from _harness import report, stash
from repro.registry.cohesion import deploy_cohesion
from repro.sim.topology import clustered
from repro.testing import SimRig

WINDOW = 60.0


def traffic(n_hosts: int):
    rig = SimRig(clustered(1, n_hosts), seed=13)
    deploy_cohesion(rig.nodes, ping_interval=3.0, fanout=3)
    rig.run(until=WINDOW)
    msgs = rig.metrics.get("cohesion.msgs")
    byts = rig.metrics.get("cohesion.bytes")
    return msgs / n_hosts / WINDOW, byts / n_hosts / WINDOW


def detection_latency(ping_interval: float, seed=14):
    rig = SimRig(clustered(1, 6), seed=seed)
    agents = deploy_cohesion(rig.nodes, ping_interval=ping_interval,
                             suspect_after=2)
    rig.run(until=30.0)
    victim = "c0h3"
    t_crash = rig.env.now
    rig.topology.set_host_state(victim, alive=False)
    observer = agents["c0h1"]
    while observer.is_peer_alive(victim):
        rig.run(until=rig.env.now + 0.25)
        if rig.env.now - t_crash > 600:
            break
    return rig.env.now - t_crash


def test_cohesion_traffic_scales(benchmark, capsys):
    rows = []
    per_node = {}
    for n in (4, 8, 16, 32):
        msgs_rate, bytes_rate = traffic(n)
        per_node[n] = msgs_rate
        rows.append([n, f"{msgs_rate:.2f}", f"{bytes_rate:.0f}"])
    benchmark.pedantic(lambda: traffic(8), rounds=1, iterations=1)
    report(capsys, "C13a: cohesion maintenance cost per node "
                   "(fanout 3, ping every 3s)",
           ["hosts", "msgs/node/s", "B/node/s"], rows,
           note="bounded fan-out keeps per-node cost flat as the "
                "network grows — requirement R4's scalability")
    # per-node cost must not grow with N (allow 50% noise)
    assert per_node[32] < per_node[4] * 1.5
    stash(benchmark, **{f"n{k}": v for k, v in per_node.items()})


def test_crash_detection_latency(benchmark, capsys):
    rows = []
    results = {}
    for interval in (1.0, 3.0, 6.0):
        latency = detection_latency(interval)
        results[interval] = latency
        rows.append([f"{interval:.0f} s", f"{latency:.1f} s",
                     f"{latency/interval:.1f}x"])
    benchmark.pedantic(lambda: detection_latency(3.0),
                       rounds=1, iterations=1)
    report(capsys, "C13b: crash-detection latency vs ping interval "
                   "(suspect after 2 misses)",
           ["ping interval", "detection latency", "intervals"], rows,
           note="latency tracks the ping period x rotation x misses — "
                "the admin's freshness/traffic dial")
    assert results[1.0] < results[6.0]
    stash(benchmark, **{f"i{int(k)}": v for k, v in results.items()})

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test selftest bench faults fuzz

# The one-stop gate: observability + availability end-to-end selftests,
# then the full tier-1 unit/integration suite.
check: selftest test

selftest:
	$(PYTHON) -m repro.tools.obs_report --selftest
	$(PYTHON) benchmarks/bench_availability.py --selftest
	$(PYTHON) benchmarks/bench_overload.py --selftest

test:
	$(PYTHON) -m pytest -x -q

# fault-injection / churn integration tests only
faults:
	$(PYTHON) -m pytest -m faults -q

# seeded wire-fuzz of the GIOP/CDR decoder
fuzz:
	$(PYTHON) -m pytest -m fuzz -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test selftest bench faults

# The one-stop gate: observability + availability end-to-end selftests,
# then the full tier-1 unit/integration suite.
check: selftest test

selftest:
	$(PYTHON) -m repro.tools.obs_report --selftest
	$(PYTHON) benchmarks/bench_availability.py --selftest

test:
	$(PYTHON) -m pytest -x -q

# fault-injection / churn integration tests only
faults:
	$(PYTHON) -m pytest -m faults -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test selftest lint lint-src bench bench-orb \
	bench-eventbus bench-federation bench-chaos bench-simlint \
	faults fuzz chaos

# The one-stop gate: descriptor + source lint, observability +
# availability + static-gate end-to-end selftests, then the full
# tier-1 suite.
check: lint lint-src selftest test

# static verification of the shipped IDL + descriptor fixtures
lint:
	$(PYTHON) -m repro.tools.lint examples/descriptors

# determinism / control-loop / paired-effect / name-hygiene lint of
# the source tree itself (C20)
lint-src:
	$(PYTHON) -m repro.tools.simlint src/repro \
		--baseline simlint-baseline.json

selftest:
	$(PYTHON) -m repro.tools.obs_report --selftest
	$(PYTHON) benchmarks/bench_availability.py --selftest
	$(PYTHON) benchmarks/bench_overload.py --selftest
	$(PYTHON) benchmarks/bench_lint_gate.py --selftest
	$(PYTHON) benchmarks/bench_orb_floor.py --selftest
	$(PYTHON) benchmarks/bench_eventbus.py --selftest
	$(PYTHON) benchmarks/bench_federation.py --selftest
	$(PYTHON) benchmarks/bench_chaos.py --selftest
	$(PYTHON) benchmarks/bench_simlint.py --selftest

test:
	$(PYTHON) -m pytest -x -q

# fault-injection / churn integration tests only
faults:
	$(PYTHON) -m pytest -m faults -q

# seeded wire-fuzz of the GIOP/CDR decoder
fuzz:
	$(PYTHON) -m pytest -m fuzz -q

# seeded chaos campaigns against the live scenario (C19)
chaos:
	$(PYTHON) -m repro.tools.chaos --campaigns 5

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# regenerate BENCH_orb.json (ORB codec/dispatch microbenchmarks)
bench-orb:
	$(PYTHON) benchmarks/bench_to_json.py

# regenerate BENCH_eventbus.json (C17 batched fan-out vs p2p oneways)
bench-eventbus:
	$(PYTHON) benchmarks/bench_to_json.py --suite eventbus

# regenerate BENCH_federation.json (C18 sharded registry vs flat flood)
bench-federation:
	$(PYTHON) benchmarks/bench_to_json.py --suite federation

# regenerate BENCH_chaos.json (C19 seeded chaos campaigns)
bench-chaos:
	$(PYTHON) benchmarks/bench_to_json.py --suite chaos

# regenerate BENCH_simlint.json (C20 seeded-defect lint corpus)
bench-simlint:
	$(PYTHON) benchmarks/bench_to_json.py --suite simlint

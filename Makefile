PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test selftest lint bench bench-orb bench-eventbus \
	bench-federation bench-chaos faults fuzz chaos

# The one-stop gate: descriptor lint, observability + availability +
# static-gate end-to-end selftests, then the full tier-1 suite.
check: lint selftest test

# static verification of the shipped IDL + descriptor fixtures
lint:
	$(PYTHON) -m repro.tools.lint examples/descriptors

selftest:
	$(PYTHON) -m repro.tools.obs_report --selftest
	$(PYTHON) benchmarks/bench_availability.py --selftest
	$(PYTHON) benchmarks/bench_overload.py --selftest
	$(PYTHON) benchmarks/bench_lint_gate.py --selftest
	$(PYTHON) benchmarks/bench_orb_floor.py --selftest
	$(PYTHON) benchmarks/bench_eventbus.py --selftest
	$(PYTHON) benchmarks/bench_federation.py --selftest
	$(PYTHON) benchmarks/bench_chaos.py --selftest

test:
	$(PYTHON) -m pytest -x -q

# fault-injection / churn integration tests only
faults:
	$(PYTHON) -m pytest -m faults -q

# seeded wire-fuzz of the GIOP/CDR decoder
fuzz:
	$(PYTHON) -m pytest -m fuzz -q

# seeded chaos campaigns against the live scenario (C19)
chaos:
	$(PYTHON) -m repro.tools.chaos --campaigns 5

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q

# regenerate BENCH_orb.json (ORB codec/dispatch microbenchmarks)
bench-orb:
	$(PYTHON) benchmarks/bench_to_json.py

# regenerate BENCH_eventbus.json (C17 batched fan-out vs p2p oneways)
bench-eventbus:
	$(PYTHON) benchmarks/bench_to_json.py --suite eventbus

# regenerate BENCH_federation.json (C18 sharded registry vs flat flood)
bench-federation:
	$(PYTHON) benchmarks/bench_to_json.py --suite federation

# regenerate BENCH_chaos.json (C19 seeded chaos campaigns)
bench-chaos:
	$(PYTHON) benchmarks/bench_to_json.py --suite chaos

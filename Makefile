PYTHON ?= python
export PYTHONPATH := src

.PHONY: check test selftest bench

# The one-stop gate: observability end-to-end selftest, then the full
# tier-1 unit/integration suite.
check: selftest test

selftest:
	$(PYTHON) -m repro.tools.obs_report --selftest

test:
	$(PYTHON) -m pytest -x -q

bench:
	$(PYTHON) -m pytest benchmarks/ --benchmark-only -q
